//! The complexity zoo (§4–§5): run the theorem constructions.
//!
//! * a 2-counter machine as three concurrent TD processes over a
//!   constant-size database (RE-completeness, Cor. 4.6);
//! * QBF via sequential composition (the alternation of Thm. 4.5);
//! * 3SAT in fully bounded TD (§5) vs. a DPLL baseline;
//! * the memoizing decider on each, reporting configuration counts.
//!
//! ```sh
//! cargo run --example machine_zoo
//! ```

use transaction_datalog::engine::decider::{decide, DeciderConfig};
use transaction_datalog::machines::{Cnf, Counter, MinskyMachine, Qbf};
use transaction_datalog::prelude::*;

fn main() {
    // -- RE witness: counter machine --------------------------------------
    println!("--- 2-counter machine: c1 = 2 * c0, c0 = 3 ---");
    let machine = MinskyMachine::doubling().with_input(Counter::C0, 3);
    let scenario = machine.to_td();
    let out = scenario
        .run_with(EngineConfig::default().with_max_steps(10_000_000))
        .unwrap();
    let sol = out.solution().expect("machine halts");
    println!(
        "TD simulation committed after {} steps; final db = {} (stays O(1): \
         the counters live in process recursion, not data)",
        sol.stats.steps, sol.db
    );

    // -- Sequential alternation: QBF ---------------------------------------
    println!("\n--- QBF in sequential TD ---");
    for vars in [2usize, 4, 6] {
        let qbf = Qbf::random(vars, vars + 2, 11);
        let scenario = qbf.to_td();
        let out = scenario
            .run_with(EngineConfig::default().with_max_steps(50_000_000))
            .unwrap();
        println!(
            "vars={vars}: TD says {:5}, direct evaluator says {:5} ({} steps)",
            out.is_success(),
            qbf.eval(),
            out.stats().steps
        );
        assert_eq!(out.is_success(), qbf.eval());
    }

    // -- Fully bounded TD: 3SAT --------------------------------------------
    println!("\n--- 3SAT in fully bounded TD ---");
    for seed in 0..4 {
        let cnf = Cnf::random_3sat(5, 12, seed);
        let scenario = cnf.to_td();
        let out = scenario
            .run_with(EngineConfig::default().with_max_steps(10_000_000))
            .unwrap();
        println!(
            "seed={seed}: TD says {:5}, DPLL says {:5}",
            out.is_success(),
            cnf.dpll()
        );
        assert_eq!(out.is_success(), cnf.dpll());
    }

    // -- The decider on a bounded fragment ----------------------------------
    println!("\n--- decider configuration counts (fully bounded iteration) ---");
    for attempts in [2i64, 4, 8] {
        let scenario = transaction_datalog::workflow::RepeatProtocol::new(1, attempts).compile();
        let d = decide(
            &scenario.program,
            &scenario.goal,
            &scenario.db,
            DeciderConfig::default(),
        )
        .unwrap();
        println!(
            "attempts={attempts}: executable={} after {} distinct configurations",
            d.executable, d.configs
        );
    }
}
