//! The paper's motivating application: high-throughput genome-laboratory
//! workflows (§1, §3; LabFlow [26]).
//!
//! Runs three scenarios end to end:
//! 1. the Example 3.1 workflow (tasks + sub-workflow) over several samples;
//! 2. an agent-constrained run (Example 3.3): two qualified machines shared
//!    by all instances;
//! 3. the iterated protocol of [26]: re-run an experiment until the result
//!    is conclusive.
//!
//! ```sh
//! cargo run --example genome_lab
//! ```

use transaction_datalog::workflow::{
    audit, render_timeline, to_dot, AgentScenarioConfig, LabFlowConfig, RepeatProtocol,
    WorkflowMetrics, WorkflowSpec,
};

fn main() {
    // -- 1. Example 3.1 over three DNA samples ---------------------------
    let spec = WorkflowSpec::example_3_1();
    let samples: Vec<String> = (1..=3).map(|i| format!("sample{i}")).collect();
    let scenario = spec.compile(&samples);
    println!("--- Example 3.1 workflow ---\n{}", scenario.source);
    let out = scenario.run().expect("no fault");
    let sol = out.solution().expect("workflow completes");
    let metrics = WorkflowMetrics::from_solution(sol);
    println!(
        "completed {} task executions over {} samples ({} engine steps)\n",
        metrics.tasks_completed,
        metrics.per_item.len(),
        metrics.search_steps
    );
    println!(
        "--- committed timeline ---\n{}",
        render_timeline(&sol.delta)
    );
    let violations = audit(&spec, &sol.delta);
    println!("audit against the spec: {} violations", violations.len());
    assert!(violations.is_empty());
    println!("\n--- control flow (Graphviz) ---\n{}", to_dot(&spec));

    // -- 2. Example 3.3: shared agents ------------------------------------
    let cfg = AgentScenarioConfig::universal_pool(
        WorkflowSpec::example_3_1(),
        samples.clone(),
        2, // two machines for three concurrent samples
    );
    let scenario = cfg.compile();
    let out = scenario.run().expect("no fault");
    let sol = out.solution().expect("completes under agent contention");
    println!("--- Example 3.3: 3 samples, 2 agents ---");
    println!("final db: {}", sol.db);
    println!("(agents acquired and released atomically via iso {{ … }})\n");

    // -- 3. LabFlow pipeline + iterated protocol --------------------------
    let pipeline = LabFlowConfig::new(4, 5).compile();
    let out = pipeline.run().expect("no fault");
    let sol = out.solution().expect("pipeline drains");
    println!("--- LabFlow pipeline: 4 samples x 5 stages ---");
    println!(
        "insert-only history: {} result tuples, {} engine steps",
        sol.db
            .relation(td_core::Pred::new("result", 2))
            .map(|r| r.len())
            .unwrap_or(0),
        sol.stats.steps
    );

    let protocol = RepeatProtocol::new(3, 4).compile();
    let out = protocol.run().expect("no fault");
    let sol = out.solution().expect("protocol concludes");
    println!("\n--- iterated protocol (repeat until conclusive, [26]) ---");
    println!("final db: {}", sol.db);
}
