//! Quickstart: parse a Transaction Datalog program, run a transactional
//! goal, inspect the result.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use transaction_datalog::prelude::*;

fn main() {
    // A tiny TD program: a bank account and a `spend` transaction that
    // tests the balance, deletes the old tuple and inserts the new one —
    // all-or-nothing.
    let src = "
        base money/1.
        init money(10).

        spend(Amt) <- money(Bal) * Bal >= Amt * del.money(Bal)
                      * Rest is Bal - Amt * ins.money(Rest).
    ";
    let parsed = parse_program(src).expect("program parses");
    let db = Database::with_schema_of(&parsed.program);
    let db = td_engine::load_init(&db, &parsed.init).expect("init facts load");

    let engine = Engine::new(parsed.program.clone());

    // A successful transaction commits...
    let goal = parse_goal("spend(3) * spend(4)", &parsed.program).unwrap();
    match engine.solve(&goal.goal, &db).unwrap() {
        Outcome::Success(sol) => {
            println!("committed: db = {}", sol.db);
            println!("update log: {}", sol.delta);
            println!("stats: {}", sol.stats);
        }
        Outcome::Failure { .. } => unreachable!("10 >= 3 + 4"),
    }

    // ...and a failing one leaves no trace: spend(8) succeeds transiently,
    // but the second spend fails, rolling the whole goal back.
    let goal = parse_goal("spend(8) * spend(8)", &parsed.program).unwrap();
    match engine.solve(&goal.goal, &db).unwrap() {
        Outcome::Success(_) => unreachable!("16 > 10"),
        Outcome::Failure { stats } => {
            println!(
                "aborted as a unit (searched {} steps); db unchanged",
                stats.steps
            );
        }
    }

    // Concurrency: two processes communicating through the database. The
    // consumer can only proceed once the producer has inserted the message —
    // the engine finds the interleaving.
    let src2 = "
        base msg/1. base seen/1.
        producer <- ins.msg(hello).
        consumer <- msg(M) * ins.seen(M).
        ?- consumer | producer.
    ";
    let parsed2 = parse_program(src2).unwrap();
    let db2 = Database::with_schema_of(&parsed2.program);
    let engine2 = Engine::new(parsed2.program.clone());
    let out = engine2.solve(&parsed2.goals[0].goal, &db2).unwrap();
    println!(
        "concurrent communication: success = {}, db = {}",
        out.is_success(),
        out.solution().unwrap().db
    );

    // Classify the program into the paper's fragments.
    let report = FragmentReport::classify(&parsed2.program, &parsed2.goals[0].goal);
    println!("\nfragment report:\n{report}");
}
