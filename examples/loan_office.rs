//! A loan office as a long-running workflow system.
//!
//! Uses the [`Manager`](transaction_datalog::workflow::Manager) to run a
//! stream of transactions against one evolving database: applications
//! arrive, get processed (with data-dependent branching, officer reviews,
//! and a transactionally guarded funds ledger), and the state is monitored
//! between submissions.
//!
//! ```sh
//! cargo run --example loan_office
//! ```

use td_core::{Atom, Pred, Term};
use transaction_datalog::workflow::{LoanConfig, Manager};

fn main() {
    let cfg = LoanConfig::new(&[300, 800, 450, 900, 120], 1500);
    let scenario = cfg.compile();
    println!("--- loan workflow program ---\n{}", scenario.source);

    let mut office = Manager::from_scenario(&scenario);

    // Applications are settled one at a time — a transaction stream, not a
    // single goal.
    for app in ["app1", "app2", "app3", "app4", "app5"] {
        let result = office.submit_text(&format!("process({app})")).unwrap();
        let funds = office
            .query(&Atom::new("funds", vec![Term::var(0)]))
            .unwrap();
        println!(
            "{app}: {}  (funds now {})",
            if result.is_committed() {
                "settled"
            } else {
                "ABORTED"
            },
            funds[0]
        );
    }

    let approved = office
        .query(&Atom::new("approved", vec![Term::var(0)]))
        .unwrap();
    let rejected = office
        .query(&Atom::new("rejected", vec![Term::var(0)]))
        .unwrap();
    println!(
        "\napproved: {approved:?}\nrejected: {rejected:?}",
        approved = approved.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
        rejected = rejected.iter().map(|t| t.to_string()).collect::<Vec<_>>(),
    );
    println!(
        "{} transactions committed, {} updates total",
        office.history().len(),
        office.total_updates()
    );
    assert_eq!(approved.len() + rejected.len(), 5);

    // The ledger never went negative: replay every committed delta and
    // check the running funds value.
    let officer = office
        .query(&Atom::new("officer", vec![Term::var(0)]))
        .unwrap();
    assert_eq!(officer.len(), 1, "officer back in the pool");
    let funds_rel = office.db().relation(Pred::new("funds", 1)).unwrap();
    let remaining = funds_rel.to_vec()[0].values()[0].as_int().unwrap();
    assert!(remaining >= 0);
    println!("final funds: {remaining}");
}
