//! Nested banking transactions (the paper's Examples 2.1–2.2).
//!
//! Demonstrates the three behaviours the paper uses to motivate TD over the
//! flat transaction model: relative commit (a failed deposit un-commits the
//! withdraw), serializability *within* a transaction via `iso`, and
//! all-or-nothing failure.
//!
//! ```sh
//! cargo run --example banking
//! ```

use transaction_datalog::prelude::*;
use transaction_datalog::workflow::{serializable_transfers, transfer_goal, Bank};

fn main() {
    let bank = Bank::new(&[("alice", 120), ("bob", 30)]);
    let scenario = bank.scenario();
    println!("--- banking program ---\n{}", scenario.source);
    let engine = Engine::new(scenario.program.clone());

    // 1. A successful transfer.
    let out = engine
        .solve(&transfer_goal(50, "alice", "bob"), &scenario.db)
        .unwrap();
    let sol = out.solution().expect("sufficient funds");
    println!(
        "transfer 50 alice→bob: alice={:?}, bob={:?}",
        Bank::balance_in(&sol.db, "alice"),
        Bank::balance_in(&sol.db, "bob")
    );

    // 2. Relative commit: the withdraw succeeds, the deposit fails (no such
    //    account), and the withdraw is rolled back with it.
    let out = engine
        .solve(&transfer_goal(50, "alice", "mallory"), &scenario.db)
        .unwrap();
    assert!(!out.is_success());
    println!("transfer 50 alice→mallory: aborted as a unit (no `mallory` account)");

    // 3. Insufficient funds: the precondition Bal >= Amt fails.
    let out = engine
        .solve(&transfer_goal(500, "bob", "alice"), &scenario.db)
        .unwrap();
    assert!(!out.is_success());
    println!("transfer 500 bob→alice: aborted (insufficient funds)");

    // 4. Serializable concurrent transfers: ⊙t1 | ⊙t2 | ⊙t3.
    let goal = serializable_transfers(&[
        (10, "alice", "bob"),
        (20, "bob", "alice"),
        (30, "alice", "bob"),
    ]);
    let out = engine.solve(&goal, &scenario.db).unwrap();
    let sol = out.solution().expect("serializable schedule exists");
    let a = Bank::balance_in(&sol.db, "alice").unwrap();
    let b = Bank::balance_in(&sol.db, "bob").unwrap();
    println!(
        "3 concurrent isolated transfers: alice={a}, bob={b} (total {})",
        a + b
    );
    assert_eq!(a + b, 150, "money is conserved");
}
