//! Cooperating workflows and live simulation (Examples 3.2 and 3.4).
//!
//! Runs the genome-map two-subflow synchronization, a producer/consumer
//! pipeline, and the Example 3.2 simulation that spawns one workflow
//! instance per delivered work item.
//!
//! ```sh
//! cargo run --example workflow_network
//! ```

use transaction_datalog::workflow::{Pipeline, SimulationConfig, SyncPair};

fn main() {
    // -- Example 3.4: two workflows, three rendezvous points --------------
    let scenario = SyncPair::new(3).compile();
    println!(
        "--- Example 3.4: synchronized pair ---\n{}",
        scenario.source
    );
    let out = scenario.run().expect("no fault");
    let sol = out.solution().expect("both workflows complete");
    println!("committed update order:\n  {}\n", sol.delta);

    // -- Producer/consumer pipeline ---------------------------------------
    let scenario = Pipeline::new(5).compile();
    let out = scenario.run().expect("no fault");
    let sol = out.solution().expect("pipeline drains");
    println!("--- producer/consumer over 5 items ---");
    println!("final db: {}", sol.db);
    println!(
        "({} engine steps, {} backtracks)\n",
        sol.stats.steps, sol.stats.backtracks
    );

    // -- Example 3.2: simulation with runtime process creation ------------
    let scenario = SimulationConfig::new(5, 3).compile();
    println!("--- Example 3.2: simulation ---\n{}", scenario.source);
    let out = scenario.run().expect("no fault");
    let sol = out.solution().expect("all items processed");
    println!(
        "5 spawned instances × 3 tasks = {} completions; final db: {}",
        sol.db
            .relation(td_core::Pred::new("done", 2))
            .map(|r| r.len())
            .unwrap_or(0),
        sol.db
    );
}
