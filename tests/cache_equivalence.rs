//! Differential tests: the subgoal answer cache must be invisible in every
//! result — only the work changes, never the answer.
//!
//! Three layers of agreement, mirroring `parallel_equivalence.rs`:
//!
//! 1. **Executability** — on any goal, the cached engine (sequential and
//!    deterministic-parallel) reports the same success/failure as the
//!    uncached sequential engine.
//! 2. **Final-state sets** — the explicit-state decider computes the same
//!    set of reachable final databases with and without the cache (both
//!    directions, by content).
//! 3. **Witness identity** — the cached engines report exactly the uncached
//!    sequential engine's first witness: same answer substitution, same
//!    delta, same final database. Replayed macro-steps occupy the same
//!    position in the search order as the lazy expansions they substitute
//!    for (docs/CACHING.md), so even the committed path is unchanged.
//!
//! Layer 3 is exercised twice per goal: with an ample cache and with a
//! pathologically small one (one slot per shard), so CLOCK eviction churn
//! is also shown to be invisible.

mod common;

use common::{arb_goal, assert_same_witness, corpus_files, flag_program};
use proptest::prelude::*;
use std::sync::Arc;
use transaction_datalog::prelude::parse_program;
use transaction_datalog::prelude::{
    Database, Engine, EngineConfig, Goal, Program, SearchBackend, Term,
};

fn uncached(program: &Program) -> Engine {
    Engine::with_config(
        program.clone(),
        EngineConfig::default().with_max_steps(200_000),
    )
}

fn cached(program: &Program, capacity: usize) -> Engine {
    Engine::with_config(
        program.clone(),
        EngineConfig::default()
            .with_max_steps(200_000)
            .with_subgoal_cache()
            .with_cache_capacity(capacity),
    )
}

fn cached_parallel(program: &Program, threads: usize) -> Engine {
    Engine::with_config(
        program.clone(),
        EngineConfig::default()
            .with_max_steps(200_000)
            .with_subgoal_cache()
            .with_backend(SearchBackend::Parallel {
                threads,
                deterministic: true,
            }),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn cached_sequential_reports_the_uncached_witness(g in arb_goal(3)) {
        let p = flag_program();
        let db = Database::with_schema_of(&p);
        let plain = uncached(&p).solve(&g, &db).unwrap();
        // Ample cache, and a one-slot-per-shard cache that evicts
        // constantly: both must be invisible.
        for capacity in [65_536usize, 1] {
            let engine = cached(&p, capacity);
            // Twice on one engine: the second run answers from a warm
            // cache, the strongest replay test.
            for run in 0..2 {
                let got = engine.solve(&g, &db).unwrap();
                assert_same_witness(&plain, &got, &format!("capacity={capacity} run={run}"));
            }
        }
    }

    #[test]
    fn cached_deterministic_parallel_reports_the_uncached_witness(g in arb_goal(3)) {
        let p = flag_program();
        let db = Database::with_schema_of(&p);
        let plain = uncached(&p).solve(&g, &db).unwrap();
        let par = cached_parallel(&p, 4).solve(&g, &db).unwrap();
        assert_same_witness(&plain, &par, "cached 4-thread deterministic");
    }

    #[test]
    fn decider_final_state_sets_agree_with_and_without_cache(g in arb_goal(3)) {
        let p = flag_program();
        let db = Database::with_schema_of(&p);
        let cfg = td_engine::decider::DeciderConfig::default();
        let plain = td_engine::decider::final_states(&p, &g, &db, cfg).unwrap();
        let cache = Some(Arc::new(td_engine::SubgoalCache::new(1024)));
        let tabled =
            td_engine::decider::final_states_with_cache(&p, &g, &db, cfg, cache.clone()).unwrap();
        for d in &plain {
            prop_assert!(
                tabled.iter().any(|t| t.same_content(d)),
                "final state lost under caching"
            );
        }
        for d in &tabled {
            prop_assert!(
                plain.iter().any(|t| t.same_content(d)),
                "caching invented a final state"
            );
        }
        // Executability must agree too (decide uses the same machinery but
        // stops early).
        let pd = td_engine::decider::decide(&p, &g, &db, cfg).unwrap();
        let cd = td_engine::decider::decide_with_cache(&p, &g, &db, cfg, cache).unwrap();
        prop_assert_eq!(pd.executable, cd.executable);
    }
}

/// With the cache and the materializer both on, a probe on a materialized
/// predicate is answered by the views and *skipped* by the cache (counted
/// `unsuitable`): the answer would otherwise be stored twice, and the
/// cached copy would go stale-by-digest for no benefit. The cache must see
/// no hit, no miss, and no entry for such a probe.
#[test]
fn cache_skips_probes_on_materialized_predicates() {
    let parsed = parse_program(
        "base edge/2. init edge(1, 2). init edge(2, 3).
         path(X, Y) <- edge(X, Y).
         path(X, Z) <- edge(X, Y) * path(Y, Z).",
    )
    .unwrap();
    let db = Database::with_schema_of(&parsed.program);
    let db = td_engine::load_init(&db, &parsed.init).unwrap();
    let engine = Engine::with_config(
        parsed.program.clone(),
        EngineConfig::default()
            .with_subgoal_cache()
            .with_materialize(),
    );
    let mat = engine.materializer().expect("program must materialize");
    let goal = Goal::atom("path", vec![Term::int(1), Term::int(3)]);
    let out = engine.solve(&goal, &db).unwrap();
    assert!(out.is_success());
    assert!(mat.probes() > 0, "the query must be answered by a probe");
    let cache = engine.subgoal_cache().expect("cache is on");
    assert_eq!(
        cache.hits() + cache.misses(),
        0,
        "the cache must never see a materialized-predicate probe"
    );
    assert!(cache.unsuitable() > 0, "skips are tallied as unsuitable");
    assert_eq!(cache.len(), 0, "nothing may be double-stored");
}

/// Every corpus goal: the cached sequential engine and the cached
/// deterministic-parallel engine reproduce the uncached sequential witness
/// exactly. Goals run in file sequence against the committed state, like
/// `td run`; each file keeps one warm cache across its goals.
#[test]
fn corpus_cached_matches_uncached() {
    for path in corpus_files() {
        let src = std::fs::read_to_string(&path).unwrap();
        let parsed = parse_program(&src)
            .unwrap_or_else(|e| panic!("{}: {}", path.display(), e.render(&src)));
        let db = Database::with_schema_of(&parsed.program);
        let mut db = td_engine::load_init(&db, &parsed.init).unwrap();
        let plain_engine = uncached(&parsed.program);
        let cached_engine = cached(&parsed.program, 65_536);
        let par_engine = cached_parallel(&parsed.program, 4);
        for (i, g) in parsed.goals.iter().enumerate() {
            let plain = plain_engine
                .solve(&g.goal, &db)
                .unwrap_or_else(|e| panic!("{} goal {i}: {e}", path.display()));
            let seq = cached_engine
                .solve(&g.goal, &db)
                .unwrap_or_else(|e| panic!("{} goal {i} (cached): {e}", path.display()));
            assert_same_witness(
                &plain,
                &seq,
                &format!("{} goal {i} (cached seq)", path.display()),
            );
            let par = par_engine
                .solve(&g.goal, &db)
                .unwrap_or_else(|e| panic!("{} goal {i} (cached par): {e}", path.display()));
            assert_same_witness(
                &plain,
                &par,
                &format!("{} goal {i} (cached 4t det)", path.display()),
            );
            if let Some(sol) = plain.solution() {
                db = sol.db.clone();
            }
        }
    }
}
