//! Differential testing over randomly generated *programs* (not just
//! goals): the interpreter, the decider, and the entailment oracle must
//! agree on executability and committed runs for arbitrary small rulebases
//! with choice, recursion-free call graphs, and updates.

use proptest::prelude::*;
use td_core::{Atom, Program};
use transaction_datalog::prelude::{Database, Engine, EngineConfig, Goal, Outcome};

/// Strategy for a rule body over base flags f0..f2 and derived preds
/// d0..dk (callees restricted to *lower* indices, so programs are
/// nonrecursive by construction and the decider always terminates).
fn arb_body(callee_limit: usize, depth: u32) -> BoxedStrategy<Goal> {
    let flag = (0u8..3).prop_map(|i| format!("f{i}"));
    let mut leaves = vec![
        flag.clone().prop_map(|f| Goal::ins(&f, vec![])).boxed(),
        flag.clone().prop_map(|f| Goal::del(&f, vec![])).boxed(),
        flag.clone().prop_map(|f| Goal::prop(&f)).boxed(),
        flag.prop_map(|f| Goal::NotAtom(Atom::prop(&f))).boxed(),
        Just(Goal::True).boxed(),
    ];
    if callee_limit > 0 {
        leaves.push(
            (0..callee_limit)
                .prop_map(|i| Goal::prop(&format!("d{i}")))
                .boxed(),
        );
    }
    let leaf = proptest::strategy::Union::new(leaves).boxed();
    leaf.prop_recursive(depth, 16, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Goal::seq),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Goal::par),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Goal::choice),
            inner.prop_map(Goal::iso),
        ]
        .boxed()
    })
    .boxed()
}

/// A program of `n` derived predicates (each 1–2 rules) plus a goal.
fn arb_program() -> impl Strategy<Value = (Program, Goal)> {
    let rules = (0usize..3).prop_flat_map(|n| {
        let mut rule_strats = Vec::new();
        for i in 0..n {
            rule_strats.push(proptest::collection::vec(arb_body(i, 1), 1..3));
        }
        (Just(n), rule_strats)
    });
    (rules, arb_body(0, 2)).prop_map(|((n, bodies), goal_tail)| {
        let mut b = Program::builder().base_preds(&[("f0", 0), ("f1", 0), ("f2", 0)]);
        for (i, rule_bodies) in bodies.iter().enumerate() {
            for body in rule_bodies {
                b = b.rule_parts(Atom::prop(&format!("d{i}")), body.clone());
            }
        }
        let program = b.build_unchecked();
        // Goal: call the top predicate (if any) then the random tail.
        let goal = if bodies.is_empty() {
            goal_tail
        } else {
            Goal::seq(vec![
                Goal::prop(&format!("d{}", bodies.len() - 1)),
                goal_tail,
            ])
        };
        let _ = n;
        (program, goal)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn engine_decider_and_entailment_agree((program, goal) in arb_program()) {
        let db = Database::with_schema_of(&program);
        let engine = Engine::with_config(
            program.clone(),
            EngineConfig::default().with_max_steps(500_000),
        );
        let outcome = engine.solve(&goal, &db).expect("within budget");
        let decision = td_engine::decider::decide(
            &program,
            &goal,
            &db,
            td_engine::decider::DeciderConfig::default(),
        )
        .expect("decider runs");
        prop_assert!(!decision.truncated);
        prop_assert_eq!(outcome.is_success(), decision.executable);

        if let Outcome::Success(sol) = outcome {
            prop_assert!(
                td_engine::entail::entails_via_delta(&program, &db, &sol.delta, &goal)
                    .expect("entailment runs"),
                "committed delta not entailed"
            );
        }
    }

    #[test]
    fn simplify_and_inline_preserve_program_behaviour((program, goal) in arb_program()) {
        let db = Database::with_schema_of(&program);
        let run = |p: &Program, g: &Goal| {
            Engine::with_config(p.clone(), EngineConfig::default().with_max_steps(500_000))
                .executable(g, &db)
                .expect("within budget")
        };
        let base = run(&program, &goal);

        let simplified_goal = td_core::transform::simplify(&goal);
        prop_assert_eq!(base, run(&program, &simplified_goal));

        let simplified_prog = td_core::transform::simplify_program(&program);
        prop_assert_eq!(base, run(&simplified_prog, &goal));

        let inlined = td_core::transform::inline(&program);
        prop_assert_eq!(base, run(&inlined, &goal));
    }
}
