//! Golden tests over the `.td` corpus: every file in `corpus/` parses,
//! classifies, executes successfully, and its committed run is entailed by
//! the declarative semantics. These are the paper's own examples as
//! standalone programs a user can run with `td run corpus/<file>.td`.

use transaction_datalog::prelude::*;

fn corpus_files() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus/ exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "td"))
        .collect();
    files.sort();
    assert!(files.len() >= 7, "corpus should have the paper's examples");
    files
}

#[test]
fn every_corpus_file_parses_and_runs() {
    for path in corpus_files() {
        let src = std::fs::read_to_string(&path).unwrap();
        let parsed = parse_program(&src)
            .unwrap_or_else(|e| panic!("{}: {}", path.display(), e.render(&src)));
        assert!(
            !parsed.goals.is_empty(),
            "{}: corpus files declare goals",
            path.display()
        );
        let db = Database::with_schema_of(&parsed.program);
        let mut db = td_engine::load_init(&db, &parsed.init).unwrap();
        let engine = Engine::new(parsed.program.clone());
        for g in &parsed.goals {
            let out = engine
                .solve(&g.goal, &db)
                .unwrap_or_else(|e| panic!("{}: {e}", path.display()));
            let sol = out
                .solution()
                .unwrap_or_else(|| panic!("{}: goal failed", path.display()));
            // Differential check against the declarative semantics.
            assert!(
                td_engine::entail::entails_via_delta(&parsed.program, &db, &sol.delta, &g.goal)
                    .unwrap(),
                "{}: committed run not entailed",
                path.display()
            );
            db = sol.db.clone();
        }
    }
}

#[test]
fn corpus_fragments_match_their_headers() {
    // Spot-check the classification of the two fragment-sensitive files.
    let check = |name: &str, expect: Fragment| {
        let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("corpus")
            .join(name);
        let src = std::fs::read_to_string(&path).unwrap();
        let parsed = parse_program(&src).unwrap();
        let rep = FragmentReport::classify(&parsed.program, &parsed.goals[0].goal);
        assert_eq!(rep.fragment, expect, "{name}");
    };
    check("example_3_2_simulation.td", Fragment::Full);
    check("iterated_protocol.td", Fragment::FullyBounded);
    check("example_3_1_workflow.td", Fragment::Nonrecursive);
}

#[test]
fn section_2_overview_reaches_the_papers_final_state() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("corpus")
        .join("section_2_overview.td");
    let src = std::fs::read_to_string(&path).unwrap();
    let parsed = parse_program(&src).unwrap();
    let db = Database::with_schema_of(&parsed.program);
    let db = td_engine::load_init(&db, &parsed.init).unwrap();
    let engine = Engine::new(parsed.program.clone());
    let out = engine.solve(&parsed.goals[0].goal, &db).unwrap();
    assert_eq!(out.solution().unwrap().db.to_string(), "{c, d}");
}

#[test]
fn example_3_3_audit_has_no_double_claims() {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("corpus")
        .join("example_3_3_agents.td");
    let src = std::fs::read_to_string(&path).unwrap();
    let parsed = parse_program(&src).unwrap();
    let db = Database::with_schema_of(&parsed.program);
    let db = td_engine::load_init(&db, &parsed.init).unwrap();
    let engine = Engine::new(parsed.program.clone());
    let out = engine.solve(&parsed.goals[0].goal, &db).unwrap();
    let delta = out.solution().unwrap().delta.clone();
    assert_eq!(transaction_datalog::workflow::double_claims(&delta), 0);
}
