//! Differential tests: the incremental materializer must be invisible in
//! every result — a materialized probe answers exactly what the lazy
//! unfolding would have, and delta-driven maintenance keeps the views in
//! lockstep with the database the search actually holds.
//!
//! Three layers of agreement, mirroring `cache_equivalence.rs`:
//!
//! 1. **Executability** — on any goal, the materialized engine (sequential
//!    and deterministic-parallel) reports the same success/failure as the
//!    plain sequential engine.
//! 2. **Final-state sets** — the explicit-state decider computes the same
//!    set of reachable final databases with and without the materializer
//!    (both directions, by content).
//! 3. **Witness identity** — the materialized engines report exactly the
//!    plain sequential engine's first witness: same answer substitution,
//!    same delta, same final database. A probe is a pure-query macro-step
//!    (no bindings, no delta), so even the committed path is unchanged.
//!
//! The generated goal space churns base relations with ins/del (kept
//! acyclic so plain top-down recursion terminates), interleaves ground
//! derived queries and absence tests, and wraps subgoals in iso blocks so
//! rollback re-keying is exercised alongside forward maintenance.

mod common;

use common::{assert_same_witness, corpus_files};
use proptest::prelude::*;
use std::sync::Arc;
use transaction_datalog::prelude::{
    parse_program, Atom, Database, Engine, EngineConfig, Goal, Program, SearchBackend, Term,
};

/// Reachability over an integer DAG: the canonical materializable shape
/// (one non-recursive rule, one recursive SCC) plus a negation-consuming
/// predicate, on a schema the churn generator can mutate.
const FIXTURE: &str = "base edge/2. base blocked/1.
    init edge(1, 2). init edge(2, 3). init edge(3, 4).
    path(X, Y) <- edge(X, Y).
    path(X, Z) <- edge(X, Y) * path(Y, Z).
    open(X, Y) <- path(X, Y) * not blocked(Y).";

fn fixture() -> (Program, Database) {
    let parsed = parse_program(FIXTURE).expect("fixture parses");
    let db = Database::with_schema_of(&parsed.program);
    let db = td_engine::load_init(&db, &parsed.init).expect("init loads");
    (parsed.program, db)
}

fn plain(program: &Program) -> Engine {
    Engine::with_config(
        program.clone(),
        EngineConfig::default().with_max_steps(200_000),
    )
}

fn materialized(program: &Program) -> Engine {
    Engine::with_config(
        program.clone(),
        EngineConfig::default()
            .with_max_steps(200_000)
            .with_materialize(),
    )
}

fn materialized_parallel(program: &Program, threads: usize) -> Engine {
    Engine::with_config(
        program.clone(),
        EngineConfig::default()
            .with_max_steps(200_000)
            .with_materialize()
            .with_backend(SearchBackend::Parallel {
                threads,
                deterministic: true,
            }),
    )
}

/// Generated goal space: base churn (insertions only ever add forward
/// edges `i < j`, keeping the graph acyclic so plain top-down terminates),
/// ground derived queries and absence tests, all under every TD connective
/// including isolation (whose internal rollbacks exercise re-keying).
fn arb_churn_goal(depth: u32) -> impl Strategy<Value = Goal> {
    let pair = || (1i64..6, 1i64..6);
    let leaf = prop_oneof![
        (1i64..5).prop_flat_map(|i| {
            ((i + 1)..6).prop_map(move |j| Goal::ins("edge", vec![Term::int(i), Term::int(j)]))
        }),
        pair().prop_map(|(i, j)| Goal::del("edge", vec![Term::int(i), Term::int(j)])),
        (1i64..6).prop_map(|i| Goal::ins("blocked", vec![Term::int(i)])),
        (1i64..6).prop_map(|i| Goal::del("blocked", vec![Term::int(i)])),
        pair().prop_map(|(i, j)| Goal::atom("path", vec![Term::int(i), Term::int(j)])),
        pair().prop_map(|(i, j)| Goal::atom("open", vec![Term::int(i), Term::int(j)])),
        pair()
            .prop_map(|(i, j)| Goal::NotAtom(Atom::new("path", vec![Term::int(i), Term::int(j)]))),
        pair().prop_map(|(i, j)| Goal::atom("edge", vec![Term::int(i), Term::int(j)])),
        Just(Goal::True),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Goal::seq),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Goal::par),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Goal::choice),
            inner.prop_map(Goal::iso),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn materialized_sequential_reports_the_plain_witness(g in arb_churn_goal(3)) {
        let (p, db) = fixture();
        let baseline = plain(&p).solve(&g, &db).unwrap();
        let engine = materialized(&p);
        prop_assert!(engine.materializer().is_some(), "fixture must compile");
        // Twice on one engine: the second run probes warm digest-keyed
        // states, the strongest maintenance test.
        for run in 0..2 {
            let got = engine.solve(&g, &db).unwrap();
            assert_same_witness(&baseline, &got, &format!("materialized seq run={run}"));
        }
    }

    #[test]
    fn materialized_deterministic_parallel_reports_the_plain_witness(g in arb_churn_goal(3)) {
        let (p, db) = fixture();
        let baseline = plain(&p).solve(&g, &db).unwrap();
        let par = materialized_parallel(&p, 4).solve(&g, &db).unwrap();
        assert_same_witness(&baseline, &par, "materialized 4-thread deterministic");
    }

    #[test]
    fn decider_final_state_sets_agree_with_and_without_materializer(g in arb_churn_goal(2)) {
        let (p, db) = fixture();
        let cfg = td_engine::decider::DeciderConfig::default();
        let bare = td_engine::decider::final_states(&p, &g, &db, cfg).unwrap();
        let mat = Some(Arc::new(
            td_engine::Materializer::compile(&p).expect("fixture must compile"),
        ));
        let viewed = td_engine::decider::final_states_materialized(
            &p, &g, &db, cfg, None, mat.clone(),
        )
        .unwrap();
        for d in &bare {
            prop_assert!(
                viewed.iter().any(|t| t.same_content(d)),
                "final state lost under materialization"
            );
        }
        for d in &viewed {
            prop_assert!(
                bare.iter().any(|t| t.same_content(d)),
                "materialization invented a final state"
            );
        }
        let pd = td_engine::decider::decide(&p, &g, &db, cfg).unwrap();
        let md = td_engine::decider::decide_materialized(&p, &g, &db, cfg, None, mat, None)
            .unwrap();
        prop_assert_eq!(pd.executable, md.executable);
    }
}

/// Deterministic regression: an isolated block whose branch mutates the
/// graph and then fails must leave no trace in the materialized views —
/// the follow-up absence test probes the rolled-back state, and the
/// re-applied insertion then flips the same query to true.
#[test]
fn isolation_rollback_probes_the_rolled_back_state() {
    let (p, db) = fixture();
    let ins45 = Goal::ins("edge", vec![Term::int(4), Term::int(5)]);
    let path15 = Goal::atom("path", vec![Term::int(1), Term::int(5)]);
    let fail = Goal::choice(vec![]);
    let g = Goal::seq(vec![
        // Seed the initial state's views first (the store is lazy until a
        // probe lands), so the updates below maintain rather than rebuild.
        Goal::atom("path", vec![Term::int(1), Term::int(4)]),
        Goal::iso(Goal::choice(vec![
            Goal::seq(vec![ins45.clone(), path15.clone(), fail]),
            Goal::True,
        ])),
        Goal::NotAtom(Atom::new("path", vec![Term::int(1), Term::int(5)])),
        ins45,
        path15,
    ]);
    let baseline = plain(&p).solve(&g, &db).unwrap();
    assert!(baseline.is_success(), "fixture goal must be executable");
    let engine = materialized(&p);
    let got = engine.solve(&g, &db).unwrap();
    assert_same_witness(&baseline, &got, "rollback churn");
    let m = engine.materializer().expect("fixture must compile");
    assert!(m.probes() > 0, "derived queries must hit the views");
    assert!(
        m.maintained_ops() > 0,
        "committed deltas must be maintained"
    );
}

/// Ins/del-heavy churn threaded across goals like `td run`: one warm
/// materializer maintains its states through a long transaction sequence,
/// and every witness stays identical to the plain engine's.
#[test]
fn churn_sequence_threads_identical_state() {
    let (p, db) = fixture();
    let plain_engine = plain(&p);
    let mat_engine = materialized(&p);
    let goals = [
        Goal::seq(vec![
            Goal::ins("edge", vec![Term::int(4), Term::int(5)]),
            Goal::atom("path", vec![Term::int(1), Term::int(5)]),
        ]),
        Goal::seq(vec![
            Goal::del("edge", vec![Term::int(2), Term::int(3)]),
            Goal::NotAtom(Atom::new("path", vec![Term::int(1), Term::int(5)])),
        ]),
        Goal::seq(vec![
            Goal::ins("blocked", vec![Term::int(5)]),
            Goal::ins("edge", vec![Term::int(2), Term::int(3)]),
            Goal::atom("path", vec![Term::int(1), Term::int(5)]),
            Goal::NotAtom(Atom::new("open", vec![Term::int(1), Term::int(5)])),
        ]),
        Goal::seq(vec![
            Goal::del("blocked", vec![Term::int(5)]),
            Goal::atom("open", vec![Term::int(1), Term::int(5)]),
        ]),
    ];
    let mut plain_db = db.clone();
    let mut mat_db = db;
    for (i, g) in goals.iter().enumerate() {
        let a = plain_engine.solve(g, &plain_db).unwrap();
        let b = mat_engine.solve(g, &mat_db).unwrap();
        assert_same_witness(&a, &b, &format!("churn goal {i}"));
        assert!(a.is_success(), "churn goal {i} must be executable");
        plain_db = a.solution().unwrap().db.clone();
        mat_db = b.solution().unwrap().db.clone();
    }
    let m = mat_engine.materializer().expect("fixture must compile");
    assert!(m.probes() > 0);
    assert!(m.maintained_ops() > 0);
}

/// Every corpus goal: the materialized sequential engine and the
/// materialized deterministic-parallel engine reproduce the plain
/// sequential witness exactly. Programs without a materializable fragment
/// simply run with `materializer() == None` — the flag must be a no-op
/// there, which this sweep also checks.
#[test]
fn corpus_materialized_matches_plain() {
    for path in corpus_files() {
        let src = std::fs::read_to_string(&path).unwrap();
        let parsed = parse_program(&src)
            .unwrap_or_else(|e| panic!("{}: {}", path.display(), e.render(&src)));
        let db = Database::with_schema_of(&parsed.program);
        let mut db = td_engine::load_init(&db, &parsed.init).unwrap();
        let plain_engine = plain(&parsed.program);
        let mat_engine = materialized(&parsed.program);
        let par_engine = materialized_parallel(&parsed.program, 4);
        for (i, g) in parsed.goals.iter().enumerate() {
            let baseline = plain_engine
                .solve(&g.goal, &db)
                .unwrap_or_else(|e| panic!("{} goal {i}: {e}", path.display()));
            let seq = mat_engine
                .solve(&g.goal, &db)
                .unwrap_or_else(|e| panic!("{} goal {i} (mat): {e}", path.display()));
            assert_same_witness(
                &baseline,
                &seq,
                &format!("{} goal {i} (materialized seq)", path.display()),
            );
            let par = par_engine
                .solve(&g.goal, &db)
                .unwrap_or_else(|e| panic!("{} goal {i} (mat par): {e}", path.display()));
            assert_same_witness(
                &baseline,
                &par,
                &format!("{} goal {i} (materialized 4t det)", path.display()),
            );
            if let Some(sol) = baseline.solution() {
                db = sol.db.clone();
            }
        }
    }
}
