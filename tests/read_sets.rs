//! Read-set capture: the engine reports, per solution, every relation the
//! search consulted — on the committed path *and* on failed, backtracked
//! branches — because that is the dependency set a store-level OCC commit
//! must validate against. These tests pin the capture rules end-to-end:
//!
//! 1. tests and absence tests record their predicate;
//! 2. pure writes (`ins`/`del`) record nothing — they are writes, their
//!    delta is independent of the target relation's content;
//! 3. reads on failed branches are *kept*, never truncated with the trail;
//! 4. the parallel backend's read set covers the sequential one (workers
//!    may explore more, never less, of what the witness depended on).

mod common;

use common::{engine_with, flag_program, parallel_det};
use td_core::{Atom, Pred};
use transaction_datalog::prelude::{Database, Goal, SearchBackend};

fn solve_reads(goal: &Goal, db: &Database) -> td_db::ReadSet {
    let engine = engine_with(&flag_program(), SearchBackend::Sequential);
    let outcome = engine.solve(goal, db).expect("no fault");
    outcome
        .solution()
        .expect("goal should be executable")
        .reads
        .clone()
}

fn db_with(flags: &[&str]) -> Database {
    let p = flag_program();
    let mut db = Database::with_schema_of(&p);
    for f in flags {
        db = db.insert(Pred::new(f, 0), &td_db::tuple!()).unwrap().0;
    }
    db
}

#[test]
fn tests_and_absence_tests_record_their_predicate() {
    let db = db_with(&["f0"]);
    let g = Goal::seq(vec![Goal::prop("f0"), Goal::NotAtom(Atom::prop("f1"))]);
    let reads = solve_reads(&g, &db);
    assert!(reads.contains(Pred::new("f0", 0)), "positive test read");
    assert!(reads.contains(Pred::new("f1", 0)), "absence test read");
    assert!(!reads.contains(Pred::new("f2", 0)), "untouched relation");
}

#[test]
fn pure_writes_record_no_reads() {
    let db = db_with(&[]);
    let g = Goal::seq(vec![Goal::ins("f0", vec![]), Goal::del("f1", vec![])]);
    let reads = solve_reads(&g, &db);
    assert!(
        reads.is_empty(),
        "ins/del are pure writes, got reads {{{reads}}}"
    );
}

#[test]
fn failed_branch_reads_survive_backtracking() {
    // First alternative tests f2 (absent) and fails; the witness comes from
    // the second alternative, which only writes. The f2 read must survive:
    // had f2 been present, the committed delta would have differed.
    let db = db_with(&[]);
    let g = Goal::choice(vec![
        Goal::seq(vec![Goal::prop("f2"), Goal::ins("f0", vec![])]),
        Goal::ins("f1", vec![]),
    ]);
    let reads = solve_reads(&g, &db);
    assert!(
        reads.contains(Pred::new("f2", 0)),
        "read on a failed branch must be kept, got {{{reads}}}"
    );
}

#[test]
fn parallel_read_set_covers_sequential() {
    let db = db_with(&["f0", "f2"]);
    let g = Goal::choice(vec![
        Goal::seq(vec![Goal::prop("f0"), Goal::ins("f1", vec![])]),
        Goal::seq(vec![Goal::prop("f2"), Goal::ins("f3", vec![])]),
    ]);
    let seq = solve_reads(&g, &db);
    let engine = engine_with(&flag_program(), parallel_det(4));
    let outcome = engine.solve(&g, &db).expect("no fault");
    let par = &outcome.solution().expect("executable").reads;
    for p in seq.preds() {
        assert!(
            par.contains(p),
            "parallel read set missing {p} present sequentially"
        );
    }
}
