//! End-to-end integration: source text → parser → engine → database,
//! spanning every crate through the umbrella's public API.

use transaction_datalog::prelude::*;

fn run_first_goal(src: &str) -> (Outcome, Program) {
    let parsed = parse_program(src).expect("program parses");
    let db = Database::with_schema_of(&parsed.program);
    let db = td_engine::load_init(&db, &parsed.init).expect("init loads");
    let engine = Engine::new(parsed.program.clone());
    let out = engine.solve(&parsed.goals[0].goal, &db).expect("no fault");
    (out, parsed.program)
}

#[test]
fn paper_section_2_overview_formulas() {
    // The paper's §2 example judgments, as executions:
    // {a,b} can run (del.a * del.b) | (ins.c * ins.d) ending in {c,d}.
    let src = "
        base a/0. base b/0. base c/0. base d/0.
        init a. init b.
        ?- (del.a * del.b) | (ins.c * ins.d).
    ";
    let (out, _) = run_first_goal(src);
    let sol = out.solution().expect("the paper's §2 goal executes");
    assert_eq!(sol.db.to_string(), "{c, d}");
}

#[test]
fn paper_example_3_1_full_workflow_source() {
    // Example 3.1 as printed in the paper (task numbering preserved).
    let src = "
        base item/1.
        base done/2.
        init item(w1).

        workflow(W) <- task1(W) * (task2(W) | subflow(W)) * task5(W).
        subflow(W)  <- task3(W) * task4(W).
        task1(W) <- item(W) * ins.done(W, t1).
        task2(W) <- ins.done(W, t2).
        task3(W) <- ins.done(W, t3).
        task4(W) <- ins.done(W, t4).
        task5(W) <- done(W, t2) * done(W, t4) * ins.done(W, t5).

        ?- workflow(w1).
    ";
    let (out, program) = run_first_goal(src);
    let sol = out.solution().expect("workflow completes");
    assert_eq!(sol.db.relation(Pred::new("done", 2)).unwrap().len(), 5);
    // task5's preconditions make the serial order observable.
    let ops: Vec<String> = sol.delta.ops().iter().map(|o| o.to_string()).collect();
    let idx = |needle: &str| ops.iter().position(|o| o.contains(needle)).unwrap();
    assert!(idx("t1") < idx("t5"));
    assert!(idx("t2") < idx("t5"));
    assert!(idx("t4") < idx("t5"));
    // And the fragment is the tractable one.
    let goal = Goal::atom("workflow", vec![Term::sym("w1")]);
    assert_eq!(
        FragmentReport::classify(&program, &goal).fragment,
        Fragment::Nonrecursive
    );
}

#[test]
fn committed_runs_are_entailed_by_the_declarative_semantics() {
    // Interpreter commits a path; the executional-entailment oracle
    // re-judges the goal against that exact state sequence.
    let src = "
        base item/1. base done/2. base sync/1.
        init item(w1). init item(w2).
        wf(W) <- item(W) * del.item(W) * ins.done(W, a) * ins.done(W, b).
        ?- wf(w1) | wf(w2) | (done(w1, a) * ins.sync(ok)).
    ";
    let parsed = parse_program(src).unwrap();
    let db = Database::with_schema_of(&parsed.program);
    let db = td_engine::load_init(&db, &parsed.init).unwrap();
    let engine = Engine::new(parsed.program.clone());
    let goal = &parsed.goals[0].goal;
    let sol = engine.solve(goal, &db).unwrap();
    let delta = sol.solution().unwrap().delta.clone();
    assert!(td_engine::entail::entails_via_delta(&parsed.program, &db, &delta, goal).unwrap());
}

#[test]
fn engine_and_decider_agree_across_example_programs() {
    let cases = [
        // communication through the database
        "base m/0. base d/0. c <- m * ins.d. p <- ins.m. ?- c | p.",
        // isolation hides intermediate states
        "base f/0. base s/0. r <- f * ins.s. ?- iso { ins.f * del.f } | r.",
        // choice + updates
        "base t/1. pick <- { ins.t(1) or ins.t(2) }. ?- pick * t(2).",
        // tail-recursive countdown
        "base n/1. init n(3).
         down <- n(0).
         down <- n(X) * X > 0 * del.n(X) * Y is X - 1 * ins.n(Y) * down.
         ?- down.",
        // unexecutable: wrong serial order
        "base t/0. ?- t * ins.t.",
    ];
    for src in cases {
        let parsed = parse_program(src).unwrap();
        let db = Database::with_schema_of(&parsed.program);
        let db = td_engine::load_init(&db, &parsed.init).unwrap();
        let engine = Engine::new(parsed.program.clone());
        let goal = &parsed.goals[0].goal;
        let eng = engine.executable(goal, &db).unwrap();
        let dec = td_engine::decider::decide(
            &parsed.program,
            goal,
            &db,
            td_engine::decider::DeciderConfig::default(),
        )
        .unwrap();
        assert_eq!(eng, dec.executable, "engine vs decider on: {src}");
    }
}

#[test]
fn workflow_generators_round_trip_through_the_parser() {
    use transaction_datalog::workflow::{LabFlowConfig, SyncPair, WorkflowSpec};
    let sources = [
        WorkflowSpec::example_3_1()
            .compile(&["w1".to_owned()])
            .source,
        SyncPair::new(2).compile().source,
        LabFlowConfig::new(2, 3).compile().source,
    ];
    for src in sources {
        let parsed = parse_program(&src).expect("generated source parses");
        // ...and the program's own rendering parses again.
        let rendered = parsed.program.to_source();
        parse_program(&rendered).expect("re-rendered source parses");
    }
}

#[test]
fn machines_cross_validate_against_baselines() {
    use transaction_datalog::machines::{Cnf, Qbf};
    for seed in 0..4 {
        let qbf = Qbf::random(3, 4, seed);
        let s = qbf.to_td();
        let out = s
            .run_with(EngineConfig::default().with_max_steps(5_000_000))
            .unwrap();
        assert_eq!(out.is_success(), qbf.eval(), "qbf seed {seed}");

        let cnf = Cnf::random_3sat(4, 9, seed);
        let s = cnf.to_td();
        let out = s
            .run_with(EngineConfig::default().with_max_steps(5_000_000))
            .unwrap();
        assert_eq!(out.is_success(), cnf.dpll(), "sat seed {seed}");
    }
}

#[test]
fn fragment_classification_spans_the_paper_table() {
    use transaction_datalog::machines::MinskyMachine;
    use transaction_datalog::workflow::{RepeatProtocol, SimulationConfig, WorkflowSpec};

    // Nonrecursive (Thm 4.7)
    let s = WorkflowSpec::example_3_1().compile(&["w".to_owned()]);
    assert_eq!(
        FragmentReport::classify(&s.program, &s.goal).fragment,
        Fragment::Nonrecursive
    );
    // Fully bounded (§5)
    let s = RepeatProtocol::new(2, 2).compile();
    assert_eq!(
        FragmentReport::classify(&s.program, &s.goal).fragment,
        Fragment::FullyBounded
    );
    // Sequential rulebase, RE-complete (Cor 4.6)
    let s = MinskyMachine::parity().to_td();
    assert_eq!(
        FragmentReport::classify(&s.program, &s.goal).fragment,
        Fragment::SequentialRulebase
    );
    // Full TD (Example 3.2's spawning recursion)
    let s = SimulationConfig::new(1, 1).compile();
    assert_eq!(
        FragmentReport::classify(&s.program, &s.goal).fragment,
        Fragment::Full
    );
}

#[test]
fn failed_transactions_leave_the_database_value_untouched() {
    // The all-or-nothing property across a deep nested structure.
    let src = "
        base log/1. base ok/0.
        stepper(N) <- ins.log(N).
        doomed <- stepper(1) * stepper(2) * iso { stepper(3) * stepper(4) } * fail.
        ?- doomed.
    ";
    let parsed = parse_program(src).unwrap();
    let db = Database::with_schema_of(&parsed.program);
    let engine = Engine::new(parsed.program.clone());
    let out = engine.solve(&parsed.goals[0].goal, &db).unwrap();
    assert!(!out.is_success());
}

#[test]
fn inlining_preserves_workflow_behaviour() {
    // The Example 3.1 workflow inlines heavily (every task is single-rule,
    // nonrecursive); the inlined program must produce the same final state.
    use transaction_datalog::workflow::WorkflowSpec;
    let scenario = WorkflowSpec::example_3_1().compile(&["w1".to_owned()]);
    let inlined = td_core::transform::inline(&scenario.program);
    let engine_orig = Engine::new(scenario.program.clone());
    let engine_inl = Engine::new(inlined);
    let a = engine_orig.solve(&scenario.goal, &scenario.db).unwrap();
    let b = engine_inl.solve(&scenario.goal, &scenario.db).unwrap();
    assert!(a.is_success() && b.is_success());
    assert!(a
        .solution()
        .unwrap()
        .db
        .same_content(&b.solution().unwrap().db));
    // Inlining removes unfolding work at run time.
    assert!(b.solution().unwrap().stats.unfolds <= a.solution().unwrap().stats.unfolds);
}

#[test]
fn magic_sets_agree_with_engine_on_reachability() {
    let src = "
        base e/2.
        init e(a, b). init e(b, c). init e(c, d). init e(x, y).
        path(X, Y) <- e(X, Y).
        path(X, Z) <- e(X, Y) * path(Y, Z).
    ";
    let parsed = parse_program(src).unwrap();
    let db = Database::with_schema_of(&parsed.program);
    let db = td_engine::load_init(&db, &parsed.init).unwrap();
    let engine = Engine::new(parsed.program.clone());
    for (from, to) in [("a", "d"), ("a", "y"), ("x", "y"), ("d", "a")] {
        let atom = Atom::new("path", vec![Term::sym(from), Term::sym(to)]);
        let via_engine = engine.executable(&Goal::Atom(atom.clone()), &db).unwrap();
        let (answers, _) = td_engine::magic::answer(&parsed.program, &db, &atom).unwrap();
        assert_eq!(via_engine, !answers.is_empty(), "path({from},{to})");
    }
}
