//! Differential tests for the kernel seam: all three drivers of
//! `td_engine::kernel` — the sequential machine, the explicit-state
//! decider, and the work-stealing parallel backend — are *schedulers* over
//! one shared transition relation, so on any input they must agree on
//! everything the semantics determines:
//!
//! 1. **Executability** — the same success/failure verdict from the
//!    sequential engine, the parallel backend at several thread counts,
//!    and the decider's reachability search.
//! 2. **Final-state sets** — the databases committed by exhaustive
//!    sequential enumeration are exactly the decider's reachable final
//!    states (both inclusions, by content).
//! 3. **Backend-invariant obs counters** — on every corpus program, the
//!    outcome-level counters (`solutions`, `committed_updates`,
//!    `failures`) agree between the sequential and deterministic-parallel
//!    drivers, and the decider (run alongside) returns the same per-goal
//!    verdict — extending the PR 3 seq/parallel check to all three
//!    drivers.
//!
//! `parallel_equivalence.rs` and `cache_equivalence.rs` pin *witness
//! identity* for their subsystems; this suite pins the semantic agreement
//! that makes the kernel extraction safe.

mod common;

use common::{
    arb_goal, corpus_programs, engine_with, flag_program, parallel, parallel_det, run_observed,
};
use proptest::prelude::*;
use td_engine::decider::{decide, final_states, DeciderConfig};
use transaction_datalog::prelude::parse_program;
use transaction_datalog::prelude::{Database, SearchBackend};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// One verdict per goal, whichever driver schedules the kernel.
    #[test]
    fn all_three_drivers_agree_on_executability(g in arb_goal(3)) {
        let p = flag_program();
        let db = Database::with_schema_of(&p);
        let seq = engine_with(&p, SearchBackend::Sequential)
            .executable(&g, &db)
            .expect("ground goals cannot fault within budget");
        for backend in [parallel(2), parallel(4), parallel_det(4)] {
            let par = engine_with(&p, backend)
                .executable(&g, &db)
                .expect("parallel search cannot fault on ground goals");
            prop_assert_eq!(seq, par, "backend {:?}", backend);
        }
        let d = decide(&p, &g, &db, DeciderConfig::default()).unwrap();
        prop_assert!(!d.truncated, "flag goal space exceeded decider budget");
        prop_assert_eq!(seq, d.executable, "decider verdict diverged");
    }

    /// Exhaustive sequential enumeration and the decider's explicit-state
    /// search compute the same set of reachable final databases.
    #[test]
    fn sequential_enumeration_matches_decider_final_states(g in arb_goal(3)) {
        let p = flag_program();
        let db = Database::with_schema_of(&p);
        // Distinct-by-path enumeration: every successful interleaving, so
        // the limit must exceed the path count for the completeness
        // direction to be meaningful.
        const LIMIT: usize = 20_000;
        let engine = engine_with(&p, SearchBackend::Sequential);
        let sols = match engine.solutions(&g, &db, LIMIT) {
            Ok(s) => Some(s.solutions),
            // A pathological interleaving count can exhaust the step
            // budget; soundness/completeness is then vacuous here and
            // covered by smaller cases.
            Err(td_engine::EngineError::StepBudget { .. }) => None,
            Err(e) => panic!("unexpected fault: {e}"),
        };
        if let Some(sols) = sols {
            let finals = final_states(&p, &g, &db, DeciderConfig::default()).unwrap();
            for (i, sol) in sols.iter().enumerate() {
                prop_assert!(
                    finals.iter().any(|d| d.same_content(&sol.db)),
                    "solution {i}: committed database not among the decider's final states"
                );
            }
            if sols.len() < LIMIT {
                // Enumeration was exhaustive, so it must also be complete:
                // every decider final state is some solution's database.
                for (i, d) in finals.iter().enumerate() {
                    prop_assert!(
                        sols.iter().any(|s| s.db.same_content(d)),
                        "final state {i} unreachable by sequential enumeration"
                    );
                }
            }
        }
    }
}

/// Every corpus goal, all three drivers: the decider's verdict matches the
/// sequential engine's, and the outcome-level obs counters agree between
/// the sequential and deterministic-parallel runs. Goals run in file
/// sequence against the sequential engine's committed state, like
/// `td run`; the decider is consulted per goal on the same database.
#[test]
fn corpus_verdicts_and_logical_counters_agree_across_drivers() {
    let decider_cfg = DeciderConfig {
        max_configs: 200_000,
        ..DeciderConfig::default()
    };
    for (name, source) in corpus_programs() {
        let (seq_oks, seq_digest, seq_obs) = run_observed(&source, SearchBackend::Sequential);
        let (par_oks, par_digest, par_obs) = run_observed(&source, parallel_det(4));
        assert_eq!(seq_oks, par_oks, "{name}: per-goal verdicts diverged");
        assert_eq!(seq_digest, par_digest, "{name}: final databases diverged");
        let seq = seq_obs.registry.snapshot();
        let par = par_obs.registry.snapshot();
        for counter in ["solutions", "committed_updates", "failures"] {
            assert_eq!(
                seq.counter(counter),
                par.counter(counter),
                "{name}: logical counter `{counter}` diverged"
            );
        }

        // Third driver: the decider, on the same per-goal databases.
        let parsed = parse_program(&source).expect("corpus parses");
        let mut db = td_engine::load_init(&Database::with_schema_of(&parsed.program), &parsed.init)
            .expect("corpus init loads");
        let engine = engine_with(&parsed.program, SearchBackend::Sequential);
        for (i, g) in parsed.goals.iter().enumerate() {
            let outcome = engine
                .solve(&g.goal, &db)
                .unwrap_or_else(|e| panic!("{name} goal {i}: {e}"));
            // The decider explores *all* schedules; skip goals whose full
            // configuration graph exceeds the budget or reaches a faulting
            // schedule the strategy-ordered engine never visits.
            if let Ok(d) = decide(&parsed.program, &g.goal, &db, decider_cfg) {
                if !d.truncated {
                    assert_eq!(
                        outcome.is_success(),
                        d.executable,
                        "{name} goal {i}: decider verdict diverged"
                    );
                }
            }
            if let Some(sol) = outcome.solution() {
                db = sol.db.clone();
            }
        }
    }
}
