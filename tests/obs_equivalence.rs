//! Differential tests for the observability subsystem (`td_engine::obs`):
//! attaching an observer must not change any result, and the logical
//! counters it reports must agree between the sequential and the
//! deterministic-parallel backends.
//!
//! Two invariants, on every corpus program:
//!
//! 1. **Transparency** — an observed run commits exactly the same witness
//!    (answer, delta, final database digest) as an unobserved one, and the
//!    registry echoes the run's own `Stats` faithfully (`steps` counter ==
//!    `stats.steps`, per backend).
//! 2. **Backend invariance** — raw step counts legitimately differ between
//!    backends (the parallel search counts configuration expansions), but
//!    the outcome-level counters the engine absorbs (`solutions`,
//!    `committed_updates`, `failures`) are properties of the witness, and
//!    the deterministic-parallel backend promises the sequential witness —
//!    so those totals must be identical.

mod common;

use common::{corpus_programs, run_observed};
use std::sync::Arc;
use td_engine::{load_init, Observer};
use transaction_datalog::prelude::*;

#[test]
fn registry_reports_each_backends_own_stats_faithfully() {
    for (name, source) in corpus_programs() {
        let parsed = parse_program(&source).expect("corpus parses");
        let config = EngineConfig::default().with_max_steps(2_000_000);
        let obs = Arc::new(Observer::new());
        let engine = Engine::with_config(parsed.program.clone(), config).with_observer(obs.clone());
        let mut db = load_init(&Database::with_schema_of(&parsed.program), &parsed.init)
            .expect("corpus init loads");
        let mut total_steps = 0u64;
        let mut total_unfolds = 0u64;
        for g in &parsed.goals {
            let outcome = engine.solve(&g.goal, &db).expect("corpus run cannot fault");
            let stats = outcome.stats();
            total_steps += stats.steps;
            total_unfolds += stats.unfolds;
            if let Some(sol) = outcome.solution() {
                db = sol.db.clone();
            }
        }
        let snap = obs.registry.snapshot();
        assert_eq!(snap.counter("steps"), total_steps, "{name}");
        assert_eq!(snap.counter("unfolds"), total_unfolds, "{name}");
        // Per-rule expansion counts partition the unfold total.
        let per_rule: u64 = snap.rule_unfolds.values().sum();
        assert_eq!(per_rule, total_unfolds, "{name}");
    }
}

#[test]
fn logical_counters_agree_between_sequential_and_deterministic_parallel() {
    for (name, source) in corpus_programs() {
        let (seq_oks, seq_digest, seq_obs) = run_observed(&source, SearchBackend::Sequential);
        let (par_oks, par_digest, par_obs) = run_observed(
            &source,
            SearchBackend::Parallel {
                threads: 4,
                deterministic: true,
            },
        );
        assert_eq!(seq_oks, par_oks, "{name}: per-goal outcomes diverged");
        assert_eq!(seq_digest, par_digest, "{name}: final databases diverged");
        let seq = seq_obs.registry.snapshot();
        let par = par_obs.registry.snapshot();
        for counter in ["solutions", "committed_updates", "failures"] {
            assert_eq!(
                seq.counter(counter),
                par.counter(counter),
                "{name}: logical counter `{counter}` diverged"
            );
        }
        assert_eq!(seq.runs, par.runs, "{name}: run counts diverged");
    }
}

/// Run every goal of a corpus file against a fresh durable store at `dir`,
/// committing each successful transaction through the WAL the way
/// `td --db run` does. Returns the store's final persisted digest, read
/// back by a cold `Store::verify` pass (checksums + per-record digests).
fn run_durably(source: &str, dir: &std::path::Path, backend: SearchBackend) -> u128 {
    use transaction_datalog::db::{Delta, DeltaOp};
    let parsed = parse_program(source).expect("corpus parses");
    let config = EngineConfig::default()
        .with_max_steps(2_000_000)
        .with_backend(backend);
    let engine = Engine::with_config(parsed.program.clone(), config);
    let schema = Database::with_schema_of(&parsed.program);
    let mut store = Store::init(dir, &schema).expect("store init");
    let with_init = load_init(&schema, &parsed.init).expect("corpus init loads");
    let mut genesis = Delta::new();
    for p in with_init.preds() {
        if let Some(rel) = with_init.relation(p) {
            for t in rel.to_sorted_vec() {
                genesis.push(DeltaOp::Ins(p, t));
            }
        }
    }
    if !genesis.is_empty() {
        store.commit(&genesis).expect("genesis commit");
    }
    for g in &parsed.goals {
        let outcome = engine
            .solve(&g.goal, store.db())
            .expect("corpus run cannot fault");
        if let Some(sol) = outcome.solution() {
            if !sol.delta.is_empty() {
                store.commit(&sol.delta).expect("commit");
            }
            assert_eq!(store.db().digest(), sol.db.digest());
        }
    }
    drop(store);
    let report = Store::verify(dir).expect("closed store verifies");
    report.final_digest
}

#[test]
fn sequential_and_deterministic_parallel_persist_identical_digests() {
    // The durability layer must not leak backend choice into the persisted
    // state: running a corpus file durably under the sequential engine and
    // under the deterministic-parallel one must leave byte-equivalent
    // content — equal digests after a cold, checksum-verified re-read.
    let root = std::env::temp_dir().join("td-obs-store-equivalence");
    let _ = std::fs::remove_dir_all(&root);
    std::fs::create_dir_all(&root).unwrap();
    for (name, source) in corpus_programs() {
        let seq_dir = root.join(format!("{name}.seq"));
        let par_dir = root.join(format!("{name}.par"));
        let seq_digest = run_durably(&source, &seq_dir, SearchBackend::Sequential);
        let par_digest = run_durably(
            &source,
            &par_dir,
            SearchBackend::Parallel {
                threads: 4,
                deterministic: true,
            },
        );
        assert_eq!(
            seq_digest, par_digest,
            "{name}: persisted digests diverged between backends"
        );
    }
    let _ = std::fs::remove_dir_all(&root);
}

#[test]
fn observed_runs_commit_the_same_witness_as_unobserved_runs() {
    for (name, source) in corpus_programs() {
        let parsed = parse_program(&source).expect("corpus parses");
        let config = EngineConfig::default().with_max_steps(2_000_000);
        let plain = Engine::with_config(parsed.program.clone(), config.clone());
        let observed = Engine::with_config(parsed.program.clone(), config)
            .with_observer(Arc::new(Observer::new()));
        let init = load_init(&Database::with_schema_of(&parsed.program), &parsed.init)
            .expect("corpus init loads");
        let mut db_a = init.clone();
        let mut db_b = init;
        for g in &parsed.goals {
            let a = plain
                .solve(&g.goal, &db_a)
                .expect("corpus run cannot fault");
            let b = observed
                .solve(&g.goal, &db_b)
                .expect("corpus run cannot fault");
            assert_eq!(a.is_success(), b.is_success(), "{name}");
            if let (Some(sa), Some(sb)) = (a.solution(), b.solution()) {
                assert_eq!(sa.answer, sb.answer, "{name}");
                assert_eq!(sa.db.digest(), sb.db.digest(), "{name}");
                assert_eq!(sa.delta.len(), sb.delta.len(), "{name}");
                db_a = sa.db.clone();
                db_b = sb.db.clone();
            }
        }
    }
}
