//! Property-based integration tests: algebraic laws of TD's composition
//! operators, validated through the engine on randomly generated programs.
//!
//! The laws come from the equational theory of the paper's semantics
//! ([17, 20]): `⊗` is associative with unit `()`; `|` is associative and
//! commutative with unit `()`; `⊙` is idempotent on already-isolated goals;
//! and executability is invariant under these rewrites.

use proptest::prelude::*;
use transaction_datalog::prelude::{Atom, Database, Engine, EngineConfig, Goal, Outcome, Program};

/// A small random ground goal over flags f0..f3: ins/del/test/not
/// compositions. Depth-bounded.
fn arb_goal(depth: u32) -> impl Strategy<Value = Goal> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(|i| Goal::ins(&format!("f{i}"), vec![])),
        (0u8..4).prop_map(|i| Goal::del(&format!("f{i}"), vec![])),
        (0u8..4).prop_map(|i| Goal::prop(&format!("f{i}"))),
        (0u8..4).prop_map(|i| Goal::NotAtom(Atom::prop(&format!("f{i}")))),
        Just(Goal::True),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Goal::seq),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Goal::par),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Goal::choice),
            inner.prop_map(Goal::iso),
        ]
    })
}

fn program() -> Program {
    Program::builder()
        .base_preds(&[("f0", 0), ("f1", 0), ("f2", 0), ("f3", 0)])
        .build()
        .unwrap()
}

fn executable(program: &Program, goal: &Goal) -> bool {
    let db = Database::with_schema_of(program);
    let engine = Engine::with_config(
        program.clone(),
        EngineConfig::default().with_max_steps(200_000),
    );
    engine
        .executable(goal, &db)
        .expect("ground goals cannot fault within budget")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn seq_associativity(a in arb_goal(2), b in arb_goal(2), c in arb_goal(2)) {
        let p = program();
        let left = Goal::seq(vec![Goal::Seq(vec![a.clone(), b.clone()]), c.clone()]);
        let right = Goal::seq(vec![a, Goal::Seq(vec![b, c])]);
        prop_assert_eq!(executable(&p, &left), executable(&p, &right));
    }

    #[test]
    fn par_commutativity(a in arb_goal(2), b in arb_goal(2)) {
        let p = program();
        let ab = Goal::par(vec![a.clone(), b.clone()]);
        let ba = Goal::par(vec![b, a]);
        prop_assert_eq!(executable(&p, &ab), executable(&p, &ba));
    }

    #[test]
    fn units_are_neutral(a in arb_goal(3)) {
        let p = program();
        let bare = executable(&p, &a);
        prop_assert_eq!(bare, executable(&p, &Goal::seq(vec![a.clone(), Goal::True])));
        prop_assert_eq!(bare, executable(&p, &Goal::seq(vec![Goal::True, a.clone()])));
        prop_assert_eq!(bare, executable(&p, &Goal::par(vec![a.clone(), Goal::True])));
    }

    #[test]
    fn choice_is_angelic(a in arb_goal(2), b in arb_goal(2)) {
        // { a or b } executable iff a executable or b executable.
        let p = program();
        let either = executable(&p, &Goal::choice(vec![a.clone(), b.clone()]));
        prop_assert_eq!(either, executable(&p, &a) || executable(&p, &b));
    }

    #[test]
    fn iso_is_idempotent(a in arb_goal(2)) {
        let p = program();
        let once = Goal::iso(a.clone());
        let twice = Goal::iso(Goal::iso(a));
        prop_assert_eq!(executable(&p, &once), executable(&p, &twice));
    }

    #[test]
    fn iso_refines_free_interleaving(a in arb_goal(2), b in arb_goal(2)) {
        // Any isolated success is also a free success: iso{a} | iso{b}
        // executable implies a | b executable (serial schedules are a
        // subset of interleavings).
        let p = program();
        let isolated = Goal::par(vec![Goal::iso(a.clone()), Goal::iso(b.clone())]);
        if executable(&p, &isolated) {
            prop_assert!(executable(&p, &Goal::par(vec![a, b])));
        }
    }

    #[test]
    fn failure_leaves_search_but_not_outcome(a in arb_goal(2)) {
        // a * fail is never executable, whatever a is.
        let p = program();
        prop_assert!(!executable(&p, &Goal::seq(vec![a, Goal::Fail])));
    }

    #[test]
    fn engine_agrees_with_decider(a in arb_goal(2)) {
        let p = program();
        let db = Database::with_schema_of(&p);
        let eng = executable(&p, &a);
        let dec = td_engine::decider::decide(
            &p,
            &a,
            &db,
            td_engine::decider::DeciderConfig::default(),
        ).unwrap();
        prop_assert!(!dec.truncated);
        prop_assert_eq!(eng, dec.executable);
    }

    #[test]
    fn simplify_preserves_executability(a in arb_goal(3)) {
        let p = program();
        let simplified = td_core::transform::simplify(&a);
        prop_assert_eq!(executable(&p, &a), executable(&p, &simplified));
        // and it is idempotent
        prop_assert_eq!(td_core::transform::simplify(&simplified).clone(), simplified);
    }

    #[test]
    fn committed_delta_is_entailed(a in arb_goal(2)) {
        let p = program();
        let db = Database::with_schema_of(&p);
        let engine = Engine::with_config(
            p.clone(),
            EngineConfig::default().with_max_steps(200_000),
        );
        if let Outcome::Success(sol) = engine.solve(&a, &db).unwrap() {
            prop_assert!(td_engine::entail::entails_via_delta(&p, &db, &sol.delta, &a).unwrap());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn par_associativity(a in arb_goal(2), b in arb_goal(2), c in arb_goal(2)) {
        let p = program();
        let left = Goal::par(vec![Goal::Par(vec![a.clone(), b.clone()]), c.clone()]);
        let right = Goal::par(vec![a, Goal::Par(vec![b, c])]);
        prop_assert_eq!(executable(&p, &left), executable(&p, &right));
    }

    #[test]
    fn serial_refines_concurrent(a in arb_goal(2), b in arb_goal(2)) {
        // a * b executable ⇒ a | b executable (the serial order is one of
        // the interleavings).
        let p = program();
        if executable(&p, &Goal::seq(vec![a.clone(), b.clone()])) {
            prop_assert!(executable(&p, &Goal::par(vec![a, b])));
        }
    }

    #[test]
    fn choice_distributes_over_seq_prefix(a in arb_goal(2), b in arb_goal(2), c in arb_goal(2)) {
        // (a or b) * c  ≡  (a * c) or (b * c)   (executability)
        let p = program();
        let lhs = Goal::seq(vec![Goal::choice(vec![a.clone(), b.clone()]), c.clone()]);
        let rhs = Goal::choice(vec![
            Goal::seq(vec![a, c.clone()]),
            Goal::seq(vec![b, c]),
        ]);
        prop_assert_eq!(executable(&p, &lhs), executable(&p, &rhs));
    }
}

/// Random workflow control-flow trees for audit properties. Task names are
/// uniquified after generation: the audit's conventions assume each task
/// appears once in the spec (as the paper's examples do).
fn arb_node(depth: u32) -> impl Strategy<Value = transaction_datalog::workflow::Node> {
    use transaction_datalog::workflow::Node;
    fn uniquify(n: &Node, counter: &mut u32) -> Node {
        match n {
            Node::Task(_) => {
                *counter += 1;
                Node::Task(format!("t{counter}"))
            }
            Node::Sub(name, body) => Node::Sub(name.clone(), Box::new(uniquify(body, counter))),
            Node::Seq(ns) => Node::Seq(ns.iter().map(|c| uniquify(c, counter)).collect()),
            Node::Par(ns) => Node::Par(ns.iter().map(|c| uniquify(c, counter)).collect()),
        }
    }
    let leaf = Just(Node::Task("t".to_owned()));
    leaf.prop_recursive(depth, 12, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Node::Seq),
            proptest::collection::vec(inner.clone(), 1..3).prop_map(Node::Par),
        ]
    })
    .prop_map(|n| {
        let mut counter = 0;
        uniquify(&n, &mut counter)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn committed_workflow_runs_always_pass_the_audit(body in arb_node(3)) {
        use transaction_datalog::workflow::{audit, WorkflowSpec};
        let spec = WorkflowSpec::new("wf", body);
        let items = vec!["w1".to_owned(), "w2".to_owned()];
        let scenario = spec.compile(&items);
        let out = scenario
            .run_with(EngineConfig::default().with_max_steps(500_000))
            .expect("within budget");
        let sol = out.solution().expect("generated workflows complete");
        let violations = audit(&spec, &sol.delta);
        prop_assert!(violations.is_empty(), "violations: {violations:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn complete_strategies_agree_on_executability(a in arb_goal(3)) {
        // Exhaustive and randomized-exhaustive are both complete: whatever
        // the exploration order, executability is a property of the goal.
        let p = program();
        let db = Database::with_schema_of(&p);
        let reference = executable(&p, &a);
        for seed in 0..3u64 {
            let engine = Engine::with_config(
                p.clone(),
                EngineConfig::default()
                    .with_max_steps(400_000)
                    .with_strategy(td_engine::Strategy::ExhaustiveRandom(seed)),
            );
            prop_assert_eq!(
                engine.executable(&a, &db).expect("within budget"),
                reference,
                "seed {} disagrees", seed
            );
        }
    }

    #[test]
    fn incomplete_strategies_never_invent_success(a in arb_goal(3)) {
        // RoundRobin/Leftmost may miss successes but must not fabricate
        // them: any success they find is a real execution.
        let p = program();
        let db = Database::with_schema_of(&p);
        for strat in [td_engine::Strategy::RoundRobin, td_engine::Strategy::Leftmost] {
            let engine = Engine::with_config(
                p.clone(),
                EngineConfig::default()
                    .with_max_steps(400_000)
                    .with_strategy(strat),
            );
            if let Outcome::Success(sol) = engine.solve(&a, &db).expect("within budget") {
                prop_assert!(
                    td_engine::entail::entails_via_delta(&p, &db, &sol.delta, &a).unwrap(),
                    "{strat:?} committed a non-execution"
                );
            }
        }
    }
}
