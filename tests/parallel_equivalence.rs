//! Differential tests: the parallel work-stealing backend must agree with
//! the sequential engine.
//!
//! Three layers of agreement, in increasing strictness:
//!
//! 1. **Executability** — on any goal, parallel and sequential report the
//!    same success/failure (the decision problem has one answer; which
//!    machinery searches the interleaving space must not matter).
//! 2. **Final-state membership** — a parallel success must commit a final
//!    database the explicit-state decider lists among the goal's reachable
//!    final states (any witness is a *valid* witness).
//! 3. **Deterministic witness** — with `deterministic: true`, the parallel
//!    backend reports exactly the sequential engine's first witness:
//!    same answer substitution, same delta, same final database.
//!
//! Plus the step-budget contract: an exhausted budget is reported as
//! `EngineError::StepBudget`, never misreported as plain failure.

mod common;

use common::{arb_goal, corpus_files, engine_with, flag_program, parallel, parallel_det};
use proptest::prelude::*;
use transaction_datalog::prelude::parse_program;
use transaction_datalog::prelude::{
    Database, Engine, EngineConfig, Goal, SearchBackend, Term, Value,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn parallel_agrees_with_sequential_on_executability(g in arb_goal(3)) {
        let p = flag_program();
        let db = Database::with_schema_of(&p);
        let seq = engine_with(&p, SearchBackend::Sequential)
            .executable(&g, &db)
            .expect("ground goals cannot fault within budget");
        for threads in [2usize, 4] {
            let par = engine_with(&p, parallel(threads))
                .executable(&g, &db)
                .expect("parallel search cannot fault on ground goals");
            prop_assert_eq!(seq, par, "threads={}", threads);
        }
    }

    #[test]
    fn parallel_success_commits_a_reachable_final_state(g in arb_goal(3)) {
        let p = flag_program();
        let db = Database::with_schema_of(&p);
        let out = engine_with(&p, parallel(4)).solve(&g, &db).unwrap();
        if let Some(sol) = out.solution() {
            let finals = td_engine::decider::final_states(
                &p,
                &g,
                &db,
                td_engine::decider::DeciderConfig::default(),
            )
            .unwrap();
            prop_assert!(
                finals.iter().any(|d| d.same_content(&sol.db)),
                "parallel witness database not among the decider's final states"
            );
        }
    }

    #[test]
    fn deterministic_parallel_reports_the_sequential_witness(g in arb_goal(3)) {
        let p = flag_program();
        let db = Database::with_schema_of(&p);
        let seq = engine_with(&p, SearchBackend::Sequential).solve(&g, &db).unwrap();
        let par = engine_with(&p, parallel_det(4)).solve(&g, &db).unwrap();
        prop_assert_eq!(seq.is_success(), par.is_success());
        if let (Some(s), Some(q)) = (seq.solution(), par.solution()) {
            prop_assert_eq!(&s.answer, &q.answer);
            prop_assert_eq!(s.delta.ops(), q.delta.ops());
            prop_assert!(s.db.same_content(&q.db));
        }
    }
}

/// Every corpus goal: parallel (2 and 4 threads) agrees with sequential on
/// success, and the deterministic mode reproduces the sequential witness
/// exactly. Goals run in file sequence against the sequential engine's
/// committed state, like `td run`.
#[test]
fn corpus_parallel_matches_sequential() {
    for path in corpus_files() {
        let src = std::fs::read_to_string(&path).unwrap();
        let parsed = parse_program(&src)
            .unwrap_or_else(|e| panic!("{}: {}", path.display(), e.render(&src)));
        let db = Database::with_schema_of(&parsed.program);
        let mut db = td_engine::load_init(&db, &parsed.init).unwrap();
        let seq_engine = engine_with(&parsed.program, SearchBackend::Sequential);
        let det_engine = engine_with(&parsed.program, parallel_det(4));
        for (i, g) in parsed.goals.iter().enumerate() {
            let seq = seq_engine
                .solve(&g.goal, &db)
                .unwrap_or_else(|e| panic!("{} goal {i}: {e}", path.display()));
            for threads in [2usize, 4] {
                let par = engine_with(&parsed.program, parallel(threads))
                    .solve(&g.goal, &db)
                    .unwrap_or_else(|e| panic!("{} goal {i} ({threads}t): {e}", path.display()));
                assert_eq!(
                    seq.is_success(),
                    par.is_success(),
                    "{} goal {i}: backend disagreement at {threads} threads",
                    path.display()
                );
            }
            let det = det_engine
                .solve(&g.goal, &db)
                .unwrap_or_else(|e| panic!("{} goal {i} (det): {e}", path.display()));
            assert_eq!(
                seq.is_success(),
                det.is_success(),
                "{} goal {i}",
                path.display()
            );
            if let (Some(s), Some(d)) = (seq.solution(), det.solution()) {
                assert_eq!(
                    s.answer,
                    d.answer,
                    "{} goal {i}: answers differ",
                    path.display()
                );
                assert_eq!(
                    s.delta.ops(),
                    d.delta.ops(),
                    "{} goal {i}: deltas differ",
                    path.display()
                );
                assert!(
                    s.db.same_content(&d.db),
                    "{} goal {i}: final databases differ",
                    path.display()
                );
            }
            if let Some(sol) = seq.solution() {
                db = sol.db.clone();
            }
        }
    }
}

/// Budget exhaustion must surface as `StepBudget`, not as a (wrong)
/// failure verdict, on both backends.
#[test]
fn step_budget_exhaustion_is_an_error_on_both_backends() {
    let parsed = parse_program(
        "base n/1.
         init n(0).
         spin <- n(X) * del.n(X) * Y is X + 1 * ins.n(Y) * spin.",
    )
    .unwrap();
    let db = Database::with_schema_of(&parsed.program);
    let db = td_engine::load_init(&db, &parsed.init).unwrap();
    let goal = Goal::prop("spin");
    for backend in [SearchBackend::Sequential, parallel(4), parallel_det(4)] {
        let engine = Engine::with_config(
            parsed.program.clone(),
            EngineConfig::default()
                .with_max_steps(500)
                .with_backend(backend),
        );
        let got = engine.solve(&goal, &db);
        assert!(
            matches!(got, Err(td_engine::EngineError::StepBudget { .. })),
            "backend {backend:?} returned {got:?}"
        );
    }
}

/// The backend is search machinery, not semantics: a goal whose success
/// depends on finding one specific interleaving still succeeds under the
/// parallel backend (completeness), and an unsatisfiable goal still fails
/// (soundness), at every thread count.
#[test]
fn needle_interleaving_found_at_every_thread_count() {
    let parsed = parse_program(
        "base tok/1.
         grab(X) <- tok(X) * del.tok(X).
         put(X) <- ins.tok(X).
         init tok(a).
         % Succeeds only on schedules where the producer's put runs before
         % the consumer's grab.
         ?- (grab(a) * put(b)) | grab(b).",
    )
    .unwrap();
    let db = Database::with_schema_of(&parsed.program);
    let db = td_engine::load_init(&db, &parsed.init).unwrap();
    let goal = parsed.goals[0].goal.clone();
    for threads in [1usize, 2, 3, 4, 8] {
        let out = engine_with(&parsed.program, parallel(threads))
            .solve(&goal, &db)
            .unwrap();
        assert!(
            out.is_success(),
            "needle schedule missed at {threads} threads"
        );
    }
    let impossible = Goal::seq(vec![
        goal.clone(),
        Goal::atom("tok", vec![Term::Val(Value::sym("b"))]),
    ]);
    // After the needle goal both tokens are consumed; requiring tok(b) after
    // it must fail everywhere.
    for threads in [1usize, 4] {
        let out = engine_with(&parsed.program, parallel(threads))
            .solve(&impossible, &db)
            .unwrap();
        assert!(!out.is_success(), "unsound success at {threads} threads");
    }
}
