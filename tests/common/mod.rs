//! Shared fixtures for the differential test suites.
//!
//! Every equivalence suite (`parallel_equivalence`, `cache_equivalence`,
//! `obs_equivalence`, `kernel_equivalence`) compares backends over the same
//! two inputs: the generated flag-program goal space and the `corpus/`
//! programs. The generators, corpus loaders, engine constructors and
//! witness assertions live here so the suites differ only in *what* they
//! compare, never in what they run.

// Each integration-test binary compiles its own copy of this module and
// uses a different subset of it.
#![allow(dead_code)]

use proptest::prelude::*;
use std::sync::Arc;
use transaction_datalog::prelude::{
    parse_program, Atom, Database, Engine, EngineConfig, Goal, Outcome, Program, SearchBackend,
};

/// Generated goal space for the differential suites: every TD connective
/// (sequence, parallel, choice, isolation) over ground flag updates, tests
/// and absence tests on the four `flag_program` predicates.
pub fn arb_goal(depth: u32) -> impl Strategy<Value = Goal> {
    let leaf = prop_oneof![
        (0u8..4).prop_map(|i| Goal::ins(&format!("f{i}"), vec![])),
        (0u8..4).prop_map(|i| Goal::del(&format!("f{i}"), vec![])),
        (0u8..4).prop_map(|i| Goal::prop(&format!("f{i}"))),
        (0u8..4).prop_map(|i| Goal::NotAtom(Atom::prop(&format!("f{i}")))),
        Just(Goal::True),
    ];
    leaf.prop_recursive(depth, 24, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Goal::seq),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Goal::par),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Goal::choice),
            inner.prop_map(Goal::iso),
        ]
    })
}

/// Four nullary base flags and no rules — the smallest schema on which
/// every `arb_goal` connective is exercisable.
pub fn flag_program() -> Program {
    Program::builder()
        .base_preds(&[("f0", 0), ("f1", 0), ("f2", 0), ("f3", 0)])
        .build()
        .unwrap()
}

/// An engine on `backend` with the differential suites' standard step
/// budget (ample for every generated goal and corpus program).
pub fn engine_with(program: &Program, backend: SearchBackend) -> Engine {
    Engine::with_config(
        program.clone(),
        EngineConfig::default()
            .with_max_steps(200_000)
            .with_backend(backend),
    )
}

pub fn parallel(threads: usize) -> SearchBackend {
    SearchBackend::Parallel {
        threads,
        deterministic: false,
    }
}

pub fn parallel_det(threads: usize) -> SearchBackend {
    SearchBackend::Parallel {
        threads,
        deterministic: true,
    }
}

/// The sorted `.td` files under `corpus/`.
pub fn corpus_files() -> Vec<std::path::PathBuf> {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus");
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("corpus/ exists")
        .map(|e| e.unwrap().path())
        .filter(|p| p.extension().is_some_and(|e| e == "td"))
        .collect();
    files.sort();
    files
}

/// `(file name, source)` for every corpus program, in sorted file order.
pub fn corpus_programs() -> Vec<(String, String)> {
    corpus_files()
        .into_iter()
        .map(|p| {
            (
                p.file_name().unwrap().to_string_lossy().into_owned(),
                std::fs::read_to_string(&p).unwrap(),
            )
        })
        .collect()
}

/// Assert two outcomes carry the identical witness (or identical failure):
/// same verdict, and on success the same answer substitution, same delta,
/// same final database content.
pub fn assert_same_witness(a: &Outcome, b: &Outcome, context: &str) {
    assert_eq!(a.is_success(), b.is_success(), "{context}: verdicts differ");
    if let (Some(s), Some(c)) = (a.solution(), b.solution()) {
        assert_eq!(s.answer, c.answer, "{context}: answers differ");
        assert_eq!(s.delta.ops(), c.delta.ops(), "{context}: deltas differ");
        assert!(
            s.db.same_content(&c.db),
            "{context}: final databases differ"
        );
    }
}

/// Run every `?-` goal of a corpus source under one engine config with an
/// observer attached, threading the database between goals as `td run`
/// does. Returns the per-goal verdicts, the final database digest, and the
/// observer for counter inspection.
pub fn run_observed(
    source: &str,
    backend: SearchBackend,
) -> (Vec<bool>, u128, Arc<td_engine::Observer>) {
    let parsed = parse_program(source).expect("corpus parses");
    let config = EngineConfig::default()
        .with_max_steps(2_000_000)
        .with_backend(backend);
    let obs = Arc::new(td_engine::Observer::new());
    let engine = Engine::with_config(parsed.program.clone(), config).with_observer(obs.clone());
    let mut db = td_engine::load_init(&Database::with_schema_of(&parsed.program), &parsed.init)
        .expect("corpus init loads");
    let mut oks = Vec::new();
    for g in &parsed.goals {
        let outcome = engine.solve(&g.goal, &db).expect("corpus run cannot fault");
        if let Some(sol) = outcome.solution() {
            db = sol.db.clone();
            oks.push(true);
        } else {
            oks.push(false);
        }
    }
    (oks, db.digest(), obs)
}
