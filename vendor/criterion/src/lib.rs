//! Offline stand-in for the `criterion` crate.
//!
//! Implements the API subset the bench harness uses — `Criterion`
//! configuration, `bench_function`, `benchmark_group` / `bench_with_input`,
//! `BenchmarkId`, `Throughput`, and the `criterion_group!` / `criterion_main!`
//! macros — measuring wall-clock time with `std::time::Instant` and printing
//! result lines in criterion's format:
//!
//! ```text
//! e01/transfer_commit     time:   [10.177 µs 10.245 µs 10.313 µs]
//! ```
//!
//! which `td_bench::parse_bench_output` consumes unchanged. No statistical
//! analysis, no comparison against saved baselines, no HTML reports.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and entry point.
#[derive(Clone, Debug)]
pub struct Criterion {
    sample_size: usize,
    warm_up: Duration,
    measurement: Duration,
}

impl Default for Criterion {
    fn default() -> Criterion {
        Criterion {
            sample_size: 10,
            warm_up: Duration::from_millis(300),
            measurement: Duration::from_millis(1000),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Criterion {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    pub fn warm_up_time(mut self, d: Duration) -> Criterion {
        self.warm_up = d;
        self
    }

    pub fn measurement_time(mut self, d: Duration) -> Criterion {
        self.measurement = d;
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            config: self.clone(),
            id: id.to_string(),
        };
        f(&mut b);
        self
    }

    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }
}

/// Identifies one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    param: String,
}

impl BenchmarkId {
    pub fn from_parameter<P: Display>(p: P) -> BenchmarkId {
        BenchmarkId {
            param: p.to_string(),
        }
    }

    pub fn new<P: Display>(function: &str, p: P) -> BenchmarkId {
        BenchmarkId {
            param: format!("{function}/{p}"),
        }
    }
}

/// Throughput annotation (accepted and ignored — the stand-in reports only
/// wall-clock time).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn throughput(&mut self, _t: Throughput) {}

    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n;
        self
    }

    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher {
            config: self.criterion.clone(),
            id: format!("{}/{}", self.name, id.param),
        };
        f(&mut b, input);
        self
    }

    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut b = Bencher {
            config: self.criterion.clone(),
            id: format!("{}/{}", self.name, id),
        };
        f(&mut b);
        self
    }

    pub fn finish(self) {}
}

/// Passed to the benchmark closure; `iter` runs and times the routine.
pub struct Bencher {
    config: Criterion,
    id: String,
}

impl Bencher {
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up: run at least once, until the warm-up budget elapses, and
        // estimate the per-iteration cost as we go.
        let warm_start = Instant::now();
        let mut warm_iters: u32 = 0;
        loop {
            black_box(routine());
            warm_iters += 1;
            if warm_start.elapsed() >= self.config.warm_up {
                break;
            }
        }
        let est_iter = warm_start.elapsed().as_secs_f64() / f64::from(warm_iters);

        // Size samples so the whole measurement fits the budget.
        let samples = self.config.sample_size;
        let budget_per_sample = self.config.measurement.as_secs_f64() / samples as f64;
        let iters_per_sample = if est_iter > 0.0 {
            ((budget_per_sample / est_iter).floor() as u64).clamp(1, 1_000_000)
        } else {
            1_000_000
        };

        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(routine());
            }
            per_iter.push(start.elapsed().as_secs_f64() / iters_per_sample as f64);
        }
        per_iter.sort_by(|a, b| a.partial_cmp(b).expect("timings are finite"));
        let lo = per_iter[0];
        let hi = per_iter[per_iter.len() - 1];
        let mid = per_iter[per_iter.len() / 2];

        println!(
            "{:<39} time:   [{} {} {}]",
            self.id,
            fmt_time(lo),
            fmt_time(mid),
            fmt_time(hi),
        );
    }

    /// `iter_batched`-style measurement with per-iteration setup excluded
    /// from timing is approximated by timing setup+routine (accepted for
    /// compatibility; the workspace benches do not rely on the exclusion).
    pub fn iter_with_setup<S, O, I, F>(&mut self, mut setup: S, mut routine: F)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        self.iter(|| {
            let input = setup();
            routine(input)
        });
    }
}

/// Format seconds as criterion does: scaled value plus unit token.
fn fmt_time(secs: f64) -> String {
    let (value, unit) = if secs < 1e-6 {
        (secs * 1e9, "ns")
    } else if secs < 1e-3 {
        (secs * 1e6, "µs")
    } else if secs < 1.0 {
        (secs * 1e3, "ms")
    } else {
        (secs, "s")
    };
    // Five significant digits, like criterion's output.
    let formatted = if value < 10.0 {
        format!("{value:.4}")
    } else if value < 100.0 {
        format!("{value:.3}")
    } else {
        format!("{value:.2}")
    };
    format!("{formatted} {unit}")
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_time_picks_sane_units() {
        assert!(fmt_time(10.245e-6).contains("µs"));
        assert!(fmt_time(1.57e-3).contains("ms"));
        assert!(fmt_time(3.2e-9).contains("ns"));
        assert!(fmt_time(2.5).contains('s'));
        assert_eq!(fmt_time(10.245e-6), "10.245 µs");
    }

    #[test]
    fn bench_function_runs_and_prints() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut count = 0u64;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                count += 1;
                count
            })
        });
        assert!(count > 0);
    }

    #[test]
    fn group_ids_compose() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(2));
        let mut group = c.benchmark_group("shim/group");
        group.throughput(Throughput::Elements(4));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4u64, |b, n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }
}
