//! Offline stand-in for the `rand` crate.
//!
//! The workspace builds in environments with no network access and no crates.io
//! registry cache, so external crates cannot be downloaded. This crate
//! implements exactly the API subset the workspace uses — `StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::{random_range, random_bool}`, and
//! `seq::SliceRandom::shuffle` — on top of a deterministic xoshiro256++
//! generator. It is a drop-in path dependency: sources `use rand::...`
//! unchanged.
//!
//! Determinism matters more than statistical quality here: every consumer in
//! the workspace seeds explicitly (`seed_from_u64`) and relies on reproducible
//! streams for tests and benchmarks.

use std::ops::Range;

/// Core entropy source: a generator that yields `u64`s.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// Seedable generators (subset: only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// splitmix64 — used to expand a 64-bit seed into generator state.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator standing in for rand's `StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> StdRng {
            let mut sm = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut sm);
            }
            // All-zero state would be a fixed point; splitmix64 cannot
            // produce four zeros from any seed, but guard anyway.
            if s == [0, 0, 0, 0] {
                s[0] = 0x1;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Types that can be sampled uniformly from a half-open range.
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<Self>) -> Self;
}

macro_rules! impl_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty random_range");
                let span = range.end.wrapping_sub(range.start) as u128;
                let offset = (rng.next_u64() as u128 % span) as $t;
                range.start.wrapping_add(offset)
            }
        }
    )*};
}
impl_sample_uniform!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_uniform_signed {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_range<R: RngCore + ?Sized>(rng: &mut R, range: Range<$t>) -> $t {
                assert!(range.start < range.end, "empty random_range");
                let span = (range.end as i128 - range.start as i128) as u128;
                let offset = (rng.next_u64() as u128 % span) as i128;
                (range.start as i128 + offset) as $t
            }
        }
    )*};
}
impl_sample_uniform_signed!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

/// High-level sampling methods, blanket-implemented for every `RngCore`.
pub trait Rng: RngCore {
    fn random_range<T: SampleUniform>(&mut self, range: Range<T>) -> T {
        T::sample_range(self, range)
    }

    fn random_bool(&mut self, p: f64) -> bool {
        debug_assert!((0.0..=1.0).contains(&p));
        // 53 bits of mantissa precision is plenty for test probabilities.
        let x = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        x < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod seq {
    use super::RngCore;

    /// Slice shuffling (Fisher–Yates), the only `seq` API the workspace uses.
    pub trait SliceRandom {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::seq::SliceRandom;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 4);
    }

    #[test]
    fn random_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.random_range(3..17);
            assert!((3..17).contains(&v));
            let w: i64 = rng.random_range(-5..5);
            assert!((-5..5).contains(&w));
        }
    }

    #[test]
    fn random_range_hits_every_value() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.random_range(0usize..4)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn random_bool_is_roughly_fair() {
        let mut rng = StdRng::seed_from_u64(11);
        let trues = (0..10_000).filter(|_| rng.random_bool(0.5)).count();
        assert!((4_000..6_000).contains(&trues), "got {trues}");
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = StdRng::seed_from_u64(13);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "50 elements virtually never shuffle to identity");
    }
}
