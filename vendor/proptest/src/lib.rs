//! Offline stand-in for the `proptest` crate.
//!
//! The workspace builds with no network access, so the real proptest cannot be
//! downloaded. This crate re-implements the subset its tests use: the
//! [`strategy::Strategy`] trait with `prop_map` / `prop_flat_map` /
//! `prop_filter` / `prop_recursive` / `boxed`, range and tuple and `Vec`
//! strategies, a tiny regex-class string strategy, [`strategy::Union`],
//! [`collection`] (`vec`, `hash_set`), `any::<T>()`, and the `proptest!`,
//! `prop_assert!`, `prop_assert_eq!`, `prop_oneof!` macros.
//!
//! Differences from real proptest, deliberately accepted:
//! - **No shrinking.** A failing case reports its inputs (via `Debug`) and
//!   panics; it does not minimise them.
//! - **Deterministic seeding.** Each `#[test]` derives its RNG seed from the
//!   test's module path, so runs are reproducible without a regressions file
//!   (`.proptest-regressions` files are ignored).
//! - Generation is depth-bounded by construction (`prop_recursive` unrolls to
//!   a fixed depth) rather than size-accounted.

pub mod test_runner {
    /// Configuration for a `proptest!` block (stand-in for
    /// `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Config {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Config {
            Config { cases: 256 }
        }
    }

    /// Deterministic xoshiro256++ RNG used to drive generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        pub fn seed_from_u64(seed: u64) -> TestRng {
            let mut sm = seed;
            let mut next = move || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            let s = [next(), next(), next(), next()];
            TestRng { s }
        }

        /// Seed derived from a test's fully-qualified name (deterministic
        /// across runs, distinct across tests).
        pub fn from_name(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::seed_from_u64(h)
        }

        pub fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }

        /// Uniform draw from `[0, n)`.
        pub fn below(&mut self, n: usize) -> usize {
            assert!(n > 0, "below(0)");
            (self.next_u64() % n as u64) as usize
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::fmt::Debug;
    use std::marker::PhantomData;
    use std::sync::Arc;

    /// A generator of test values (no shrinking in this stand-in).
    pub trait Strategy: 'static {
        type Value: Debug + 'static;

        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        fn prop_map<U, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            U: Debug + 'static,
            F: Fn(Self::Value) -> U + 'static,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2 + 'static,
        {
            FlatMap { inner: self, f }
        }

        fn prop_filter<F>(self, reason: &'static str, pred: F) -> Filter<Self, F>
        where
            Self: Sized,
            F: Fn(&Self::Value) -> bool + 'static,
        {
            Filter {
                inner: self,
                reason,
                pred,
            }
        }

        /// Depth-bounded recursive strategy: unrolls `f` `depth` times over
        /// the leaf strategy, choosing at each level between recursing and
        /// bottoming out. `_size`/`_branch` are accepted for API
        /// compatibility but unused (depth alone bounds generation).
        fn prop_recursive<S2, F>(
            self,
            depth: u32,
            _size: u32,
            _branch: u32,
            f: F,
        ) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
            S2: Strategy<Value = Self::Value>,
            F: Fn(BoxedStrategy<Self::Value>) -> S2,
        {
            let leaf = self.boxed();
            let mut cur = leaf.clone();
            for _ in 0..depth {
                // 2:1 in favour of the recursive case keeps trees interesting
                // while the bottom level guarantees termination.
                cur = Union::weighted(vec![(2, f(cur).boxed()), (1, leaf.clone())]).boxed();
            }
            cur
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized,
        {
            BoxedStrategy {
                inner: Arc::new(self),
            }
        }
    }

    /// Object-safe erasure of [`Strategy`], used by [`BoxedStrategy`].
    trait ErasedStrategy<T> {
        fn erased_generate(&self, rng: &mut TestRng) -> T;
    }

    impl<S: Strategy> ErasedStrategy<S::Value> for S {
        fn erased_generate(&self, rng: &mut TestRng) -> S::Value {
            self.generate(rng)
        }
    }

    /// A type-erased, cheaply clonable strategy.
    pub struct BoxedStrategy<T> {
        inner: Arc<dyn ErasedStrategy<T>>,
    }

    impl<T> Clone for BoxedStrategy<T> {
        fn clone(&self) -> Self {
            BoxedStrategy {
                inner: Arc::clone(&self.inner),
            }
        }
    }

    impl<T: Debug + 'static> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.inner.erased_generate(rng)
        }
    }

    /// Always yields a clone of the wrapped value.
    #[derive(Clone, Debug)]
    pub struct Just<T>(pub T);

    impl<T: Clone + Debug + 'static> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform (or weighted) choice between alternative strategies.
    #[derive(Clone)]
    pub struct Union<S> {
        options: Vec<(u32, S)>,
        total_weight: u32,
    }

    impl<S: Strategy> Union<S> {
        pub fn new(options: Vec<S>) -> Union<S> {
            Union::weighted(options.into_iter().map(|s| (1, s)).collect())
        }

        pub fn weighted(options: Vec<(u32, S)>) -> Union<S> {
            assert!(!options.is_empty(), "Union of zero strategies");
            let total_weight = options.iter().map(|(w, _)| *w).sum();
            assert!(total_weight > 0, "Union weights sum to zero");
            Union {
                options,
                total_weight,
            }
        }
    }

    impl<S: Strategy> Strategy for Union<S> {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            let mut pick = rng.below(self.total_weight as usize) as u32;
            for (w, s) in &self.options {
                if pick < *w {
                    return s.generate(rng);
                }
                pick -= w;
            }
            unreachable!("weights exhausted")
        }
    }

    #[derive(Clone)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S, U, F> Strategy for Map<S, F>
    where
        S: Strategy,
        U: Debug + 'static,
        F: Fn(S::Value) -> U + 'static,
    {
        type Value = U;
        fn generate(&self, rng: &mut TestRng) -> U {
            (self.f)(self.inner.generate(rng))
        }
    }

    #[derive(Clone)]
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S, S2, F> Strategy for FlatMap<S, F>
    where
        S: Strategy,
        S2: Strategy,
        F: Fn(S::Value) -> S2 + 'static,
    {
        type Value = S2::Value;
        fn generate(&self, rng: &mut TestRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    #[derive(Clone)]
    pub struct Filter<S, F> {
        inner: S,
        reason: &'static str,
        pred: F,
    }

    impl<S, F> Strategy for Filter<S, F>
    where
        S: Strategy,
        F: Fn(&S::Value) -> bool + 'static,
    {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            for _ in 0..1000 {
                let v = self.inner.generate(rng);
                if (self.pred)(&v) {
                    return v;
                }
            }
            panic!(
                "prop_filter rejected 1000 candidates in a row: {}",
                self.reason
            );
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i128 - self.start as i128) as u128;
                    let offset = (rng.next_u64() as u128 % span) as i128;
                    (self.start as i128 + offset) as $t
                }
            }
        )*};
    }
    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    #[allow(non_snake_case)]
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, G);

    /// A `Vec` of strategies generates element-wise (used for per-index
    /// strategies, e.g. one strategy per rule of a generated program).
    impl<S: Strategy> Strategy for Vec<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            self.iter().map(|s| s.generate(rng)).collect()
        }
    }

    /// String strategies from a small regex subset: literal characters,
    /// character classes `[a-z0-9_]`, and bounded repetition `{m,n}`.
    impl Strategy for &'static str {
        type Value = String;
        fn generate(&self, rng: &mut TestRng) -> String {
            generate_from_pattern(self, rng)
        }
    }

    fn generate_from_pattern(pattern: &str, rng: &mut TestRng) -> String {
        let mut out = String::new();
        let chars: Vec<char> = pattern.chars().collect();
        let mut i = 0;
        while i < chars.len() {
            // One element: a char class or a literal character.
            let class: Vec<char> = if chars[i] == '[' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == ']')
                    .unwrap_or_else(|| panic!("unclosed [ in pattern {pattern:?}"))
                    + i;
                let mut members = Vec::new();
                let mut j = i + 1;
                while j < close {
                    if j + 2 < close && chars[j + 1] == '-' {
                        let (lo, hi) = (chars[j], chars[j + 2]);
                        members.extend((lo..=hi).collect::<Vec<char>>());
                        j += 3;
                    } else {
                        members.push(chars[j]);
                        j += 1;
                    }
                }
                i = close + 1;
                members
            } else {
                let c = chars[i];
                i += 1;
                vec![c]
            };
            assert!(!class.is_empty(), "empty character class in {pattern:?}");
            // Optional {m,n} repetition suffix.
            let (min, max) = if i < chars.len() && chars[i] == '{' {
                let close = chars[i..]
                    .iter()
                    .position(|&c| c == '}')
                    .unwrap_or_else(|| panic!("unclosed {{ in pattern {pattern:?}"))
                    + i;
                let body: String = chars[i + 1..close].iter().collect();
                i = close + 1;
                match body.split_once(',') {
                    Some((m, n)) => (
                        m.parse::<usize>().expect("repetition min"),
                        n.parse::<usize>().expect("repetition max"),
                    ),
                    None => {
                        let n = body.parse::<usize>().expect("repetition count");
                        (n, n)
                    }
                }
            } else {
                (1, 1)
            };
            let count = min + rng.below(max - min + 1);
            for _ in 0..count {
                out.push(class[rng.below(class.len())]);
            }
        }
        out
    }

    /// `any::<T>()` support for simple types.
    pub trait Arbitrary: Debug + Sized + 'static {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }
    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    pub struct Any<T>(PhantomData<fn() -> T>);

    impl<T> Clone for Any<T> {
        fn clone(&self) -> Self {
            Any(PhantomData)
        }
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod arbitrary {
    pub use crate::strategy::{any, Any, Arbitrary};
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::HashSet;
    use std::fmt::Debug;
    use std::hash::Hash;
    use std::ops::Range;

    /// Size specification for collection strategies: a `usize` (exact) or a
    /// half-open range.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        max_exclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange {
                min: n,
                max_exclusive: n + 1,
            }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty collection size range");
            SizeRange {
                min: r.start,
                max_exclusive: r.end,
            }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            self.min + rng.below(self.max_exclusive - self.min)
        }
    }

    #[derive(Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    #[derive(Clone)]
    pub struct HashSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        HashSetStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S> Strategy for HashSetStrategy<S>
    where
        S: Strategy,
        S::Value: Hash + Eq,
    {
        type Value = HashSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> HashSet<S::Value> {
            let target = self.size.pick(rng);
            let mut out = HashSet::new();
            // The element domain may be smaller than the target; accept a
            // smaller set after bounded attempts (matches proptest, which
            // treats the size as a goal, not a guarantee).
            let mut attempts = 0;
            while out.len() < target && attempts < target * 10 + 20 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Any, BoxedStrategy, Just, Strategy, Union};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)+) => { assert!($cond, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_eq!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)+) => { assert_ne!($a, $b, $($fmt)+) };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($s:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($s)),+
        ])
    };
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($cfg) $($rest)*);
    };
    (@impl ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut rng = $crate::test_runner::TestRng::from_name(
                    concat!(module_path!(), "::", stringify!($name)),
                );
                for case in 0..config.cases {
                    let values = (
                        $($crate::strategy::Strategy::generate(&($strat), &mut rng),)+
                    );
                    let repr = format!("{:?}", values);
                    let ($($pat,)+) = values;
                    let outcome = ::std::panic::catch_unwind(
                        ::std::panic::AssertUnwindSafe(|| $body),
                    );
                    if let Err(cause) = outcome {
                        eprintln!(
                            "proptest case {}/{} of {} failed; inputs: {}",
                            case + 1,
                            config.cases,
                            stringify!($name),
                            repr,
                        );
                        ::std::panic::resume_unwind(cause);
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::test_runner::Config::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_tuples_generate_in_bounds() {
        let mut rng = TestRng::seed_from_u64(3);
        let strat = (0u8..4, -5i64..5, 0usize..2);
        for _ in 0..200 {
            let (a, b, c) = strat.generate(&mut rng);
            assert!(a < 4);
            assert!((-5..5).contains(&b));
            assert!(c < 2);
        }
    }

    #[test]
    fn string_patterns_match_their_classes() {
        let mut rng = TestRng::seed_from_u64(4);
        for _ in 0..100 {
            let s = "[a-c]".generate(&mut rng);
            assert_eq!(s.len(), 1);
            assert!(matches!(s.as_bytes()[0], b'a'..=b'c'), "{s}");
            let id = "[a-z][a-z0-9_]{0,6}".generate(&mut rng);
            assert!(!id.is_empty() && id.len() <= 7, "{id}");
            assert!(id.as_bytes()[0].is_ascii_lowercase());
            assert!(id
                .bytes()
                .all(|b| b.is_ascii_lowercase() || b.is_ascii_digit() || b == b'_'));
        }
    }

    #[test]
    fn union_covers_all_options() {
        let mut rng = TestRng::seed_from_u64(5);
        let strat = prop_oneof![Just(0u8), Just(1u8), Just(2u8)];
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[strat.generate(&mut rng) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn recursive_strategies_terminate_and_vary() {
        #[derive(Clone, Debug)]
        enum T {
            Leaf,
            Node(Vec<T>),
        }
        fn depth(t: &T) -> usize {
            match t {
                T::Leaf => 0,
                T::Node(cs) => 1 + cs.iter().map(depth).max().unwrap_or(0),
            }
        }
        let strat = Just(T::Leaf).prop_recursive(3, 12, 3, |inner| {
            crate::collection::vec(inner, 1..3).prop_map(T::Node)
        });
        let mut rng = TestRng::seed_from_u64(6);
        let mut max_depth = 0;
        for _ in 0..200 {
            let t = strat.generate(&mut rng);
            let d = depth(&t);
            assert!(d <= 3);
            max_depth = max_depth.max(d);
        }
        assert!(max_depth >= 2, "recursion never fired (max {max_depth})");
    }

    #[test]
    fn filter_retries_until_predicate_holds() {
        let mut rng = TestRng::seed_from_u64(7);
        let strat = (0u32..100).prop_filter("must be even", |v| v % 2 == 0);
        for _ in 0..100 {
            assert_eq!(strat.generate(&mut rng) % 2, 0);
        }
    }

    #[test]
    fn flat_map_threads_the_outer_value() {
        let mut rng = TestRng::seed_from_u64(8);
        let strat = (1usize..4).prop_flat_map(|n| crate::collection::vec(0u8..10, n..n + 1));
        for _ in 0..50 {
            let v = strat.generate(&mut rng);
            assert!((1..4).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(x in 0u32..10, (a, b) in (0u8..3, 0u8..3)) {
            prop_assert!(x < 10);
            prop_assert_eq!((a < 3, b < 3), (true, true));
        }
    }

    proptest! {
        #[test]
        fn the_macro_works_without_config(v in crate::collection::vec(0i64..5, 0..4)) {
            prop_assert!(v.len() < 4);
            prop_assert!(v.iter().all(|x| (0..5).contains(x)));
        }
    }
}
