//! # transaction-datalog — umbrella crate
//!
//! A Rust implementation of **Transaction Datalog** (TD), the concurrent,
//! transactional extension of Datalog of Bonner's *"Workflow, Transactions,
//! and Datalog"* (PODS 1999). This crate re-exports the public API of the
//! workspace crates:
//!
//! * [`core`] — the language: terms, goals, rules, programs,
//!   fragment classification;
//! * [`parser`] — concrete `.td` syntax;
//! * [`db`] — persistent database substrate;
//! * [`store`] — durability: snapshots, logical WAL, crash
//!   recovery (`td --db`, docs/PERSISTENCE.md);
//! * [`engine`] — the interpreter (interleaving search,
//!   isolation), the bounded-fragment decider, and a classical bottom-up
//!   Datalog evaluator;
//! * [`workflow`] — workflow modeling (tasks, agents,
//!   cooperating workflows) and the genome-laboratory workload;
//! * [`machines`] — the complexity-theorem constructions
//!   (counter machines, QBF, SAT encodings).
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use td_core as core;
pub use td_db as db;
pub use td_engine as engine;
pub use td_machines as machines;
pub use td_parser as parser;
pub use td_store as store;
pub use td_workflow as workflow;

/// Convenience prelude: the types most programs need.
pub mod prelude {
    pub use td_core::{
        Atom, Bindings, Builtin, Fragment, FragmentReport, Goal, Pred, Program, ProgramBuilder,
        Rule, Symbol, Term, Value, Var,
    };
    pub use td_db::{Database, Tuple};
    pub use td_engine::{Engine, EngineConfig, Outcome, SearchBackend, Strategy};
    pub use td_parser::{parse_goal, parse_program};
    pub use td_store::Store;
}
