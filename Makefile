# Convenience targets; everything is plain cargo underneath.

.PHONY: all test bench doc examples lint summary

all: test

test:
	cargo test --workspace

bench:
	cargo bench --workspace 2>&1 | tee bench_output.txt

summary: bench_output.txt
	cargo run -p td-bench --bin bench_report -- --json BENCH_PR2.json < bench_output.txt > BENCH_SUMMARY.md

doc:
	cargo doc --workspace --no-deps

examples:
	cargo run --example quickstart
	cargo run --example banking
	cargo run --example genome_lab
	cargo run --example workflow_network
	cargo run --example machine_zoo
	cargo run --example loan_office

lint:
	cargo clippy --workspace --all-targets
