//! End-to-end serve tests: a real server on a real Unix socket, driven by
//! real client connections — the concurrent-banking scenario of Example
//! 2.2 (transfers between two accounts must conserve total balance no
//! matter how clients interleave).

use std::path::PathBuf;
use std::time::{Duration, Instant};
use td_engine::EngineConfig;
use td_serve::{Client, Reply, Server};
use td_store::{Store, TxOptions};

const BANKING: &str = r#"
base balance/2.
init balance(acct1, 100).
init balance(acct2, 50).
withdraw(Amt, Acct) <- balance(Acct, Bal) * Bal >= Amt
                       * del.balance(Acct, Bal)
                       * NB is Bal - Amt * ins.balance(Acct, NB).
deposit(Amt, Acct)  <- balance(Acct, Bal) * del.balance(Acct, Bal)
                       * NB is Bal + Amt * ins.balance(Acct, NB).
transfer(Amt, From, To) <- withdraw(Amt, From) * deposit(Amt, To).
"#;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("td-serve-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// Spawn a server over a fresh store in `dir`; returns the socket path and
/// the thread handle (joins to the summary).
fn start_server(
    dir: &std::path::Path,
) -> (
    PathBuf,
    std::thread::JoinHandle<std::io::Result<td_serve::ServeSummary>>,
) {
    let socket = dir.join("td.sock");
    let parsed = td_parser::parse_program(BANKING).unwrap();
    let server = Server::open(
        parsed,
        EngineConfig::default(),
        &dir.join("db"),
        TxOptions {
            max_attempts: 64,
            backoff: Duration::from_micros(20),
            ..TxOptions::default()
        },
    )
    .unwrap();
    let sock = socket.clone();
    let handle = std::thread::spawn(move || server.serve(&sock));
    wait_for_socket(&socket);
    (socket, handle)
}

fn wait_for_socket(socket: &std::path::Path) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(mut c) = Client::connect(socket) {
            if c.ping().is_ok() {
                return;
            }
        }
        assert!(Instant::now() < deadline, "server did not come up");
        std::thread::sleep(Duration::from_millis(10));
    }
}

fn counter(stats: &str, name: &str) -> u64 {
    stats
        .split_whitespace()
        .find_map(|f| f.strip_prefix(&format!("{name}=")))
        .unwrap_or_else(|| panic!("no {name} in {stats}"))
        .parse()
        .unwrap()
}

#[test]
fn ping_run_stats_stop_round_trip() {
    let dir = temp_dir("round_trip");
    let (socket, handle) = start_server(&dir);
    let mut c = Client::connect(&socket).unwrap();
    assert!(c.ping().unwrap());
    // A committing transaction.
    match c.run("transfer(30, acct1, acct2)").unwrap() {
        Reply::Committed { seq, attempts, .. } => {
            assert_eq!(seq, 1); // seq 0 is the init-facts commit
            assert_eq!(attempts, 1);
        }
        other => panic!("unexpected {other:?}"),
    }
    // A read-only query with a binding.
    let r = c.run("balance(acct1, B)").unwrap();
    assert_eq!(r.binding("B"), Some("70"));
    assert!(matches!(r, Reply::ReadOnly { .. }));
    // A logically failing goal (insufficient funds) leaves no record.
    assert!(matches!(
        c.run("transfer(1000, acct1, acct2)").unwrap(),
        Reply::No { .. }
    ));
    // A parse error and an unknown verb answer `err`, connection stays up.
    assert!(matches!(c.run("transfer(").unwrap(), Reply::Err(_)));
    assert!(c.request("frobnicate now").unwrap().starts_with("err "));
    let stats = c.stats().unwrap();
    assert_eq!(counter(&stats, "commits"), 1);
    assert_eq!(counter(&stats, "read_only"), 1);
    assert_eq!(counter(&stats, "aborts"), 1);
    assert!(counter(&stats, "errors") >= 2);
    assert!(counter(&stats, "interned_syms") > 0);
    c.stop().unwrap();
    let summary = handle.join().unwrap().unwrap();
    assert_eq!(summary.stats.commits, 1);
    assert_eq!(summary.counters.errors, 2);
    // The store came back durable: recover it and check the balances.
    let db = summary.store.db().clone();
    drop(summary);
    let reopened = Store::open(&dir.join("db")).unwrap();
    assert_eq!(reopened.db().digest(), db.digest());
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn concurrent_conflicting_transfers_conserve_balance() {
    let dir = temp_dir("conserve");
    let (socket, handle) = start_server(&dir);
    // 4 clients hammer the same two accounts with opposing transfers —
    // every transaction conflicts with every concurrent one.
    let clients = 4;
    let per = 6;
    let workers: Vec<_> = (0..clients)
        .map(|i| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&socket).unwrap();
                let mut committed = 0u64;
                for _ in 0..per {
                    let goal = if i % 2 == 0 {
                        "transfer(1, acct1, acct2)"
                    } else {
                        "transfer(1, acct2, acct1)"
                    };
                    match c.run(goal).unwrap() {
                        Reply::Committed { .. } => committed += 1,
                        Reply::No { .. } => {}
                        other => panic!("unexpected {other:?}"),
                    }
                }
                committed
            })
        })
        .collect();
    let committed: u64 = workers.into_iter().map(|w| w.join().unwrap()).sum();
    assert_eq!(
        committed,
        (clients * per) as u64,
        "low amounts never bounce"
    );
    let mut c = Client::connect(&socket).unwrap();
    let stats = c.stats().unwrap();
    assert_eq!(counter(&stats, "commits"), committed);
    c.stop().unwrap();
    let summary = handle.join().unwrap().unwrap();
    // Conservation: money moved, total unchanged.
    let db = summary.store.db();
    let balances: Vec<i64> = ["acct1", "acct2"]
        .iter()
        .map(|acct| {
            let rel = db.relation(td_core::Pred::new("balance", 2)).unwrap();
            rel.to_sorted_vec()
                .iter()
                .find(|t| t.values()[0].to_string() == *acct)
                .map(|t| t.values()[1].to_string().parse().unwrap())
                .unwrap()
        })
        .collect();
    assert_eq!(balances.iter().sum::<i64>(), 150, "balance not conserved");
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn second_server_on_same_store_is_rejected_by_the_lock() {
    let dir = temp_dir("lock");
    let (socket, handle) = start_server(&dir);
    let parsed = td_parser::parse_program(BANKING).unwrap();
    let err = Server::open(
        parsed,
        EngineConfig::default(),
        &dir.join("db"),
        TxOptions::default(),
    )
    .err()
    .expect("second server must not open the same store");
    assert!(
        matches!(err, td_store::StoreError::Locked(_)),
        "unexpected {err:?}"
    );
    let mut c = Client::connect(&socket).unwrap();
    c.stop().unwrap();
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}

#[test]
fn stale_socket_file_is_cleared_on_bind() {
    let dir = temp_dir("stale");
    let socket = dir.join("td.sock");
    // A leftover socket file nobody listens on (as after a crash).
    drop(std::os::unix::net::UnixListener::bind(&socket).unwrap());
    assert!(socket.exists());
    let (sock2, handle) = {
        let parsed = td_parser::parse_program(BANKING).unwrap();
        let server = Server::open(
            parsed,
            EngineConfig::default(),
            &dir.join("db"),
            TxOptions::default(),
        )
        .unwrap();
        let s = socket.clone();
        (socket.clone(), std::thread::spawn(move || server.serve(&s)))
    };
    wait_for_socket(&sock2);
    let mut c = Client::connect(&sock2).unwrap();
    assert!(c.ping().unwrap());
    c.stop().unwrap();
    handle.join().unwrap().unwrap();
    std::fs::remove_dir_all(&dir).unwrap();
}
