//! End-to-end reactive tests: event ingestion over the wire, complex-event
//! patterns matching across events, and trigger transactions executing
//! through the same OCC + group-commit path as client goals.
//!
//! The scenario is a small lab workflow: `sample(S)` announces a specimen,
//! `result(S, Q)` delivers its measurement, and a `seq`+`within` trigger
//! records the pair and bumps a `fired/1` counter — the counter is the
//! exactly-once witness under concurrent ingestion.

use std::path::PathBuf;
use std::time::{Duration, Instant};
use td_engine::EngineConfig;
use td_serve::{Client, Reply, ServeSummary, Server};
use td_store::TxOptions;

const LAB: &str = r#"
base handled/2.
base fired/1.
init fired(0).
event sample/1.
event result/2.
handle(S, Q) <- fired(N) * del.fired(N) * M is N + 1 * ins.fired(M)
              * ins.handled(S, Q).
on within(seq(sample(S), result(S, Q)), 60000) do handle(S, Q).
"#;

/// Same program without the trigger: events still ingest, but nothing
/// reacts — the differential test drives `handle` by hand on this one.
const LAB_NO_TRIGGER: &str = r#"
base handled/2.
base fired/1.
init fired(0).
event sample/1.
event result/2.
handle(S, Q) <- fired(N) * del.fired(N) * M is N + 1 * ins.fired(M)
              * ins.handled(S, Q).
"#;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("td-serve-event-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn start_server(
    dir: &std::path::Path,
    source: &str,
) -> (
    PathBuf,
    std::thread::JoinHandle<std::io::Result<ServeSummary>>,
) {
    let socket = dir.join("td.sock");
    let parsed = td_parser::parse_program(source).unwrap();
    let server = Server::open(
        parsed,
        EngineConfig::default(),
        &dir.join("db"),
        TxOptions {
            max_attempts: 64,
            backoff: Duration::from_micros(20),
            ..TxOptions::default()
        },
    )
    .unwrap();
    let sock = socket.clone();
    let handle = std::thread::spawn(move || server.serve(&sock));
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        if let Ok(mut c) = Client::connect(&socket) {
            if c.ping().is_ok() {
                break;
            }
        }
        assert!(Instant::now() < deadline, "server did not come up");
        std::thread::sleep(Duration::from_millis(10));
    }
    (socket, handle)
}

fn counter(stats: &str, name: &str) -> u64 {
    stats
        .split_whitespace()
        .find_map(|f| f.strip_prefix(&format!("{name}=")))
        .unwrap_or_else(|| panic!("no {name} in {stats}"))
        .parse()
        .unwrap()
}

/// Triggers run on a background scheduler; poll the stats line until the
/// fired counter catches up (or fail after a generous deadline).
fn wait_for_fired(c: &mut Client, want: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = c.stats().unwrap();
        if counter(&stats, "triggers_fired") >= want {
            return;
        }
        assert!(Instant::now() < deadline, "triggers did not fire: {stats}");
        std::thread::sleep(Duration::from_millis(5));
    }
}

#[test]
fn event_round_trip_fires_trigger_and_counts() {
    let dir = temp_dir("round_trip");
    let (socket, handle) = start_server(&dir, LAB);
    let mut c = Client::connect(&socket).unwrap();

    // First half of the pattern: durable append, no match yet.
    match c.event("sample(7)").unwrap() {
        Reply::Committed { bindings, .. } => {
            assert!(bindings.iter().any(|(n, v)| n == "matched" && v == "0"));
        }
        other => panic!("unexpected {other:?}"),
    }
    // Second half: the seq+within pattern completes, one match.
    let r = c.event("result(7, 2)").unwrap();
    assert!(matches!(r, Reply::Committed { .. }), "got {r:?}");
    assert_eq!(r.binding("matched"), Some("1"));

    wait_for_fired(&mut c, 1);
    // The trigger transaction is visible to ordinary queries.
    let r = c.run("handled(S, Q)").unwrap();
    assert_eq!(r.binding("S"), Some("7"));
    assert_eq!(r.binding("Q"), Some("2"));
    let r = c.run("fired(N)").unwrap();
    assert_eq!(r.binding("N"), Some("1"));

    // An explicit timestamp is echoed back.
    let r = c.event("sample(8) at 123").unwrap();
    assert_eq!(r.binding("ts"), Some("123"));

    // Error surface: unknown relation, wrong arity, parse error, missing
    // atom — all answer `err`, connection stays usable.
    assert!(matches!(c.event("nope(1)").unwrap(), Reply::Err(_)));
    assert!(matches!(c.event("sample(1, 2)").unwrap(), Reply::Err(_)));
    assert!(matches!(c.event("sample(").unwrap(), Reply::Err(_)));
    assert!(c.request("event").unwrap().starts_with("err "));
    // Event relations are append-only even over the `run` verb.
    assert!(matches!(c.run("ins.sample(9, 1)").unwrap(), Reply::Err(_)));

    let stats = c.stats().unwrap();
    assert_eq!(counter(&stats, "events_ingested"), 3);
    assert_eq!(counter(&stats, "triggers_matched"), 1);
    assert_eq!(counter(&stats, "triggers_fired"), 1);
    assert!(counter(&stats, "trigger_p50_us") > 0);
    c.stop().unwrap();

    let summary = handle.join().unwrap().unwrap();
    assert_eq!(summary.events.ingested, 3);
    assert_eq!(summary.events.matched, 1);
    assert_eq!(summary.events.fired, 1);
    assert!(summary.events.p50_us > 0);
    assert!(summary.events.p99_us >= summary.events.p50_us);
    assert_eq!(
        summary.events.latency_buckets.iter().sum::<u64>(),
        1,
        "one trigger, one latency sample"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Differential check: a trigger fired via the event path must leave the
/// database in exactly the state of running the same goal by hand.
#[test]
fn triggered_and_direct_execution_agree() {
    let dir = temp_dir("differential");
    std::fs::create_dir_all(dir.join("a")).unwrap();
    std::fs::create_dir_all(dir.join("b")).unwrap();

    // Reactive server: the trigger runs `handle(1, 9)` for us.
    let (socket, handle) = start_server(&dir.join("a"), LAB);
    let mut c = Client::connect(&socket).unwrap();
    assert!(c.event("sample(1) at 10").unwrap().is_ok());
    let r = c.event("result(1, 9) at 20").unwrap();
    assert_eq!(r.binding("matched"), Some("1"));
    c.stop().unwrap();
    // serve() drains the trigger scheduler before returning, so the
    // summary's store already contains the trigger's effects.
    let reactive = handle.join().unwrap().unwrap();
    assert_eq!(reactive.events.fired, 1);
    let reactive_digest = reactive.store.db().digest();
    drop(reactive);

    // Plain server: same events, then the equivalent goal by hand.
    let (socket, handle) = start_server(&dir.join("b"), LAB_NO_TRIGGER);
    let mut c = Client::connect(&socket).unwrap();
    assert!(c.event("sample(1) at 10").unwrap().is_ok());
    let r = c.event("result(1, 9) at 20").unwrap();
    assert_eq!(r.binding("matched"), Some("0"), "no trigger declared");
    assert!(matches!(
        c.run("handle(1, 9)").unwrap(),
        Reply::Committed { .. }
    ));
    c.stop().unwrap();
    let direct = handle.join().unwrap().unwrap();
    assert_eq!(direct.events.fired, 0);

    assert_eq!(
        reactive_digest,
        direct.store.db().digest(),
        "trigger path and direct path must agree on the final database"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Exactly-once under load: concurrent clients stream disjoint
/// sample/result pairs; every pair must fire its trigger exactly once, and
/// the `fired/1` counter (read-modify-write, so any double or lost
/// execution skews it) must equal the number of matches.
#[test]
fn concurrent_ingestion_fires_each_match_exactly_once() {
    let dir = temp_dir("exactly_once");
    let (socket, handle) = start_server(&dir, LAB);
    let clients = 4;
    let per = 5;
    let workers: Vec<_> = (0..clients)
        .map(|i| {
            let socket = socket.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(&socket).unwrap();
                for j in 0..per {
                    let s = i * 100 + j;
                    assert!(c.event(&format!("sample({s})")).unwrap().is_ok());
                    let r = c.event(&format!("result({s}, 1)")).unwrap();
                    // The pair is ordered within this connection, so the
                    // seq pattern always completes here.
                    assert_eq!(r.binding("matched"), Some("1"), "pair {s}");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let total = (clients * per) as u64;
    let mut c = Client::connect(&socket).unwrap();
    wait_for_fired(&mut c, total);
    let r = c.run("fired(N)").unwrap();
    assert_eq!(r.binding("N"), Some(total.to_string().as_str()));
    c.stop().unwrap();

    let summary = handle.join().unwrap().unwrap();
    assert_eq!(summary.events.ingested, 2 * total);
    assert_eq!(summary.events.matched, total);
    assert_eq!(summary.events.fired, total);
    // Every handled pair landed, none twice (set semantics would hide a
    // duplicate ins, but the fired counter above already rules that out).
    let handled = summary
        .store
        .db()
        .relation(td_core::Pred::new("handled", 2))
        .unwrap()
        .to_sorted_vec()
        .len();
    assert_eq!(handled as u64, total);
    std::fs::remove_dir_all(&dir).unwrap();
}
