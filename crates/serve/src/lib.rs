//! # td-serve — the multi-client transaction server
//!
//! Bonner's Transaction Datalog is a model of *many interacting
//! transactions*, but `td run` is one-shot: open the store, run the goals,
//! exit. This crate is the long-running counterpart: [`Server`] opens the
//! durable store once (holding its advisory lock) and admits concurrent
//! top-level transactions from independent client processes over a Unix
//! domain socket. Each request runs the existing kernel unchanged against
//! a snapshot of the database; commits go through
//! [`td_store::ConcurrentStore`] — optimistic concurrency control on the
//! O(1) content digests, group commit to amortize the fsync. See
//! `docs/SERVE.md` for the protocol, the OCC rule, and the recovery
//! argument.
//!
//! ## Protocol
//!
//! Line-oriented UTF-8 text, one request per line, one response line per
//! request (newline-terminated; control characters in answers are
//! replaced with spaces to preserve framing):
//!
//! ```text
//! -> run <goal>          e.g.  run transfer(a, b, 10)
//! <- ok seq=7 attempts=1 steps=42 X=3        committed at WAL seq 7
//! <- ok seq=- attempts=1 steps=9 X=3         succeeded read-only
//! <- no attempts=1 steps=17                  goal not executable
//! <- err <reason>                            parse/engine/store error
//!
//! -> event <e>(<args>) [at <ts>]   append one event occurrence
//! <- ok seq=9 attempts=1 ts=1712 matched=1   durable; 1 pattern match
//!
//! -> stats               one `ok` line of counters (see [`Server`] docs)
//! -> ping                `ok pong` liveness probe
//! -> stop                `ok stopping`; server drains and exits
//! ```
//!
//! A `run` response is sent only after the commit (if any) is
//! fsync-durable; `seq=-` marks read-only or failed goals, which leave no
//! WAL record.
//!
//! ## Events and triggers
//!
//! The `event` verb appends a timestamped ground fact to a declared event
//! relation through the same OCC + group-commit path as `run` — a burst of
//! events from many connections batches into few fsyncs. Once the append
//! is durable the event is fed to the [`td_events::Reactor`], and every
//! completed complex-event match enqueues its trigger goal to a dedicated
//! scheduler thread, which executes it as an ordinary OCC transaction.
//! Matches fire exactly once per match while the server lives; queued
//! trigger executions are *not* crash-durable (see `docs/EVENTS.md`).

pub mod client;

pub use client::{Client, Reply};

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::Instant;
use td_core::{Symbol, Value};
use td_db::{Delta, DeltaOp, Tuple};
use td_engine::{Engine, EngineConfig, Outcome};
use td_events::Reactor;
use td_parser::ParsedProgram;
use td_store::{ConcurrentStats, ConcurrentStore, Store, TxDecision, TxError, TxOptions};

/// Number of log2 latency buckets: bucket `i` counts trigger executions
/// whose ingest-to-durable latency was in `[2^(i-1), 2^i)` microseconds
/// (bucket 0: zero). 2^31 µs ≈ 36 minutes, ample headroom.
pub const LATENCY_BUCKETS: usize = 32;

/// A log2-bucketed latency histogram, safely shared across threads.
pub struct LatencyHistogram {
    buckets: [AtomicU64; LATENCY_BUCKETS],
}

impl LatencyHistogram {
    fn new() -> LatencyHistogram {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one latency observation, in microseconds.
    pub fn record(&self, us: u64) {
        let b = if us == 0 {
            0
        } else {
            (64 - us.leading_zeros() as usize).min(LATENCY_BUCKETS - 1)
        };
        self.buckets[b].fetch_add(1, Ordering::Relaxed);
    }

    /// Current bucket counts.
    pub fn snapshot(&self) -> Vec<u64> {
        self.buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }
}

/// The upper bound (µs) of the bucket holding the `p`-th percentile
/// observation — a conservative log2-resolution percentile. Returns 0 for
/// an empty histogram.
pub fn latency_percentile(buckets: &[u64], p: f64) -> u64 {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return 0;
    }
    let target = ((total as f64) * p).ceil().max(1.0) as u64;
    let mut cum = 0u64;
    for (i, c) in buckets.iter().enumerate() {
        cum += c;
        if cum >= target {
            return if i == 0 { 0 } else { 1u64 << i };
        }
    }
    1u64 << (buckets.len() - 1)
}

/// Counters the server accumulates on top of the store's
/// [`ConcurrentStats`]; everything lands in the `stats` protocol reply and
/// the run report.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeCounters {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests served (all verbs).
    pub requests: u64,
    /// Requests answered with `err`.
    pub errors: u64,
    /// Requests (and trigger executions) that exhausted their OCC retry
    /// budget and were answered `err conflict` — the starvation signal the
    /// jittered backoff exists to keep at zero.
    pub retries_exhausted: u64,
}

/// Event/trigger counters and latency as observed at shutdown.
#[derive(Clone, Debug, Default)]
pub struct EventsSummary {
    /// Events ingested durably (the `events.ingested` counter).
    pub ingested: u64,
    /// Completed complex-event matches (`triggers.matched`).
    pub matched: u64,
    /// Trigger transactions executed successfully (`triggers.fired`).
    pub fired: u64,
    /// OCC conflicts hit while executing triggers (`triggers.conflicted`).
    pub conflicted: u64,
    /// Ingest-to-trigger-done latency, p50/p99 upper bounds in µs.
    pub p50_us: u64,
    pub p99_us: u64,
    /// The raw log2 histogram buckets (see [`LATENCY_BUCKETS`]).
    pub latency_buckets: Vec<u64>,
}

/// What [`Server::serve`] hands back after a clean shutdown.
pub struct ServeSummary {
    /// Server-level counters.
    pub counters: ServeCounters,
    /// Store-level OCC/group-commit counters.
    pub stats: ConcurrentStats,
    /// The commit-validation rule the store ran under.
    pub occ: td_store::Validation,
    /// Per-relation conflict attribution, sorted by predicate: which
    /// relations caused validation failures, and how often.
    pub conflict_relations: Vec<(String, u64)>,
    /// Event-ingestion and trigger-execution counters.
    pub events: EventsSummary,
    /// Interner footprint at shutdown ([`Symbol::interned_count`],
    /// [`Symbol::interned_bytes`]) — the documented leak, made observable.
    pub interned_symbols: u64,
    pub interned_bytes: u64,
    /// The underlying store, drained and durable (e.g. for a final
    /// `rotate` or a closing report).
    pub store: Store,
}

struct Shared {
    shutdown: AtomicBool,
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
    retries_exhausted: AtomicU64,
    events_ingested: AtomicU64,
    triggers_matched: AtomicU64,
    triggers_fired: AtomicU64,
    triggers_conflicted: AtomicU64,
    latency: LatencyHistogram,
}

impl Shared {
    fn new() -> Shared {
        Shared {
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
            retries_exhausted: AtomicU64::new(0),
            events_ingested: AtomicU64::new(0),
            triggers_matched: AtomicU64::new(0),
            triggers_fired: AtomicU64::new(0),
            triggers_conflicted: AtomicU64::new(0),
            latency: LatencyHistogram::new(),
        }
    }

    fn events_summary(&self) -> EventsSummary {
        let buckets = self.latency.snapshot();
        EventsSummary {
            ingested: self.events_ingested.load(Ordering::Relaxed),
            matched: self.triggers_matched.load(Ordering::Relaxed),
            fired: self.triggers_fired.load(Ordering::Relaxed),
            conflicted: self.triggers_conflicted.load(Ordering::Relaxed),
            p50_us: latency_percentile(&buckets, 0.50),
            p99_us: latency_percentile(&buckets, 0.99),
            latency_buckets: buckets,
        }
    }
}

/// Everything a connection handler or the trigger scheduler needs, shared
/// once behind an `Arc`.
struct ConnCtx {
    program: ParsedProgram,
    config: EngineConfig,
    cs: ConcurrentStore,
    shared: Shared,
    socket: PathBuf,
    reactor: Mutex<Reactor>,
}

/// A completed match handed to the trigger scheduler; `started` is taken
/// when the *event* request arrived, so the recorded latency is true
/// end-to-end (ingest to trigger durable).
struct TriggerJob {
    fired: td_events::Fired,
    started: Instant,
}

/// A Unix-socket transaction server over one durable store.
pub struct Server {
    program: ParsedProgram,
    config: EngineConfig,
    store: ConcurrentStore,
}

impl Server {
    /// Build a server from a parsed program (rules define the available
    /// transactions; its `?-` goals and `init` facts are ignored — state
    /// comes from the store) and an open concurrent store.
    pub fn new(program: ParsedProgram, config: EngineConfig, store: ConcurrentStore) -> Server {
        Server {
            program,
            config,
            store,
        }
    }

    /// Convenience: open (or initialize, seeding `init` facts) the store
    /// directory and build the server.
    pub fn open(
        program: ParsedProgram,
        config: EngineConfig,
        dir: &Path,
        tx: TxOptions,
    ) -> td_store::Result<Server> {
        let store = open_or_init_store(dir, &program)?;
        Ok(Server::new(
            program,
            config,
            ConcurrentStore::new(store).with_options(tx),
        ))
    }

    /// Bind `socket` and serve until a client sends `stop`. Blocks the
    /// calling thread; connection handlers run one thread each, and — if
    /// the program declares triggers — a dedicated scheduler thread
    /// executes trigger transactions in match order. Returns the drained
    /// summary after the last in-flight request and trigger finish.
    pub fn serve(self, socket: &Path) -> std::io::Result<ServeSummary> {
        let listener = bind_socket(socket)?;
        let reactor = Reactor::new(&self.program.program, &self.program.triggers);
        let ctx = Arc::new(ConnCtx {
            program: self.program,
            config: self.config,
            cs: self.store.clone(),
            shared: Shared::new(),
            socket: socket.to_path_buf(),
            reactor: Mutex::new(reactor),
        });
        let (jobs, job_rx) = mpsc::channel::<TriggerJob>();
        let scheduler = {
            let ctx = ctx.clone();
            std::thread::spawn(move || trigger_scheduler(job_rx, &ctx))
        };
        let mut handlers = Vec::new();
        for stream in listener.incoming() {
            if ctx.shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            ctx.shared.connections.fetch_add(1, Ordering::Relaxed);
            let ctx = ctx.clone();
            let jobs = jobs.clone();
            handlers.push(std::thread::spawn(move || {
                handle_connection(stream, &ctx, &jobs);
            }));
        }
        for h in handlers {
            let _ = h.join();
        }
        // All connections are done: close the job channel and let the
        // scheduler drain queued triggers before the store shuts down.
        drop(jobs);
        let _ = scheduler.join();
        let _ = std::fs::remove_file(socket);
        let counters = ServeCounters {
            connections: ctx.shared.connections.load(Ordering::Relaxed),
            requests: ctx.shared.requests.load(Ordering::Relaxed),
            errors: ctx.shared.errors.load(Ordering::Relaxed),
            retries_exhausted: ctx.shared.retries_exhausted.load(Ordering::Relaxed),
        };
        let events = ctx.shared.events_summary();
        let stats = self.store.stats();
        let occ = self.store.options().validation;
        let conflict_relations = self
            .store
            .conflict_attribution()
            .into_iter()
            .map(|(p, n)| (p.to_string(), n))
            .collect();
        let store = self
            .store
            .close()
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        Ok(ServeSummary {
            counters,
            stats,
            occ,
            conflict_relations,
            events,
            interned_symbols: Symbol::interned_count(),
            interned_bytes: Symbol::interned_bytes(),
            store,
        })
    }
}

/// Open-or-init with the same seeding rule as `td run --db`: a fresh store
/// starts from the program's schema and commits the `init` facts as WAL
/// record 0.
pub fn open_or_init_store(dir: &Path, parsed: &ParsedProgram) -> td_store::Result<Store> {
    if Store::is_initialized(dir) {
        return Store::open(dir);
    }
    let schema = td_db::Database::with_schema_of(&parsed.program);
    let mut store = Store::init(dir, &schema)?;
    let with_init = td_engine::load_init(&schema, &parsed.init)
        .map_err(|e| td_store::StoreError::Db(e.to_string()))?;
    let mut genesis = td_db::Delta::new();
    for p in with_init.preds() {
        if let Some(rel) = with_init.relation(p) {
            for t in rel.to_sorted_vec() {
                genesis.push(td_db::DeltaOp::Ins(p, t));
            }
        }
    }
    if !genesis.is_empty() {
        store.commit(&genesis)?;
    }
    Ok(store)
}

/// Bind the listener, clearing a stale socket file left by a crashed
/// server (stale = nothing accepts connections on it; a *live* server also
/// holds the store lock, so two live servers on one DIR cannot happen).
fn bind_socket(socket: &Path) -> std::io::Result<UnixListener> {
    match UnixListener::bind(socket) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
            if UnixStream::connect(socket).is_ok() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AddrInUse,
                    format!("`{}`: another server is accepting here", socket.display()),
                ));
            }
            std::fs::remove_file(socket)?;
            UnixListener::bind(socket)
        }
        Err(e) => Err(e),
    }
}

fn handle_connection(stream: UnixStream, ctx: &ConnCtx, jobs: &mpsc::Sender<TriggerJob>) {
    // One engine per connection: `Engine` is not shared across threads, and
    // per-connection caches warm up across a client's requests.
    let engine = Engine::with_config(ctx.program.program.clone(), ctx.config.clone());
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        ctx.shared.requests.fetch_add(1, Ordering::Relaxed);
        let (reply, stop) = dispatch(request, &engine, ctx, jobs);
        if reply.starts_with("err ") {
            ctx.shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        if writeln!(writer, "{}", sanitize(&reply)).is_err() {
            break;
        }
        if stop {
            ctx.shared.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept loop so it observes the flag.
            let _ = UnixStream::connect(&ctx.socket);
            break;
        }
    }
}

fn dispatch(
    request: &str,
    engine: &Engine,
    ctx: &ConnCtx,
    jobs: &mpsc::Sender<TriggerJob>,
) -> (String, bool) {
    let (verb, rest) = match request.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (request, ""),
    };
    match verb {
        "ping" => ("ok pong".to_owned(), false),
        "stop" => ("ok stopping".to_owned(), true),
        "stats" => (stats_line(ctx), false),
        "run" if !rest.is_empty() => (run_goal(engine, ctx, rest), false),
        "run" => ("err run: missing goal".to_owned(), false),
        "event" if !rest.is_empty() => (ingest_event(rest, ctx, jobs), false),
        "event" => ("err event: missing event atom".to_owned(), false),
        other => (
            format!("err unknown command `{other}` (try: run/event/stats/ping/stop)"),
            false,
        ),
    }
}

/// Handle one `event` request: parse, append the timestamped fact durably
/// through OCC + group commit, then feed the reactor and enqueue every
/// completed match for the trigger scheduler.
///
/// The stored relation has set semantics, so a duplicate `(args, ts)`
/// tuple changes nothing in the database (the append reports `seq=-`), but
/// each ingestion is still a distinct *occurrence* for pattern matching.
fn ingest_event(src: &str, ctx: &ConnCtx, jobs: &mpsc::Sender<TriggerJob>) -> String {
    let started = Instant::now();
    let (name, args, explicit_ts) = match td_parser::parse_event(src) {
        Ok(parts) => parts,
        Err(e) => return format!("err parse: {}", first_line(&e.to_string())),
    };
    let Some(stored) = ctx.program.program.event_by_name(Symbol::intern(&name)) else {
        return format!("err event: `{name}` is not a declared event relation");
    };
    if stored.arity as usize != args.len() + 1 {
        return format!(
            "err event: `{name}` is declared with arity {}, got {} arguments",
            stored.arity - 1,
            args.len()
        );
    }
    let ts = explicit_ts.unwrap_or_else(now_ms);
    let Ok(ts_int) = i64::try_from(ts) else {
        return "err event: timestamp too large".to_owned();
    };
    let mut values = args.clone();
    values.push(Value::Int(ts_int));
    let tuple = Tuple::new(values);
    let result = ctx.cs.transaction(|db| {
        if db.contains(stored, &tuple) {
            Ok::<_, std::convert::Infallible>(TxDecision::ReadOnly(()))
        } else {
            let mut delta = Delta::new();
            delta.push(DeltaOp::Ins(stored, tuple.clone()));
            // The duplicate check above read the event relation; nothing
            // else was consulted.
            let mut reads = td_db::ReadSet::new();
            reads.record(stored);
            Ok(TxDecision::commit(delta, reads, ()))
        }
    });
    match result {
        Ok(receipt) => {
            ctx.shared.events_ingested.fetch_add(1, Ordering::Relaxed);
            let fires = {
                let mut reactor = ctx.reactor.lock().expect("reactor poisoned by panic");
                reactor.ingest(stored.name, &args, ts)
            };
            let matched = fires.len();
            ctx.shared
                .triggers_matched
                .fetch_add(matched as u64, Ordering::Relaxed);
            for fired in fires {
                // Send can only fail after shutdown joined the scheduler,
                // which cannot happen while this connection is live.
                let _ = jobs.send(TriggerJob { fired, started });
            }
            let seq = receipt
                .seq
                .map_or_else(|| "-".to_owned(), |s| s.to_string());
            format!(
                "ok seq={seq} attempts={} ts={ts} matched={matched}",
                receipt.attempts
            )
        }
        Err(TxError::Conflict { attempts }) => {
            ctx.shared.retries_exhausted.fetch_add(1, Ordering::Relaxed);
            format!("err conflict: gave up after {attempts} attempts")
        }
        Err(TxError::Store(e)) => format!("err store: {}", first_line(&e.to_string())),
        Err(TxError::App(e)) => match e {},
    }
}

/// The trigger scheduler: one thread draining completed matches in order,
/// executing each trigger goal as an ordinary OCC transaction. A single
/// thread gives exactly-once execution per match and a deterministic
/// trigger order (match order); OCC retries handle conflicts with
/// concurrent client transactions.
fn trigger_scheduler(rx: mpsc::Receiver<TriggerJob>, ctx: &ConnCtx) {
    let engine = Engine::with_config(ctx.program.program.clone(), ctx.config.clone());
    for job in rx {
        run_trigger(&engine, ctx, &job);
    }
}

fn run_trigger(engine: &Engine, ctx: &ConnCtx, job: &TriggerJob) {
    let result = ctx
        .cs
        .transaction(|db| match engine.solve(&job.fired.goal, db) {
            Ok(Outcome::Success(sol)) => {
                if sol.delta.is_empty() {
                    Ok(TxDecision::ReadOnly(true))
                } else {
                    Ok(TxDecision::commit(
                        sol.delta.clone(),
                        sol.reads.clone(),
                        true,
                    ))
                }
            }
            Ok(Outcome::Failure { .. }) => Ok(TxDecision::Abort(false)),
            Err(e) => Err(e.to_string()),
        });
    let shared = &ctx.shared;
    match result {
        Ok(receipt) => {
            if receipt.attempts > 1 {
                shared
                    .triggers_conflicted
                    .fetch_add(u64::from(receipt.attempts - 1), Ordering::Relaxed);
            }
            if receipt.value {
                shared.triggers_fired.fetch_add(1, Ordering::Relaxed);
            }
        }
        Err(TxError::Conflict { attempts }) => {
            shared
                .triggers_conflicted
                .fetch_add(u64::from(attempts), Ordering::Relaxed);
            shared.retries_exhausted.fetch_add(1, Ordering::Relaxed);
        }
        Err(_) => {}
    }
    let us = u64::try_from(job.started.elapsed().as_micros()).unwrap_or(u64::MAX);
    shared.latency.record(us);
}

fn now_ms() -> u64 {
    std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| u64::try_from(d.as_millis()).unwrap_or(u64::MAX))
        .unwrap_or(0)
}

/// One request = one top-level transaction, end to end: parse, solve
/// against a snapshot, validate the solution's read set at the head,
/// group-commit, acknowledge durable.
fn run_goal(engine: &Engine, ctx: &ConnCtx, src: &str) -> String {
    let parsed = match td_parser::parse_goal(src, &ctx.program.program) {
        Ok(g) => g,
        Err(e) => return format!("err parse: {}", first_line(&e.to_string())),
    };
    let result = ctx
        .cs
        .transaction(|db| match engine.solve(&parsed.goal, db) {
            Ok(Outcome::Success(sol)) => {
                let mut bindings = String::new();
                for (i, name) in parsed.var_names.iter().enumerate() {
                    bindings.push_str(&format!(" {name}={}", sol.answer[i]));
                }
                let body = format!("steps={}{}", sol.stats.steps, bindings);
                if sol.delta.is_empty() {
                    Ok(TxDecision::ReadOnly((true, body)))
                } else {
                    Ok(TxDecision::commit(
                        sol.delta.clone(),
                        sol.reads.clone(),
                        (true, body),
                    ))
                }
            }
            Ok(Outcome::Failure { stats }) => {
                Ok(TxDecision::Abort((false, format!("steps={}", stats.steps))))
            }
            Err(e) => Err(e.to_string()),
        });
    match result {
        Ok(receipt) => {
            let (yes, body) = receipt.value;
            if yes {
                let seq = receipt
                    .seq
                    .map_or_else(|| "-".to_owned(), |s| s.to_string());
                format!("ok seq={seq} attempts={} {body}", receipt.attempts)
            } else {
                format!("no attempts={} {body}", receipt.attempts)
            }
        }
        Err(TxError::Conflict { attempts }) => {
            ctx.shared.retries_exhausted.fetch_add(1, Ordering::Relaxed);
            format!("err conflict: gave up after {attempts} attempts")
        }
        Err(TxError::Store(e)) => format!("err store: {}", first_line(&e.to_string())),
        Err(TxError::App(e)) => format!("err engine: {}", first_line(&e)),
    }
}

fn stats_line(ctx: &ConnCtx) -> String {
    let s = ctx.cs.stats();
    let shared = &ctx.shared;
    let ev = shared.events_summary();
    format!(
        "ok occ={} commits={} read_only={} aborts={} conflicts={} conflict_failures={} \
         retries_exhausted={} conflict_preds={} \
         groups={} grouped_records={} max_group={} mean_group={:.2} durable={} \
         connections={} requests={} errors={} interned_syms={} interned_bytes={} \
         events_ingested={} triggers_matched={} triggers_fired={} \
         triggers_conflicted={} trigger_p50_us={} trigger_p99_us={}",
        ctx.cs.options().validation,
        s.commits,
        s.read_only,
        s.aborts,
        s.conflicts,
        s.conflict_failures,
        shared.retries_exhausted.load(Ordering::Relaxed),
        conflict_preds_field(&ctx.cs),
        s.groups,
        s.grouped_records,
        s.max_group,
        s.mean_group(),
        ctx.cs.durable_records(),
        shared.connections.load(Ordering::Relaxed),
        shared.requests.load(Ordering::Relaxed),
        shared.errors.load(Ordering::Relaxed),
        Symbol::interned_count(),
        Symbol::interned_bytes(),
        ev.ingested,
        ev.matched,
        ev.fired,
        ev.conflicted,
        ev.p50_us,
        ev.p99_us,
    )
}

/// Conflict attribution as one protocol field: `rel/2:5,other/1:1` sorted
/// by predicate, or `-` when no validation has ever failed.
fn conflict_preds_field(cs: &ConcurrentStore) -> String {
    let attr = cs.conflict_attribution();
    if attr.is_empty() {
        return "-".to_owned();
    }
    attr.into_iter()
        .map(|(p, n)| format!("{p}:{n}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Keep the one-line framing: anything that could smuggle a newline into a
/// response (engine error text, odd constants) is flattened.
fn sanitize(reply: &str) -> String {
    if reply.bytes().any(|b| b.is_ascii_control()) {
        reply
            .chars()
            .map(|c| if c.is_control() { ' ' } else { c })
            .collect()
    } else {
        reply.to_owned()
    }
}

fn first_line(s: &str) -> &str {
    s.lines().next().unwrap_or("")
}
