//! # td-serve — the multi-client transaction server
//!
//! Bonner's Transaction Datalog is a model of *many interacting
//! transactions*, but `td run` is one-shot: open the store, run the goals,
//! exit. This crate is the long-running counterpart: [`Server`] opens the
//! durable store once (holding its advisory lock) and admits concurrent
//! top-level transactions from independent client processes over a Unix
//! domain socket. Each request runs the existing kernel unchanged against
//! a snapshot of the database; commits go through
//! [`td_store::ConcurrentStore`] — optimistic concurrency control on the
//! O(1) content digests, group commit to amortize the fsync. See
//! `docs/SERVE.md` for the protocol, the OCC rule, and the recovery
//! argument.
//!
//! ## Protocol
//!
//! Line-oriented UTF-8 text, one request per line, one response line per
//! request (newline-terminated; control characters in answers are
//! replaced with spaces to preserve framing):
//!
//! ```text
//! -> run <goal>          e.g.  run transfer(a, b, 10)
//! <- ok seq=7 attempts=1 steps=42 X=3        committed at WAL seq 7
//! <- ok seq=- attempts=1 steps=9 X=3         succeeded read-only
//! <- no attempts=1 steps=17                  goal not executable
//! <- err <reason>                            parse/engine/store error
//!
//! -> stats               one `ok` line of counters (see [`Server`] docs)
//! -> ping                `ok pong` liveness probe
//! -> stop                `ok stopping`; server drains and exits
//! ```
//!
//! A `run` response is sent only after the commit (if any) is
//! fsync-durable; `seq=-` marks read-only or failed goals, which leave no
//! WAL record.

pub mod client;

pub use client::{Client, Reply};

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::Path;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use td_core::Symbol;
use td_engine::{Engine, EngineConfig, Outcome};
use td_parser::ParsedProgram;
use td_store::{ConcurrentStats, ConcurrentStore, Store, TxDecision, TxError, TxOptions};

/// Counters the server accumulates on top of the store's
/// [`ConcurrentStats`]; everything lands in the `stats` protocol reply and
/// the run report.
#[derive(Clone, Copy, Debug, Default)]
pub struct ServeCounters {
    /// Connections accepted over the server's lifetime.
    pub connections: u64,
    /// Requests served (all verbs).
    pub requests: u64,
    /// Requests answered with `err`.
    pub errors: u64,
}

/// What [`Server::serve`] hands back after a clean shutdown.
pub struct ServeSummary {
    /// Server-level counters.
    pub counters: ServeCounters,
    /// Store-level OCC/group-commit counters.
    pub stats: ConcurrentStats,
    /// Interner footprint at shutdown ([`Symbol::interned_count`],
    /// [`Symbol::interned_bytes`]) — the documented leak, made observable.
    pub interned_symbols: u64,
    pub interned_bytes: u64,
    /// The underlying store, drained and durable (e.g. for a final
    /// `rotate` or a closing report).
    pub store: Store,
}

struct Shared {
    shutdown: AtomicBool,
    connections: AtomicU64,
    requests: AtomicU64,
    errors: AtomicU64,
}

/// A Unix-socket transaction server over one durable store.
pub struct Server {
    program: ParsedProgram,
    config: EngineConfig,
    store: ConcurrentStore,
}

impl Server {
    /// Build a server from a parsed program (rules define the available
    /// transactions; its `?-` goals and `init` facts are ignored — state
    /// comes from the store) and an open concurrent store.
    pub fn new(program: ParsedProgram, config: EngineConfig, store: ConcurrentStore) -> Server {
        Server {
            program,
            config,
            store,
        }
    }

    /// Convenience: open (or initialize, seeding `init` facts) the store
    /// directory and build the server.
    pub fn open(
        program: ParsedProgram,
        config: EngineConfig,
        dir: &Path,
        tx: TxOptions,
    ) -> td_store::Result<Server> {
        let store = open_or_init_store(dir, &program)?;
        Ok(Server::new(
            program,
            config,
            ConcurrentStore::new(store).with_options(tx),
        ))
    }

    /// Bind `socket` and serve until a client sends `stop`. Blocks the
    /// calling thread; connection handlers run one thread each. Returns
    /// the drained summary after the last in-flight request finishes.
    pub fn serve(self, socket: &Path) -> std::io::Result<ServeSummary> {
        let listener = bind_socket(socket)?;
        let shared = Arc::new(Shared {
            shutdown: AtomicBool::new(false),
            connections: AtomicU64::new(0),
            requests: AtomicU64::new(0),
            errors: AtomicU64::new(0),
        });
        let mut handlers = Vec::new();
        for stream in listener.incoming() {
            if shared.shutdown.load(Ordering::SeqCst) {
                break;
            }
            let stream = match stream {
                Ok(s) => s,
                Err(_) => continue,
            };
            shared.connections.fetch_add(1, Ordering::Relaxed);
            let program = self.program.clone();
            let config = self.config.clone();
            let cs = self.store.clone();
            let shared = shared.clone();
            let socket = socket.to_path_buf();
            handlers.push(std::thread::spawn(move || {
                handle_connection(stream, &program, &config, &cs, &shared, &socket);
            }));
        }
        for h in handlers {
            let _ = h.join();
        }
        let _ = std::fs::remove_file(socket);
        let counters = ServeCounters {
            connections: shared.connections.load(Ordering::Relaxed),
            requests: shared.requests.load(Ordering::Relaxed),
            errors: shared.errors.load(Ordering::Relaxed),
        };
        let stats = self.store.stats();
        let store = self
            .store
            .close()
            .map_err(|e| std::io::Error::other(e.to_string()))?;
        Ok(ServeSummary {
            counters,
            stats,
            interned_symbols: Symbol::interned_count(),
            interned_bytes: Symbol::interned_bytes(),
            store,
        })
    }
}

/// Open-or-init with the same seeding rule as `td run --db`: a fresh store
/// starts from the program's schema and commits the `init` facts as WAL
/// record 0.
pub fn open_or_init_store(dir: &Path, parsed: &ParsedProgram) -> td_store::Result<Store> {
    if Store::is_initialized(dir) {
        return Store::open(dir);
    }
    let schema = td_db::Database::with_schema_of(&parsed.program);
    let mut store = Store::init(dir, &schema)?;
    let with_init = td_engine::load_init(&schema, &parsed.init)
        .map_err(|e| td_store::StoreError::Db(e.to_string()))?;
    let mut genesis = td_db::Delta::new();
    for p in with_init.preds() {
        if let Some(rel) = with_init.relation(p) {
            for t in rel.to_sorted_vec() {
                genesis.push(td_db::DeltaOp::Ins(p, t));
            }
        }
    }
    if !genesis.is_empty() {
        store.commit(&genesis)?;
    }
    Ok(store)
}

/// Bind the listener, clearing a stale socket file left by a crashed
/// server (stale = nothing accepts connections on it; a *live* server also
/// holds the store lock, so two live servers on one DIR cannot happen).
fn bind_socket(socket: &Path) -> std::io::Result<UnixListener> {
    match UnixListener::bind(socket) {
        Ok(l) => Ok(l),
        Err(e) if e.kind() == std::io::ErrorKind::AddrInUse => {
            if UnixStream::connect(socket).is_ok() {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::AddrInUse,
                    format!("`{}`: another server is accepting here", socket.display()),
                ));
            }
            std::fs::remove_file(socket)?;
            UnixListener::bind(socket)
        }
        Err(e) => Err(e),
    }
}

fn handle_connection(
    stream: UnixStream,
    program: &ParsedProgram,
    config: &EngineConfig,
    cs: &ConcurrentStore,
    shared: &Shared,
    socket: &Path,
) {
    // One engine per connection: `Engine` is not shared across threads, and
    // per-connection caches warm up across a client's requests.
    let engine = Engine::with_config(program.program.clone(), config.clone());
    let reader = match stream.try_clone() {
        Ok(s) => BufReader::new(s),
        Err(_) => return,
    };
    let mut writer = stream;
    for line in reader.lines() {
        let line = match line {
            Ok(l) => l,
            Err(_) => break,
        };
        let request = line.trim();
        if request.is_empty() {
            continue;
        }
        shared.requests.fetch_add(1, Ordering::Relaxed);
        let (reply, stop) = dispatch(request, &engine, program, cs, shared);
        if reply.starts_with("err ") {
            shared.errors.fetch_add(1, Ordering::Relaxed);
        }
        if writeln!(writer, "{}", sanitize(&reply)).is_err() {
            break;
        }
        if stop {
            shared.shutdown.store(true, Ordering::SeqCst);
            // Unblock the accept loop so it observes the flag.
            let _ = UnixStream::connect(socket);
            break;
        }
    }
}

fn dispatch(
    request: &str,
    engine: &Engine,
    program: &ParsedProgram,
    cs: &ConcurrentStore,
    shared: &Shared,
) -> (String, bool) {
    let (verb, rest) = match request.split_once(char::is_whitespace) {
        Some((v, r)) => (v, r.trim()),
        None => (request, ""),
    };
    match verb {
        "ping" => ("ok pong".to_owned(), false),
        "stop" => ("ok stopping".to_owned(), true),
        "stats" => (stats_line(cs, shared), false),
        "run" if !rest.is_empty() => (run_goal(engine, program, cs, rest), false),
        "run" => ("err run: missing goal".to_owned(), false),
        other => (
            format!("err unknown command `{other}` (try: run/stats/ping/stop)"),
            false,
        ),
    }
}

/// One request = one top-level transaction, end to end: parse, solve
/// against a snapshot, OCC-validate, group-commit, acknowledge durable.
fn run_goal(engine: &Engine, program: &ParsedProgram, cs: &ConcurrentStore, src: &str) -> String {
    let parsed = match td_parser::parse_goal(src, &program.program) {
        Ok(g) => g,
        Err(e) => return format!("err parse: {}", first_line(&e.to_string())),
    };
    let result = cs.transaction(|db| match engine.solve(&parsed.goal, db) {
        Ok(Outcome::Success(sol)) => {
            let mut bindings = String::new();
            for (i, name) in parsed.var_names.iter().enumerate() {
                bindings.push_str(&format!(" {name}={}", sol.answer[i]));
            }
            let body = format!("steps={}{}", sol.stats.steps, bindings);
            if sol.delta.is_empty() {
                Ok(TxDecision::ReadOnly((true, body)))
            } else {
                Ok(TxDecision::Commit(sol.delta.clone(), (true, body)))
            }
        }
        Ok(Outcome::Failure { stats }) => {
            Ok(TxDecision::Abort((false, format!("steps={}", stats.steps))))
        }
        Err(e) => Err(e.to_string()),
    });
    match result {
        Ok(receipt) => {
            let (yes, body) = receipt.value;
            if yes {
                let seq = receipt
                    .seq
                    .map_or_else(|| "-".to_owned(), |s| s.to_string());
                format!("ok seq={seq} attempts={} {body}", receipt.attempts)
            } else {
                format!("no attempts={} {body}", receipt.attempts)
            }
        }
        Err(TxError::Conflict { attempts }) => {
            format!("err conflict: gave up after {attempts} attempts")
        }
        Err(TxError::Store(e)) => format!("err store: {}", first_line(&e.to_string())),
        Err(TxError::App(e)) => format!("err engine: {}", first_line(&e)),
    }
}

fn stats_line(cs: &ConcurrentStore, shared: &Shared) -> String {
    let s = cs.stats();
    format!(
        "ok commits={} read_only={} aborts={} conflicts={} conflict_failures={} \
         groups={} grouped_records={} max_group={} mean_group={:.2} durable={} \
         connections={} requests={} errors={} interned_syms={} interned_bytes={}",
        s.commits,
        s.read_only,
        s.aborts,
        s.conflicts,
        s.conflict_failures,
        s.groups,
        s.grouped_records,
        s.max_group,
        s.mean_group(),
        cs.durable_records(),
        shared.connections.load(Ordering::Relaxed),
        shared.requests.load(Ordering::Relaxed),
        shared.errors.load(Ordering::Relaxed),
        Symbol::interned_count(),
        Symbol::interned_bytes(),
    )
}

/// Keep the one-line framing: anything that could smuggle a newline into a
/// response (engine error text, odd constants) is flattened.
fn sanitize(reply: &str) -> String {
    if reply.bytes().any(|b| b.is_ascii_control()) {
        reply
            .chars()
            .map(|c| if c.is_control() { ' ' } else { c })
            .collect()
    } else {
        reply.to_owned()
    }
}

fn first_line(s: &str) -> &str {
    s.lines().next().unwrap_or("")
}
