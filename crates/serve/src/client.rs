//! Client side of the serve protocol: a blocking line-oriented connection
//! plus a typed view of the response grammar (see the crate docs).

use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// A parsed server response line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Reply {
    /// `ok seq=<n> …` — the goal succeeded and its delta is fsync-durable.
    Committed {
        seq: u64,
        attempts: u32,
        bindings: Vec<(String, String)>,
    },
    /// `ok seq=- …` — the goal succeeded without touching the database.
    ReadOnly {
        attempts: u32,
        bindings: Vec<(String, String)>,
    },
    /// `no …` — the goal is not executable against the current state.
    No { attempts: u32 },
    /// `err <reason>` — parse error, engine fault, store fault, or a
    /// transaction that exhausted its conflict-retry budget.
    Err(String),
}

impl Reply {
    /// Parse one response line. Unknown shapes land in [`Reply::Err`] so a
    /// protocol drift fails loudly instead of silently succeeding.
    pub fn parse(line: &str) -> Reply {
        if let Some(rest) = line.strip_prefix("err ") {
            return Reply::Err(rest.to_owned());
        }
        let mut fields = line.split_whitespace();
        let head = fields.next().unwrap_or("");
        let mut seq: Option<u64> = None;
        let mut read_only = false;
        let mut attempts: u32 = 0;
        let mut bindings = Vec::new();
        for field in fields {
            match field.split_once('=') {
                Some(("seq", "-")) => read_only = true,
                Some(("seq", v)) => seq = v.parse().ok(),
                Some(("attempts", v)) => attempts = v.parse().unwrap_or(0),
                Some(("steps", _)) => {}
                Some((name, v)) => bindings.push((name.to_owned(), v.to_owned())),
                None => {}
            }
        }
        match head {
            "ok" if read_only => Reply::ReadOnly { attempts, bindings },
            "ok" => match seq {
                Some(seq) => Reply::Committed {
                    seq,
                    attempts,
                    bindings,
                },
                // `ok pong` / `ok stopping` / stats lines: counters parse
                // as bindings, no seq field.
                None => Reply::ReadOnly { attempts, bindings },
            },
            "no" => Reply::No { attempts },
            _ => Reply::Err(format!("unparseable reply: {line}")),
        }
    }

    /// Did the request succeed (committed or read-only)?
    pub fn is_ok(&self) -> bool {
        matches!(self, Reply::Committed { .. } | Reply::ReadOnly { .. })
    }

    /// The bound value of variable `name`, if the reply carried one.
    pub fn binding(&self, name: &str) -> Option<&str> {
        let bindings = match self {
            Reply::Committed { bindings, .. } | Reply::ReadOnly { bindings, .. } => bindings,
            _ => return None,
        };
        bindings
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// A blocking connection to a running `td serve`.
pub struct Client {
    reader: BufReader<UnixStream>,
    writer: UnixStream,
}

impl Client {
    /// Connect to the server's socket.
    pub fn connect(socket: &Path) -> std::io::Result<Client> {
        let stream = UnixStream::connect(socket)?;
        let reader = BufReader::new(stream.try_clone()?);
        Ok(Client {
            reader,
            writer: stream,
        })
    }

    /// Send one raw request line, return the raw response line.
    pub fn request(&mut self, line: &str) -> std::io::Result<String> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        let mut reply = String::new();
        let n = self.reader.read_line(&mut reply)?;
        if n == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "server closed the connection",
            ));
        }
        Ok(reply.trim_end().to_owned())
    }

    /// Run one goal as a top-level transaction; returns after it is
    /// durable (or failed).
    pub fn run(&mut self, goal: &str) -> std::io::Result<Reply> {
        Ok(Reply::parse(&self.request(&format!("run {goal}"))?))
    }

    /// Ingest one event occurrence, e.g. `sample(7)` or `result(7, 2) at 1500`.
    /// Returns after the appended fact is durable; `bindings` carries the
    /// server-assigned timestamp (`ts`) and trigger match count (`matched`).
    pub fn event(&mut self, event: &str) -> std::io::Result<Reply> {
        Ok(Reply::parse(&self.request(&format!("event {event}"))?))
    }

    /// The server's counters as the raw `ok …` line.
    pub fn stats(&mut self) -> std::io::Result<String> {
        self.request("stats")
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> std::io::Result<bool> {
        Ok(self.request("ping")? == "ok pong")
    }

    /// Ask the server to shut down (it drains in-flight requests first).
    pub fn stop(&mut self) -> std::io::Result<()> {
        self.request("stop").map(|_| ())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_committed_with_bindings() {
        let r = Reply::parse("ok seq=7 attempts=2 steps=42 X=3 Y=alice");
        match &r {
            Reply::Committed {
                seq,
                attempts,
                bindings,
            } => {
                assert_eq!((*seq, *attempts), (7, 2));
                assert_eq!(bindings.len(), 2);
            }
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(r.binding("Y"), Some("alice"));
        assert!(r.is_ok());
    }

    #[test]
    fn parse_read_only_no_and_err() {
        assert_eq!(
            Reply::parse("ok seq=- attempts=1 steps=9"),
            Reply::ReadOnly {
                attempts: 1,
                bindings: vec![]
            }
        );
        assert_eq!(
            Reply::parse("no attempts=3 steps=17"),
            Reply::No { attempts: 3 }
        );
        assert_eq!(
            Reply::parse("err parse: unexpected token"),
            Reply::Err("parse: unexpected token".to_owned())
        );
        assert!(!Reply::parse("gibberish").is_ok());
    }
}
