//! Variable bindings with trail-based backtracking.
//!
//! The engine binds runtime variables destructively and undoes bindings on
//! backtracking by truncating a trail — the classic logic-programming design.
//! [`Bindings`] is that store: a growable map from runtime variable ids to
//! terms, plus the trail.
//!
//! Variables may bind to other variables (aliasing), so lookups *walk*
//! chains to the representative. Chains are created by unification of two
//! unbound variables and stay short in practice; `resolve` walks without path
//! compression so that the trail can undo bindings exactly.

use crate::term::{Term, Value, Var};

/// A snapshot position in the trail; truncating back to it undoes every
/// binding made since.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct TrailMark(usize);

/// The binding store.
#[derive(Clone, Debug, Default)]
pub struct Bindings {
    slots: Vec<Option<Term>>,
    trail: Vec<Var>,
}

impl Bindings {
    /// An empty store.
    pub fn new() -> Bindings {
        Bindings::default()
    }

    /// Allocate `n` fresh unbound variables, returning the id of the first.
    /// The engine calls this when renaming a rule apart.
    pub fn alloc(&mut self, n: u32) -> u32 {
        let base = u32::try_from(self.slots.len()).expect("variable id overflow");
        self.slots.resize(self.slots.len() + n as usize, None);
        base
    }

    /// Total number of allocated variable slots.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// True if no variables have been allocated.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    fn slot(&self, v: Var) -> Option<Term> {
        self.slots.get(v.0 as usize).copied().flatten()
    }

    /// Resolve a term to its current representative: ground value, or the
    /// unbound variable at the end of the alias chain.
    pub fn resolve(&self, t: Term) -> Term {
        let mut cur = t;
        loop {
            match cur {
                Term::Val(_) => return cur,
                Term::Var(v) => match self.slot(v) {
                    Some(next) => cur = next,
                    None => return cur,
                },
            }
        }
    }

    /// Resolve to a ground value, if the term is bound to one.
    pub fn value_of(&self, t: Term) -> Option<Value> {
        self.resolve(t).as_value()
    }

    /// Bind unbound variable `v` to `t`, recording it on the trail.
    ///
    /// Callers must pass a variable that is currently unbound (i.e. the
    /// result of [`Bindings::resolve`]); debug builds assert this.
    pub fn bind(&mut self, v: Var, t: Term) {
        debug_assert!(self.slot(v).is_none(), "bind called on already-bound {v:?}");
        debug_assert!(
            (v.0 as usize) < self.slots.len(),
            "bind called on unallocated {v:?}"
        );
        self.slots[v.0 as usize] = Some(t);
        self.trail.push(v);
    }

    /// Current trail position.
    pub fn mark(&self) -> TrailMark {
        TrailMark(self.trail.len())
    }

    /// Undo every binding made since `mark`.
    pub fn undo_to(&mut self, mark: TrailMark) {
        while self.trail.len() > mark.0 {
            let v = self.trail.pop().expect("trail length checked");
            self.slots[v.0 as usize] = None;
        }
    }

    /// Apply the bindings to a term (resolve; unbound variables stay).
    pub fn apply_term(&self, t: Term) -> Term {
        self.resolve(t)
    }

    /// Apply the bindings to a goal, resolving every term.
    pub fn apply_goal(&self, g: &crate::goal::Goal) -> crate::goal::Goal {
        g.map_terms(&mut |t| self.resolve(t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::goal::Goal;

    #[test]
    fn alloc_returns_consecutive_bases() {
        let mut b = Bindings::new();
        assert_eq!(b.alloc(3), 0);
        assert_eq!(b.alloc(2), 3);
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn bind_and_resolve() {
        let mut b = Bindings::new();
        b.alloc(2);
        b.bind(Var(0), Term::sym("a"));
        assert_eq!(b.resolve(Term::var(0)), Term::sym("a"));
        assert_eq!(b.resolve(Term::var(1)), Term::var(1));
        assert_eq!(b.value_of(Term::var(0)), Some(Value::sym("a")));
        assert_eq!(b.value_of(Term::var(1)), None);
    }

    #[test]
    fn alias_chains_resolve_to_the_end() {
        let mut b = Bindings::new();
        b.alloc(3);
        b.bind(Var(0), Term::var(1));
        b.bind(Var(1), Term::var(2));
        assert_eq!(b.resolve(Term::var(0)), Term::var(2));
        b.bind(Var(2), Term::int(9));
        assert_eq!(b.resolve(Term::var(0)), Term::int(9));
    }

    #[test]
    fn undo_restores_exactly() {
        let mut b = Bindings::new();
        b.alloc(3);
        b.bind(Var(0), Term::sym("x"));
        let m = b.mark();
        b.bind(Var(1), Term::sym("y"));
        b.bind(Var(2), Term::var(1));
        b.undo_to(m);
        assert_eq!(b.resolve(Term::var(0)), Term::sym("x"));
        assert_eq!(b.resolve(Term::var(1)), Term::var(1));
        assert_eq!(b.resolve(Term::var(2)), Term::var(2));
    }

    #[test]
    fn undo_to_start_clears_everything() {
        let mut b = Bindings::new();
        b.alloc(2);
        let m = b.mark();
        b.bind(Var(0), Term::int(1));
        b.bind(Var(1), Term::int(2));
        b.undo_to(m);
        assert_eq!(b.resolve(Term::var(0)), Term::var(0));
        assert_eq!(b.resolve(Term::var(1)), Term::var(1));
    }

    #[test]
    fn apply_goal_resolves_terms() {
        let mut b = Bindings::new();
        b.alloc(2);
        b.bind(Var(0), Term::sym("w1"));
        let g = Goal::atom("task", vec![Term::var(0), Term::var(1)]);
        let g2 = b.apply_goal(&g);
        assert_eq!(g2, Goal::atom("task", vec![Term::sym("w1"), Term::var(1)]));
    }

    #[test]
    fn ground_terms_resolve_to_themselves() {
        let b = Bindings::new();
        assert_eq!(b.resolve(Term::int(5)), Term::int(5));
        assert_eq!(b.resolve(Term::sym("c")), Term::sym("c"));
    }
}
