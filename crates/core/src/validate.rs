//! Static validation: arity consistency, base/derived separation, safety.
//!
//! TD is a *safe* language (§4 of the paper): execution never invents new
//! constants, so the active domain is fixed by the program and the initial
//! database. Safety is enforced here syntactically through range restriction:
//! every variable in a rule head must occur somewhere in the body in a
//! position that can bind it (an atom test, a call, an `ins`/`del` argument —
//! which itself must be bound at runtime — or the output of an arithmetic
//! builtin).

use crate::error::{CoreError, CoreResult};
use crate::goal::Goal;
use crate::program::Program;
use crate::term::{Term, Var};
use std::collections::{HashMap, HashSet};

/// Validate a whole program. Returns the first error found.
pub fn validate(p: &Program) -> CoreResult<()> {
    check_arity_consistency(p)?;
    for rule in p.rules() {
        // Heads must be derived predicates, not base relations.
        if p.is_base(rule.head.pred) {
            return Err(CoreError::HeadIsBase {
                pred: rule.head.pred,
            });
        }
        check_goal(p, &rule.body)?;
    }
    Ok(())
}

/// Lint: rules whose head variables do not occur in the body at all. Such
/// variables can only be useful as pure input parameters (the caller must
/// bind them); if the caller doesn't, execution raises an instantiation
/// fault or returns an unconstrained answer. This is reported as a lint
/// rather than an error because the paper's process style legitimately uses
/// parameter-only heads (e.g. a counter process `czero(C) <- halted`).
pub fn unsafe_rules(p: &Program) -> Vec<CoreError> {
    let mut out = Vec::new();
    for rule in p.rules() {
        if let Err(e) = check_safety(rule, p) {
            out.push(e);
        }
    }
    out
}

/// Validate a standalone goal (e.g. a query typed at the CLI) against a
/// program.
pub fn validate_goal(p: &Program, goal: &Goal) -> CoreResult<()> {
    check_goal(p, goal)
}

fn check_arity_consistency(p: &Program) -> CoreResult<()> {
    // A name may not be used with two different arities across base
    // declarations and rule heads; mixed-arity *references* are caught by
    // UnknownPredicate in check_goal.
    let mut seen: HashMap<crate::symbol::Symbol, u32> = HashMap::new();
    for pred in p.base_preds() {
        if let Some(&a) = seen.get(&pred.name) {
            if a != pred.arity {
                return Err(CoreError::ArityMismatch {
                    name: pred.name,
                    expected: a,
                    found: pred.arity,
                });
            }
        }
        seen.insert(pred.name, pred.arity);
    }
    for r in p.rules() {
        let pred = r.head.pred;
        if let Some(&a) = seen.get(&pred.name) {
            if a != pred.arity {
                return Err(CoreError::ArityMismatch {
                    name: pred.name,
                    expected: a,
                    found: pred.arity,
                });
            }
        }
        seen.insert(pred.name, pred.arity);
    }
    Ok(())
}

fn check_goal(p: &Program, goal: &Goal) -> CoreResult<()> {
    let mut err = None;
    goal.visit(&mut |g| {
        if err.is_some() {
            return;
        }
        match g {
            Goal::Atom(a) if !p.is_base(a.pred) && !p.is_derived(a.pred) => {
                err = Some(CoreError::UnknownPredicate { pred: a.pred });
            }
            Goal::NotAtom(a) if !p.is_base(a.pred) => {
                err = Some(CoreError::NegationOnNonBase { pred: a.pred });
            }
            Goal::Ins(a) | Goal::Del(a) if p.is_event(a.pred) => {
                err = Some(CoreError::UpdateOnEvent { pred: a.pred });
            }
            Goal::Ins(a) | Goal::Del(a) if !p.is_base(a.pred) => {
                err = Some(CoreError::UpdateOnNonBase { pred: a.pred });
            }
            Goal::Builtin(b, ts) if ts.len() != b.arity() => {
                err = Some(CoreError::BuiltinArity {
                    op: b.op_str(),
                    expected: b.arity(),
                    found: ts.len(),
                });
            }
            _ => {}
        }
    });
    match err {
        Some(e) => Err(e),
        None => Ok(()),
    }
}

/// Collect the variables occurring anywhere in a goal's atoms, updates or
/// builtins. Range restriction demands every head variable occur here: a
/// head variable absent from the body could never be bound by execution nor
/// supplied meaningfully by a caller. Occurrence in a comparison or
/// arithmetic *input* position is allowed — such variables are input
/// parameters bound by the caller (e.g. `withdraw(Acct, Amt)` with
/// `Bal >= Amt`); if a caller fails to bind them, the engine raises an
/// instantiation fault at runtime.
fn binding_vars(goal: &Goal, out: &mut HashSet<Var>) {
    goal.visit(&mut |g| match g {
        Goal::Atom(a) | Goal::Ins(a) | Goal::Del(a) | Goal::NotAtom(a) => {
            for v in a.vars() {
                out.insert(v);
            }
        }
        Goal::Builtin(_, ts) => {
            for v in ts.iter().filter_map(Term::as_var) {
                out.insert(v);
            }
        }
        _ => {}
    });
}

fn check_safety(rule: &crate::rule::Rule, _p: &Program) -> CoreResult<()> {
    let mut bound = HashSet::new();
    binding_vars(&rule.body, &mut bound);
    for v in rule.head.vars() {
        if !bound.contains(&v) {
            let name = rule
                .var_names
                .get(v.0 as usize)
                .copied()
                .unwrap_or_else(|| crate::symbol::Symbol::intern(&format!("_V{}", v.0)));
            return Err(CoreError::UnsafeHeadVar {
                pred: rule.head.pred,
                var: name,
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::{Atom, Pred};
    use crate::goal::Builtin;
    use crate::program::Program;

    #[test]
    fn head_on_base_pred_rejected() {
        let err = Program::builder()
            .base_pred("p", 0)
            .rule_parts(Atom::prop("p"), Goal::True)
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CoreError::HeadIsBase {
                pred: Pred::new("p", 0)
            }
        );
    }

    #[test]
    fn update_on_derived_pred_rejected() {
        let err = Program::builder()
            .rule_parts(Atom::prop("q"), Goal::True)
            .rule_parts(Atom::prop("r"), Goal::ins("q", vec![]))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CoreError::UpdateOnNonBase {
                pred: Pred::new("q", 0)
            }
        );
    }

    #[test]
    fn update_on_event_relation_rejected() {
        // Event relations read like base relations but are append-only:
        // `ins`/`del` from a transaction body is a validation error.
        let err = Program::builder()
            .event_pred("sample", 1)
            .rule_parts(
                Atom::prop("r"),
                Goal::ins("sample", vec![Term::var(0), Term::var(1)]),
            )
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CoreError::UpdateOnEvent {
                pred: Pred::new("sample", 2)
            }
        );
        // Reading the stored form (timestamp column explicit) is fine.
        let ok = Program::builder()
            .event_pred("sample", 1)
            .rule_parts(
                Atom::prop("r"),
                Goal::atom("sample", vec![Term::var(0), Term::var(1)]),
            )
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn unknown_predicate_rejected() {
        let err = Program::builder()
            .rule_parts(Atom::prop("r"), Goal::prop("mystery"))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CoreError::UnknownPredicate {
                pred: Pred::new("mystery", 0)
            }
        );
    }

    #[test]
    fn negation_requires_base() {
        let err = Program::builder()
            .rule_parts(Atom::prop("q"), Goal::True)
            .rule_parts(Atom::prop("r"), Goal::NotAtom(Atom::prop("q")))
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CoreError::NegationOnNonBase {
                pred: Pred::new("q", 0)
            }
        );
    }

    #[test]
    fn unsafe_head_var_reported_by_lint_not_build() {
        let p = Program::builder()
            .base_pred("p", 0)
            .rule_parts(Atom::new("r", vec![Term::var(0)]), Goal::prop("p"))
            .build()
            .expect("parameter-only heads are legal");
        let lints = unsafe_rules(&p);
        assert_eq!(lints.len(), 1);
        assert!(matches!(lints[0], CoreError::UnsafeHeadVar { .. }));
    }

    #[test]
    fn head_var_bound_by_update_arg_is_safe() {
        // `r(X) <- del.p(X)` is range-restricted: X must be bound by the
        // caller for del to execute, and the atom position counts.
        let ok = Program::builder()
            .base_pred("p", 1)
            .rule_parts(
                Atom::new("r", vec![Term::var(0)]),
                Goal::del("p", vec![Term::var(0)]),
            )
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn arity_mismatch_between_decl_and_head() {
        let err = Program::builder()
            .base_pred("p", 2)
            .rule_parts(Atom::new("p", vec![Term::var(0)]), Goal::prop("q"))
            .build()
            .unwrap_err();
        assert!(matches!(err, CoreError::ArityMismatch { .. }));
    }

    #[test]
    fn arith_output_binds_head_var() {
        let ok = Program::builder()
            .base_pred("p", 1)
            .rule_parts(
                Atom::new("r", vec![Term::var(1)]),
                Goal::seq(vec![
                    Goal::atom("p", vec![Term::var(0)]),
                    Goal::Builtin(Builtin::Add, vec![Term::var(0), Term::int(1), Term::var(1)]),
                ]),
            )
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn comparison_occurrence_satisfies_range_restriction() {
        // `r(Y) <- p(X) * X < Y` is accepted: Y is an input parameter the
        // caller must bind (runtime instantiation faults catch misuse).
        let ok = Program::builder()
            .base_pred("p", 1)
            .rule_parts(
                Atom::new("r", vec![Term::var(1)]),
                Goal::seq(vec![
                    Goal::atom("p", vec![Term::var(0)]),
                    Goal::Builtin(Builtin::Lt, vec![Term::var(0), Term::var(1)]),
                ]),
            )
            .build();
        assert!(ok.is_ok());
    }

    #[test]
    fn builtin_arity_checked() {
        let err = Program::builder()
            .rule_parts(
                Atom::prop("r"),
                Goal::Builtin(Builtin::Lt, vec![Term::int(1)]),
            )
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            CoreError::BuiltinArity {
                op: "<",
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn validate_goal_checks_unknown_preds() {
        let p = Program::builder().base_pred("p", 0).build().unwrap();
        assert!(validate_goal(&p, &Goal::prop("p")).is_ok());
        assert!(validate_goal(&p, &Goal::prop("zz")).is_err());
    }
}
