//! Source-to-source transformations: goal normalization and predicate
//! inlining.
//!
//! These rewrites preserve *executability and final states* under TD's
//! all-or-nothing semantics, and exist for two reasons: the engine runs
//! measurably faster on normalized goals (fewer nodes, fewer choicepoints),
//! and the equivalences themselves are part of the language's algebra
//! (\[17, 20\]) — the property-based tests in `tests/semantics_properties.rs`
//! and here validate the implementation against them.
//!
//! Key laws used by [`simplify`]:
//!
//! * `⊗`/`|` are associative with unit `()` (flattening, unit pruning);
//! * a composition containing `fail` is `fail` — **because transactions
//!   are all-or-nothing**: every part of the goal must complete for any
//!   part to commit;
//! * `or` is angelic choice: failing branches are dropped;
//! * `⊙` is idempotent, `⊙()` = `()`, and `⊙a` = `a` for a single
//!   elementary action (one action is already atomic).

use crate::atom::Atom;
use crate::goal::Goal;
use crate::program::Program;
use crate::rule::Rule;
use crate::term::{Term, Var};
use std::collections::HashMap;

/// Normalize a goal by the algebraic laws above. Idempotent.
pub fn simplify(goal: &Goal) -> Goal {
    match goal {
        Goal::Seq(gs) => {
            let parts: Vec<Goal> = gs.iter().map(simplify).collect();
            if parts.iter().any(|g| matches!(g, Goal::Fail)) {
                return Goal::Fail;
            }
            Goal::seq(parts)
        }
        Goal::Par(gs) => {
            let parts: Vec<Goal> = gs.iter().map(simplify).collect();
            if parts.iter().any(|g| matches!(g, Goal::Fail)) {
                return Goal::Fail;
            }
            Goal::par(parts)
        }
        Goal::Choice(gs) => {
            let mut parts: Vec<Goal> = Vec::new();
            for g in gs {
                let s = simplify(g);
                match s {
                    Goal::Fail => {}
                    // or is associative: flatten nested choices.
                    Goal::Choice(inner) => parts.extend(inner),
                    other => parts.push(other),
                }
            }
            Goal::choice(parts)
        }
        Goal::Iso(g) => {
            let inner = simplify(g);
            match inner {
                Goal::True => Goal::True,
                Goal::Fail => Goal::Fail,
                // ⊙⊙a = ⊙a
                Goal::Iso(i) => Goal::Iso(i),
                // single elementary actions are already atomic
                a @ (Goal::Atom(_)
                | Goal::NotAtom(_)
                | Goal::Ins(_)
                | Goal::Del(_)
                | Goal::Builtin(..)) => a,
                other => Goal::iso(other),
            }
        }
        other => other.clone(),
    }
}

/// Normalize every rule body of a program.
pub fn simplify_program(p: &Program) -> Program {
    let mut b = Program::builder();
    for pred in p.base_preds() {
        b = b.base_pred(pred.name.as_str(), pred.arity);
    }
    for r in p.rules() {
        b = b.rule(Rule::with_var_names(
            r.head.clone(),
            simplify(&r.body),
            r.var_names.clone(),
        ));
    }
    b.build_unchecked()
}

/// Inline calls to predicates that are (a) non-recursive, (b) defined by a
/// single rule, and (c) have a head of distinct variables. Iterates to a
/// fixpoint; the result has the same executability and final states.
///
/// Inlining preserves the semantics because unfolding is exactly what the
/// engine does at run time — the transformation just does it once, ahead
/// of time (and is therefore also a worked example of the equivalence of
/// the declarative and procedural readings).
pub fn inline_once(p: &Program) -> Program {
    // Identify inlinable predicates.
    let graph = crate::analysis::DepGraph::of(p);
    let recursive = graph.recursive_preds();
    let mut inlinable: HashMap<crate::atom::Pred, &Rule> = HashMap::new();
    for pred in p.derived_preds() {
        if recursive.contains(&pred) {
            continue;
        }
        let rules = p.rules_for(pred);
        if rules.len() != 1 {
            continue;
        }
        let rule = p.rule(rules[0]);
        // Head must be distinct variables.
        let mut seen = Vec::new();
        let distinct_vars = rule.head.args.iter().all(|t| match t {
            Term::Var(v) => {
                if seen.contains(v) {
                    false
                } else {
                    seen.push(*v);
                    true
                }
            }
            Term::Val(_) => false,
        });
        if distinct_vars {
            inlinable.insert(pred, rule);
        }
    }

    let mut b = Program::builder();
    for pred in p.base_preds() {
        b = b.base_pred(pred.name.as_str(), pred.arity);
    }
    for r in p.rules() {
        // Don't emit rules for predicates being inlined away *unless* they
        // are still needed (conservatively keep them: dead rules are
        // harmless; a separate dead-code pass could drop them).
        let mut next_var = r.num_vars();
        let body = inline_goal(&r.body, &inlinable, &mut next_var);
        let mut names = r.var_names.clone();
        while (names.len() as u32) < next_var {
            names.push(crate::symbol::Symbol::intern(&format!("_I{}", names.len())));
        }
        b = b.rule(Rule::with_var_names(r.head.clone(), body, names));
    }
    b.build_unchecked()
}

fn inline_goal(
    goal: &Goal,
    inlinable: &HashMap<crate::atom::Pred, &Rule>,
    next_var: &mut u32,
) -> Goal {
    match goal {
        Goal::Atom(a) => match inlinable.get(&a.pred) {
            Some(rule) if !call_is_self(a, rule) => {
                // Map head vars to call args; fresh ids for body locals.
                let mut map: HashMap<Var, Term> = HashMap::new();
                for (h, actual) in rule.head.args.iter().zip(&a.args) {
                    let Term::Var(v) = h else {
                        unreachable!("checked distinct vars")
                    };
                    map.insert(*v, *actual);
                }
                let body = rule.body.map_terms(&mut |t| match t {
                    Term::Var(v) => *map.entry(v).or_insert_with(|| {
                        let id = *next_var;
                        *next_var += 1;
                        Term::var(id)
                    }),
                    other => other,
                });
                body
            }
            _ => goal.clone(),
        },
        Goal::Seq(gs) => Goal::seq(
            gs.iter()
                .map(|g| inline_goal(g, inlinable, next_var))
                .collect(),
        ),
        Goal::Par(gs) => Goal::par(
            gs.iter()
                .map(|g| inline_goal(g, inlinable, next_var))
                .collect(),
        ),
        Goal::Choice(gs) => Goal::choice(
            gs.iter()
                .map(|g| inline_goal(g, inlinable, next_var))
                .collect(),
        ),
        Goal::Iso(g) => Goal::iso(inline_goal(g, inlinable, next_var)),
        other => other.clone(),
    }
}

fn call_is_self(atom: &Atom, rule: &Rule) -> bool {
    atom.pred == rule.head.pred && {
        // Prevent inlining a predicate into its own defining rule (cannot
        // happen for non-recursive predicates, but guard anyway).
        false
    }
}

/// Drop rules whose head predicate is unreachable from `roots` in the
/// dependency graph. Complements [`inline`]: after inlining, the inlined
/// predicates' rules become dead for goals that no longer mention them.
pub fn eliminate_dead_rules(p: &Program, roots: &[crate::atom::Pred]) -> Program {
    use std::collections::HashSet;
    let graph = crate::analysis::DepGraph::of(p);
    let mut live: HashSet<crate::atom::Pred> = HashSet::new();
    let mut stack: Vec<crate::atom::Pred> = roots.to_vec();
    while let Some(q) = stack.pop() {
        if live.insert(q) {
            stack.extend(graph.callees(q));
        }
    }
    let mut b = Program::builder();
    for pred in p.base_preds() {
        b = b.base_pred(pred.name.as_str(), pred.arity);
    }
    for r in p.rules() {
        if live.contains(&r.head.pred) {
            b = b.rule(r.clone());
        }
    }
    b.build_unchecked()
}

/// Predicates a goal mentions (for use as `eliminate_dead_rules` roots).
pub fn goal_preds(goal: &Goal) -> Vec<crate::atom::Pred> {
    let mut out = Vec::new();
    goal.visit(&mut |g| {
        if let Goal::Atom(a) = g {
            if !out.contains(&a.pred) {
                out.push(a.pred);
            }
        }
    });
    out
}

/// Inline to a fixpoint (bounded by the number of derived predicates).
pub fn inline(p: &Program) -> Program {
    let mut cur = p.clone();
    for _ in 0..p.derived_preds().count() + 1 {
        let next = inline_once(&cur);
        if next.to_source() == cur.to_source() {
            return next;
        }
        cur = next;
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Pred;

    fn a(name: &str) -> Goal {
        Goal::prop(name)
    }

    #[test]
    fn fail_propagates_through_compositions() {
        assert_eq!(simplify(&Goal::seq(vec![a("p"), Goal::Fail])), Goal::Fail);
        assert_eq!(simplify(&Goal::par(vec![Goal::Fail, a("p")])), Goal::Fail);
        assert_eq!(simplify(&Goal::iso(Goal::Fail)), Goal::Fail);
    }

    #[test]
    fn choice_drops_failing_branches() {
        let g = Goal::choice(vec![Goal::Fail, a("p"), Goal::Fail]);
        assert_eq!(simplify(&g), a("p"));
        assert_eq!(
            simplify(&Goal::choice(vec![Goal::Fail, Goal::Fail])),
            Goal::Fail
        );
    }

    #[test]
    fn nested_choice_flattens() {
        let g = Goal::Choice(vec![a("p"), Goal::Choice(vec![a("q"), a("r")])]);
        assert_eq!(simplify(&g), Goal::Choice(vec![a("p"), a("q"), a("r")]));
    }

    #[test]
    fn iso_of_elementary_action_is_dropped() {
        assert_eq!(
            simplify(&Goal::iso(Goal::ins("t", vec![]))),
            Goal::ins("t", vec![])
        );
        assert_eq!(simplify(&Goal::iso(Goal::True)), Goal::True);
        let composite = Goal::seq(vec![a("p"), a("q")]);
        assert_eq!(
            simplify(&Goal::iso(composite.clone())),
            Goal::iso(composite)
        );
    }

    #[test]
    fn iso_is_idempotent_under_simplify() {
        let g = Goal::iso(Goal::iso(Goal::seq(vec![a("p"), a("q")])));
        let s = simplify(&g);
        assert_eq!(s, Goal::iso(Goal::seq(vec![a("p"), a("q")])));
        assert_eq!(simplify(&s), s);
    }

    #[test]
    fn simplify_is_idempotent_on_a_mixed_goal() {
        let g = Goal::seq(vec![
            Goal::choice(vec![Goal::Fail, Goal::iso(a("p"))]),
            Goal::True,
            Goal::par(vec![a("q"), Goal::seq(vec![a("r"), Goal::True])]),
        ]);
        let once = simplify(&g);
        assert_eq!(simplify(&once), once);
        assert_eq!(
            once,
            Goal::seq(vec![a("p"), Goal::par(vec![a("q"), a("r")])])
        );
    }

    #[test]
    fn inline_single_rule_chain() {
        let p = Program::builder()
            .base_pred("t", 1)
            .rule_parts(
                Atom::new("outer", vec![Term::var(0)]),
                Goal::atom("inner", vec![Term::var(0)]),
            )
            .rule_parts(
                Atom::new("inner", vec![Term::var(0)]),
                Goal::ins("t", vec![Term::var(0)]),
            )
            .build()
            .unwrap();
        let q = inline(&p);
        let outer = q.rules_for(Pred::new("outer", 1));
        assert_eq!(
            q.rule(outer[0]).body,
            Goal::ins("t", vec![Term::var(0)]),
            "inner call replaced by its body"
        );
    }

    #[test]
    fn inline_renames_body_locals_apart() {
        // inner uses a local variable; inlining twice in one body must not
        // make the two copies share it.
        let p = Program::builder()
            .base_pred("t", 1)
            .base_pred("src", 1)
            .rule_parts(
                Atom::prop("outer"),
                Goal::seq(vec![Goal::prop("inner"), Goal::prop("inner")]),
            )
            .rule_parts(
                Atom::prop("inner"),
                Goal::seq(vec![
                    Goal::atom("src", vec![Term::var(0)]),
                    Goal::ins("t", vec![Term::var(0)]),
                ]),
            )
            .build()
            .unwrap();
        let q = inline(&p);
        let outer = q.rule(q.rules_for(Pred::new("outer", 0))[0]);
        let vars = outer.body.vars();
        assert_eq!(vars.len(), 2, "two fresh locals, not one shared: {}", outer);
    }

    #[test]
    fn recursive_predicates_not_inlined() {
        let p = Program::builder()
            .base_pred("t", 0)
            .rule_parts(
                Atom::prop("loop"),
                Goal::choice(vec![Goal::ins("t", vec![]), Goal::prop("loop")]),
            )
            .build()
            .unwrap();
        let q = inline(&p);
        let body = &q.rule(q.rules_for(Pred::new("loop", 0))[0]).body;
        let mut has_self_call = false;
        body.visit(&mut |g| {
            if let Goal::Atom(a) = g {
                if a.pred == Pred::new("loop", 0) {
                    has_self_call = true;
                }
            }
        });
        assert!(has_self_call, "recursion must survive inlining");
    }

    #[test]
    fn multi_rule_predicates_not_inlined() {
        let p = Program::builder()
            .base_pred("t", 1)
            .rule_parts(Atom::prop("pick"), Goal::ins("t", vec![Term::int(1)]))
            .rule_parts(Atom::prop("pick"), Goal::ins("t", vec![Term::int(2)]))
            .rule_parts(Atom::prop("main"), Goal::prop("pick"))
            .build()
            .unwrap();
        let q = inline(&p);
        let main = q.rule(q.rules_for(Pred::new("main", 0))[0]);
        assert_eq!(main.body, Goal::prop("pick"), "choice points preserved");
    }

    #[test]
    fn constants_in_call_args_substitute() {
        let p = Program::builder()
            .base_pred("t", 1)
            .rule_parts(Atom::prop("main"), Goal::atom("put", vec![Term::int(7)]))
            .rule_parts(
                Atom::new("put", vec![Term::var(0)]),
                Goal::ins("t", vec![Term::var(0)]),
            )
            .build()
            .unwrap();
        let q = inline(&p);
        let main = q.rule(q.rules_for(Pred::new("main", 0))[0]);
        assert_eq!(main.body, Goal::ins("t", vec![Term::int(7)]));
    }

    #[test]
    fn dead_rules_are_eliminated() {
        let p = Program::builder()
            .base_pred("t", 0)
            .rule_parts(Atom::prop("main"), Goal::prop("used"))
            .rule_parts(Atom::prop("used"), Goal::ins("t", vec![]))
            .rule_parts(Atom::prop("orphan"), Goal::ins("t", vec![]))
            .build()
            .unwrap();
        let q = eliminate_dead_rules(&p, &[Pred::new("main", 0)]);
        assert_eq!(q.len(), 2);
        assert!(q.is_derived(Pred::new("used", 0)));
        assert!(!q.is_derived(Pred::new("orphan", 0)));
    }

    #[test]
    fn inline_then_dce_shrinks_the_program() {
        let p = Program::builder()
            .base_pred("t", 1)
            .rule_parts(Atom::prop("main"), Goal::atom("helper", vec![Term::int(1)]))
            .rule_parts(
                Atom::new("helper", vec![Term::var(0)]),
                Goal::ins("t", vec![Term::var(0)]),
            )
            .build()
            .unwrap();
        let q = eliminate_dead_rules(&inline(&p), &[Pred::new("main", 0)]);
        assert_eq!(q.len(), 1, "helper inlined away and dropped");
        assert_eq!(
            q.rule(q.rules_for(Pred::new("main", 0))[0]).body,
            Goal::ins("t", vec![Term::int(1)])
        );
    }

    #[test]
    fn goal_preds_lists_mentions() {
        let g = Goal::seq(vec![Goal::prop("a"), Goal::atom("b", vec![Term::var(0)])]);
        let preds = goal_preds(&g);
        assert_eq!(preds, vec![Pred::new("a", 0), Pred::new("b", 1)]);
    }

    #[test]
    fn simplify_program_rewrites_bodies() {
        let p = Program::builder()
            .base_pred("t", 0)
            .rule_parts(
                Atom::prop("r"),
                Goal::seq(vec![Goal::True, Goal::ins("t", vec![]), Goal::True]),
            )
            .build()
            .unwrap();
        let q = simplify_program(&p);
        assert_eq!(q.rules()[0].body, Goal::ins("t", vec![]));
    }
}
