//! Programs (rulebases) and their builder.
//!
//! A [`Program`] is a rulebase plus the declaration of which predicates are
//! *base* (database) relations. The split matters semantically: base atoms
//! are tuple tests and `ins`/`del` targets; derived atoms are calls that
//! unfold into rule bodies. Construction goes through [`ProgramBuilder`],
//! which validates the program (see [`crate::validate`]).

use crate::atom::{Atom, Pred};
use crate::error::CoreResult;
use crate::goal::Goal;
use crate::rule::{Rule, RuleId};
use std::collections::{BTreeSet, HashMap};
use std::fmt;
use std::sync::Arc;

/// A validated TD program.
///
/// Programs are immutable once built and cheap to share (`Clone` is `Arc`
/// clones internally where it matters); the engine holds one per execution.
#[derive(Clone, Debug)]
pub struct Program {
    rules: Arc<Vec<Rule>>,
    by_head: Arc<HashMap<Pred, Vec<RuleId>>>,
    base: Arc<BTreeSet<Pred>>,
    events: Arc<BTreeSet<Pred>>,
}

impl Program {
    /// Start building a program.
    pub fn builder() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// All rules, in declaration order.
    pub fn rules(&self) -> &[Rule] {
        &self.rules
    }

    /// The rule with the given id.
    pub fn rule(&self, id: RuleId) -> &Rule {
        &self.rules[id.0 as usize]
    }

    /// Ids of the rules whose head predicate is `pred` (declaration order).
    pub fn rules_for(&self, pred: Pred) -> &[RuleId] {
        self.by_head.get(&pred).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The declared base (database) predicates.
    pub fn base_preds(&self) -> impl Iterator<Item = Pred> + '_ {
        self.base.iter().copied()
    }

    /// Is `pred` a declared base predicate?
    pub fn is_base(&self, pred: Pred) -> bool {
        self.base.contains(&pred)
    }

    /// Is `pred` defined by at least one rule?
    pub fn is_derived(&self, pred: Pred) -> bool {
        self.by_head.contains_key(&pred)
    }

    /// The declared event relations, as *stored* predicates: an
    /// `event e/n.` declaration stores tuples of arity `n + 1`, the extra
    /// (last) column being the ingestion timestamp. Event predicates are
    /// also base predicates — rules may read them — but they are
    /// append-only: `ins`/`del` on them is rejected by validation, and new
    /// tuples arrive only through the server's event-ingestion surface.
    pub fn event_preds(&self) -> impl Iterator<Item = Pred> + '_ {
        self.events.iter().copied()
    }

    /// Is `pred` (in stored form, timestamp column included) a declared
    /// event relation?
    pub fn is_event(&self, pred: Pred) -> bool {
        self.events.contains(&pred)
    }

    /// Does the program declare any event relations?
    pub fn has_events(&self) -> bool {
        !self.events.is_empty()
    }

    /// Look up a declared event relation by name, returning its stored
    /// predicate (declared arity + 1).
    pub fn event_by_name(&self, name: crate::symbol::Symbol) -> Option<Pred> {
        self.events.iter().copied().find(|p| p.name == name)
    }

    /// The derived predicates (those with rules), in arbitrary order.
    pub fn derived_preds(&self) -> impl Iterator<Item = Pred> + '_ {
        self.by_head.keys().copied()
    }

    /// Number of rules.
    pub fn len(&self) -> usize {
        self.rules.len()
    }

    /// True if the program has no rules.
    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Render the program in concrete syntax, parseable by `td-parser`.
    pub fn to_source(&self) -> String {
        let mut out = String::new();
        for p in self.events.iter() {
            out.push_str(&format!("event {}/{}.\n", p.name, p.arity - 1));
        }
        for p in self.base.iter() {
            if !self.events.contains(p) {
                out.push_str(&format!("base {}/{}.\n", p.name, p.arity));
            }
        }
        if !self.base.is_empty() && !self.rules.is_empty() {
            out.push('\n');
        }
        for r in self.rules.iter() {
            out.push_str(&r.to_string());
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_source())
    }
}

/// Builder for [`Program`]; validates on [`ProgramBuilder::build`].
#[derive(Default)]
pub struct ProgramBuilder {
    rules: Vec<Rule>,
    base: BTreeSet<Pred>,
    events: BTreeSet<Pred>,
}

impl ProgramBuilder {
    /// Declare a base (database) predicate.
    pub fn base_pred(mut self, name: &str, arity: u32) -> Self {
        self.base.insert(Pred::new(name, arity));
        self
    }

    /// Declare an event relation with its *declared* arity. The stored
    /// predicate gains a trailing timestamp column (`arity + 1`) and is
    /// registered as an append-only base relation.
    pub fn event_pred(mut self, name: &str, arity: u32) -> Self {
        let stored = Pred::new(name, arity + 1);
        self.base.insert(stored);
        self.events.insert(stored);
        self
    }

    /// Declare several base predicates at once.
    pub fn base_preds(mut self, preds: &[(&str, u32)]) -> Self {
        for (name, arity) in preds {
            self.base.insert(Pred::new(name, *arity));
        }
        self
    }

    /// Add a rule.
    pub fn rule(mut self, rule: Rule) -> Self {
        self.rules.push(rule);
        self
    }

    /// Add a rule from head and body, computing the variable table.
    pub fn rule_parts(self, head: Atom, body: Goal) -> Self {
        self.rule(Rule::new(head, body))
    }

    /// Add a fact-like rule `head <- ()` for a derived predicate.
    pub fn derived_fact(self, head: Atom) -> Self {
        self.rule(Rule::new(head, Goal::True))
    }

    /// Validate and build the program.
    pub fn build(self) -> CoreResult<Program> {
        let mut by_head: HashMap<Pred, Vec<RuleId>> = HashMap::new();
        for (i, r) in self.rules.iter().enumerate() {
            by_head
                .entry(r.head.pred)
                .or_default()
                .push(RuleId(u32::try_from(i).expect("rule count overflow")));
        }
        let program = Program {
            rules: Arc::new(self.rules),
            by_head: Arc::new(by_head),
            base: Arc::new(self.base),
            events: Arc::new(self.events),
        };
        crate::validate::validate(&program)?;
        Ok(program)
    }

    /// Build without validation. For tests that need to construct ill-formed
    /// programs, and for generated programs already known to be valid.
    pub fn build_unchecked(self) -> Program {
        let mut by_head: HashMap<Pred, Vec<RuleId>> = HashMap::new();
        for (i, r) in self.rules.iter().enumerate() {
            by_head
                .entry(r.head.pred)
                .or_default()
                .push(RuleId(u32::try_from(i).expect("rule count overflow")));
        }
        Program {
            rules: Arc::new(self.rules),
            by_head: Arc::new(by_head),
            base: Arc::new(self.base),
            events: Arc::new(self.events),
        }
    }
}

/// Collect every constant symbol/integer mentioned by the program (rules and
/// base declarations contribute nothing beyond rule terms). Together with the
/// initial database this forms the *active domain* — TD is safe: execution
/// never invents new constants (Theorem discussion, §4 of the paper).
pub fn program_constants(p: &Program) -> BTreeSet<crate::term::Value> {
    let mut out = BTreeSet::new();
    for r in p.rules() {
        let mut collect = |a: &Atom| {
            for t in &a.args {
                if let Some(v) = t.as_value() {
                    out.insert(v);
                }
            }
        };
        collect(&r.head);
        r.body.visit(&mut |g| match g {
            Goal::Atom(a) | Goal::NotAtom(a) | Goal::Ins(a) | Goal::Del(a) => {
                for t in &a.args {
                    if let Some(v) = t.as_value() {
                        out.insert(v);
                    }
                }
            }
            Goal::Builtin(_, ts) => {
                for t in ts {
                    if let Some(v) = t.as_value() {
                        out.insert(v);
                    }
                }
            }
            _ => {}
        });
    }
    out
}

/// Placeholder kept for API compatibility of the original scaffold.
#[doc(hidden)]
pub fn placeholder() {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Term;

    fn sample() -> Program {
        Program::builder()
            .base_pred("p", 1)
            .base_pred("q", 1)
            .rule_parts(
                Atom::new("r", vec![Term::var(0)]),
                Goal::seq(vec![
                    Goal::atom("p", vec![Term::var(0)]),
                    Goal::del("p", vec![Term::var(0)]),
                    Goal::ins("q", vec![Term::var(0)]),
                ]),
            )
            .build()
            .expect("valid program")
    }

    #[test]
    fn classification_of_predicates() {
        let p = sample();
        assert!(p.is_base(Pred::new("p", 1)));
        assert!(p.is_base(Pred::new("q", 1)));
        assert!(!p.is_base(Pred::new("r", 1)));
        assert!(p.is_derived(Pred::new("r", 1)));
        assert!(!p.is_derived(Pred::new("p", 1)));
    }

    #[test]
    fn rules_for_returns_declaration_order() {
        let p = Program::builder()
            .base_pred("b", 0)
            .rule_parts(Atom::prop("a"), Goal::prop("b"))
            .rule_parts(Atom::prop("a"), Goal::ins("b", vec![]))
            .build()
            .unwrap();
        let ids = p.rules_for(Pred::new("a", 0));
        assert_eq!(ids, &[RuleId(0), RuleId(1)]);
        assert_eq!(p.rule(ids[0]).body, Goal::prop("b"));
    }

    #[test]
    fn rules_for_unknown_pred_is_empty() {
        let p = sample();
        assert!(p.rules_for(Pred::new("nope", 7)).is_empty());
    }

    #[test]
    fn to_source_lists_base_then_rules() {
        let p = sample();
        let src = p.to_source();
        assert!(src.starts_with("base p/1.\nbase q/1.\n"));
        assert!(src.contains("r(X0) <- p(X0) * del.p(X0) * ins.q(X0).\n"));
    }

    #[test]
    fn program_constants_collects_all() {
        let p = Program::builder()
            .base_pred("p", 2)
            .rule_parts(
                Atom::prop("go"),
                Goal::seq(vec![
                    Goal::atom("p", vec![Term::sym("a"), Term::int(3)]),
                    Goal::Builtin(crate::goal::Builtin::Lt, vec![Term::int(3), Term::int(5)]),
                ]),
            )
            .build()
            .unwrap();
        let consts = program_constants(&p);
        assert!(consts.contains(&crate::term::Value::sym("a")));
        assert!(consts.contains(&crate::term::Value::Int(3)));
        assert!(consts.contains(&crate::term::Value::Int(5)));
        assert_eq!(consts.len(), 3);
    }

    #[test]
    fn event_preds_are_base_with_timestamp_column() {
        let p = Program::builder()
            .event_pred("sample", 1)
            .base_pred("done", 1)
            .build()
            .unwrap();
        let stored = Pred::new("sample", 2);
        assert!(p.is_event(stored));
        assert!(p.is_base(stored), "event relations are readable like base");
        assert!(p.has_events());
        assert_eq!(
            p.event_by_name(crate::symbol::Symbol::intern("sample")),
            Some(stored)
        );
        assert_eq!(p.event_preds().collect::<Vec<_>>(), vec![stored]);
        let src = p.to_source();
        assert!(src.contains("event sample/1.\n"), "got: {src}");
        assert!(src.contains("base done/1.\n"));
        assert!(!src.contains("base sample/2."), "stored form must not leak");
    }

    #[test]
    fn empty_program_builds() {
        let p = Program::builder().build().unwrap();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
    }
}
