//! Rules: named, parameterized transactions and processes.

use crate::atom::Atom;
use crate::goal::Goal;
use crate::symbol::Symbol;
use crate::term::{Term, Var};
use std::fmt;

/// Index of a rule within its [`crate::program::Program`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct RuleId(pub u32);

/// A TD rule `head <- body`.
///
/// Variables inside a rule are *rule-local*: they are indices
/// `0..num_vars()` into [`Rule::var_names`]. The engine renames them apart
/// at unfold time by offsetting into a fresh runtime id range, so the same
/// rule can be active many times concurrently (each workflow instance gets
/// fresh variables).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Rule {
    pub head: Atom,
    pub body: Goal,
    /// Display names for the rule-local variables, indexed by [`Var`] id.
    pub var_names: Vec<Symbol>,
}

impl Rule {
    /// Build a rule, computing the variable-name table from the names
    /// already present. Intended for tests and programmatic construction;
    /// the parser builds the table itself.
    pub fn new(head: Atom, body: Goal) -> Rule {
        let mut max = 0u32;
        let mut track = |t: &Term| {
            if let Term::Var(Var(i)) = t {
                max = max.max(i + 1);
            }
        };
        for t in &head.args {
            track(t);
        }
        body.visit(&mut |g| match g {
            Goal::Atom(a) | Goal::NotAtom(a) | Goal::Ins(a) | Goal::Del(a) => {
                for t in &a.args {
                    track(t);
                }
            }
            Goal::Builtin(_, ts) => {
                for t in ts {
                    track(t);
                }
            }
            _ => {}
        });
        let var_names = (0..max).map(|i| Symbol::intern(&format!("X{i}"))).collect();
        Rule {
            head,
            body,
            var_names,
        }
    }

    /// With an explicit variable-name table (used by the parser).
    pub fn with_var_names(head: Atom, body: Goal, var_names: Vec<Symbol>) -> Rule {
        Rule {
            head,
            body,
            var_names,
        }
    }

    /// The number of distinct rule-local variables.
    pub fn num_vars(&self) -> u32 {
        u32::try_from(self.var_names.len()).expect("rule variable count overflow")
    }

    /// Rename every variable by adding `offset` to its id. Returns the
    /// (head, body) pair with fresh runtime variables.
    pub fn rename_apart(&self, offset: u32) -> (Atom, Goal) {
        let shift = |t: Term| match t {
            Term::Var(Var(i)) => Term::var(i + offset),
            other => other,
        };
        let head = Atom {
            pred: self.head.pred,
            args: self.head.args.iter().map(|t| shift(*t)).collect(),
        };
        let body = self.body.map_terms(&mut |t| shift(t));
        (head, body)
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Print with the source variable names where available.
        let named = |t: Term| -> String {
            match t {
                Term::Var(Var(i)) => self
                    .var_names
                    .get(i as usize)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| format!("_V{i}")),
                Term::Val(v) => v.to_string(),
            }
        };
        write!(f, "{}", self.head.pred.name)?;
        if !self.head.args.is_empty() {
            write!(f, "(")?;
            for (i, t) in self.head.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{}", named(*t))?;
            }
            write!(f, ")")?;
        }
        let rendered = render_goal_with_names(&self.body, &self.var_names);
        write!(f, " <- {rendered}.")
    }
}

/// Render a goal using a variable-name table (used for rule display and
/// program round-tripping).
pub fn render_goal_with_names(goal: &Goal, names: &[Symbol]) -> String {
    // Substitute each variable with a *symbolic marker value* carrying its
    // display name, then use the normal goal printer. Variable names in TD
    // source are capitalized, so the marker text is exactly the name.
    let g = goal.map_terms(&mut |t| match t {
        Term::Var(Var(i)) => match names.get(i as usize) {
            Some(s) => Term::sym(s.as_str()),
            None => Term::sym(&format!("_V{i}")),
        },
        other => other,
    });
    g.to_string()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_counts_vars_across_head_and_body() {
        let r = Rule::new(
            Atom::new("p", vec![Term::var(0)]),
            Goal::seq(vec![
                Goal::atom("q", vec![Term::var(0), Term::var(1)]),
                Goal::ins("r", vec![Term::var(2)]),
            ]),
        );
        assert_eq!(r.num_vars(), 3);
    }

    #[test]
    fn rename_apart_offsets_all_vars() {
        let r = Rule::new(
            Atom::new("p", vec![Term::var(0)]),
            Goal::atom("q", vec![Term::var(0), Term::var(1)]),
        );
        let (h, b) = r.rename_apart(100);
        assert_eq!(h.args, vec![Term::var(100)]);
        assert_eq!(b, Goal::atom("q", vec![Term::var(100), Term::var(101)]));
    }

    #[test]
    fn rename_apart_zero_is_identity() {
        let r = Rule::new(Atom::prop("p"), Goal::atom("q", vec![Term::var(0)]));
        let (h, b) = r.rename_apart(0);
        assert_eq!(h, r.head);
        assert_eq!(b, r.body);
    }

    #[test]
    fn display_uses_var_names() {
        let r = Rule::with_var_names(
            Atom::new("withdraw", vec![Term::var(0), Term::var(1)]),
            Goal::seq(vec![
                Goal::atom("balance", vec![Term::var(0), Term::var(2)]),
                Goal::del("balance", vec![Term::var(0), Term::var(2)]),
            ]),
            vec![
                Symbol::intern("Amt"),
                Symbol::intern("Acct"),
                Symbol::intern("Bal"),
            ],
        );
        let s = r.to_string();
        assert_eq!(
            s,
            "withdraw(Amt, Acct) <- balance(Amt, Bal) * del.balance(Amt, Bal)."
        );
    }

    #[test]
    fn constants_survive_rename() {
        let r = Rule::new(
            Atom::prop("p"),
            Goal::atom("q", vec![Term::sym("c"), Term::var(0)]),
        );
        let (_, b) = r.rename_apart(7);
        assert_eq!(b, Goal::atom("q", vec![Term::sym("c"), Term::var(7)]));
    }
}
