//! Program analysis: dependency graphs, recursion, call positions.
//!
//! The paper's complexity results (§4–§5) hinge on *which* modeling features
//! a program uses: concurrent composition, recursion, recursion through
//! concurrent composition (unbounded process creation, Example 3.2), and
//! tail recursion (iteration, the genome protocol loop of \[26\]). This module
//! computes those facts; [`crate::fragment`] turns them into the paper's
//! sublanguage classification.

use crate::atom::Pred;
use crate::goal::Goal;
use crate::program::Program;
use std::collections::{HashMap, HashSet};

/// Where a call occurs inside a rule body.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct CallSite {
    /// The callee.
    pub pred: Pred,
    /// The call is the *last* action of the body (tail position): the final
    /// conjunct of the top-level serial chain, possibly inside a `Choice`
    /// branch, but not inside `Par` or `Iso`.
    pub tail: bool,
    /// The call occurs (anywhere) under a concurrent composition.
    pub in_par: bool,
    /// The call occurs (anywhere) under an isolation block.
    pub in_iso: bool,
}

/// Collect the calls to *derived* predicates in `goal`, with position flags.
/// `p` decides which atoms are calls (derived) vs tuple tests (base).
pub fn call_sites(p: &Program, goal: &Goal) -> Vec<CallSite> {
    let mut out = Vec::new();
    walk(p, goal, true, false, false, &mut out);
    out
}

fn walk(p: &Program, g: &Goal, tail: bool, in_par: bool, in_iso: bool, out: &mut Vec<CallSite>) {
    match g {
        Goal::Atom(a) if p.is_derived(a.pred) => {
            out.push(CallSite {
                pred: a.pred,
                tail: tail && !in_par && !in_iso,
                in_par,
                in_iso,
            });
        }
        Goal::Seq(gs) => {
            for (i, sub) in gs.iter().enumerate() {
                let last = i + 1 == gs.len();
                walk(p, sub, tail && last, in_par, in_iso, out);
            }
        }
        Goal::Par(gs) => {
            for sub in gs {
                walk(p, sub, false, true, in_iso, out);
            }
        }
        Goal::Iso(sub) => walk(p, sub, false, in_par, true, out),
        Goal::Choice(gs) => {
            for sub in gs {
                walk(p, sub, tail, in_par, in_iso, out);
            }
        }
        _ => {}
    }
}

/// The predicate dependency graph of a program: derived predicate → the
/// derived predicates its rules call.
#[derive(Clone, Debug)]
pub struct DepGraph {
    edges: HashMap<Pred, HashSet<Pred>>,
}

impl DepGraph {
    /// Build the graph from a program.
    pub fn of(p: &Program) -> DepGraph {
        let mut edges: HashMap<Pred, HashSet<Pred>> = HashMap::new();
        for pred in p.derived_preds() {
            edges.entry(pred).or_default();
        }
        for r in p.rules() {
            let entry = edges.entry(r.head.pred).or_default();
            for site in call_sites(p, &r.body) {
                entry.insert(site.pred);
            }
        }
        DepGraph { edges }
    }

    /// Successors of `pred` (empty for unknown predicates).
    pub fn callees(&self, pred: Pred) -> impl Iterator<Item = Pred> + '_ {
        self.edges
            .get(&pred)
            .into_iter()
            .flat_map(|s| s.iter().copied())
    }

    /// All nodes.
    pub fn preds(&self) -> impl Iterator<Item = Pred> + '_ {
        self.edges.keys().copied()
    }

    /// Strongly connected components (Tarjan), in reverse topological order.
    pub fn sccs(&self) -> Vec<Vec<Pred>> {
        let mut nodes: Vec<Pred> = self.edges.keys().copied().collect();
        nodes.sort(); // determinism
        let index_of: HashMap<Pred, usize> =
            nodes.iter().enumerate().map(|(i, p)| (*p, i)).collect();
        let n = nodes.len();
        let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (i, p) in nodes.iter().enumerate() {
            let mut cs: Vec<usize> = self
                .callees(*p)
                .filter_map(|q| index_of.get(&q).copied())
                .collect();
            cs.sort_unstable();
            adj[i] = cs;
        }

        // Iterative Tarjan.
        #[derive(Clone, Copy)]
        struct NodeState {
            index: i64,
            lowlink: i64,
            on_stack: bool,
        }
        let mut st = vec![
            NodeState {
                index: -1,
                lowlink: -1,
                on_stack: false
            };
            n
        ];
        let mut stack: Vec<usize> = Vec::new();
        let mut sccs: Vec<Vec<Pred>> = Vec::new();
        let mut counter: i64 = 0;

        for start in 0..n {
            if st[start].index != -1 {
                continue;
            }
            // Explicit DFS stack: (node, next-child-index).
            let mut dfs: Vec<(usize, usize)> = vec![(start, 0)];
            st[start].index = counter;
            st[start].lowlink = counter;
            counter += 1;
            st[start].on_stack = true;
            stack.push(start);

            while let Some(&mut (v, ref mut ci)) = dfs.last_mut() {
                if *ci < adj[v].len() {
                    let w = adj[v][*ci];
                    *ci += 1;
                    if st[w].index == -1 {
                        st[w].index = counter;
                        st[w].lowlink = counter;
                        counter += 1;
                        st[w].on_stack = true;
                        stack.push(w);
                        dfs.push((w, 0));
                    } else if st[w].on_stack {
                        st[v].lowlink = st[v].lowlink.min(st[w].index);
                    }
                } else {
                    dfs.pop();
                    if let Some(&mut (parent, _)) = dfs.last_mut() {
                        st[parent].lowlink = st[parent].lowlink.min(st[v].lowlink);
                    }
                    if st[v].lowlink == st[v].index {
                        let mut comp = Vec::new();
                        loop {
                            let w = stack.pop().expect("tarjan stack invariant");
                            st[w].on_stack = false;
                            comp.push(nodes[w]);
                            if w == v {
                                break;
                            }
                        }
                        comp.sort();
                        sccs.push(comp);
                    }
                }
            }
        }
        sccs
    }

    /// The set of *recursive* predicates: members of a non-trivial SCC, or
    /// with a self-loop.
    pub fn recursive_preds(&self) -> HashSet<Pred> {
        let mut out = HashSet::new();
        for comp in self.sccs() {
            if comp.len() > 1 {
                out.extend(comp);
            } else {
                let p = comp[0];
                if self.edges.get(&p).is_some_and(|s| s.contains(&p)) {
                    out.insert(p);
                }
            }
        }
        out
    }
}

/// Aggregate structural facts about a program + goal, consumed by the
/// fragment classifier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StructureFacts {
    /// Some rule body contains `|`.
    pub par_in_rules: bool,
    /// The top-level goal contains `|`.
    pub par_in_goal: bool,
    /// The program has at least one recursive predicate.
    pub recursive: bool,
    /// Some recursive call occurs under a `|` in a rule body — the
    /// unbounded-process-creation pattern of Example 3.2.
    pub recursion_through_par: bool,
    /// Some recursive call occurs under `iso`.
    pub recursion_through_iso: bool,
    /// Every recursive call is in tail position (vacuously true when there is
    /// no recursion).
    pub tail_recursion_only: bool,
    /// Maximum syntactic width of any `|` in the program or goal.
    pub max_par_width: usize,
}

/// Compute [`StructureFacts`] for `program` with entry `goal`.
pub fn structure_facts(program: &Program, goal: &Goal) -> StructureFacts {
    let graph = DepGraph::of(program);
    let recursive = graph.recursive_preds();

    let mut par_in_rules = false;
    let mut recursion_through_par = false;
    let mut recursion_through_iso = false;
    let mut tail_recursion_only = true;
    let mut max_par_width = 0usize;

    let mut track_width = |g: &Goal| {
        g.visit(&mut |sub| {
            if let Goal::Par(branches) = sub {
                max_par_width = max_par_width.max(branches.len());
            }
        });
    };

    for r in program.rules() {
        if r.body.has_par() {
            par_in_rules = true;
        }
        track_width(&r.body);
        for site in call_sites(program, &r.body) {
            // A call is recursive if callee and caller share an SCC; the
            // cheap and conservative test "callee is a recursive predicate
            // and reaches the caller" is approximated by: callee is
            // recursive and caller is in the same SCC. We use the precise
            // test below.
            let is_rec =
                recursive.contains(&site.pred) && in_same_scc(&graph, r.head.pred, site.pred);
            if is_rec {
                if site.in_par {
                    recursion_through_par = true;
                }
                if site.in_iso {
                    recursion_through_iso = true;
                }
                if !site.tail {
                    tail_recursion_only = false;
                }
            }
        }
    }
    track_width(goal);

    StructureFacts {
        par_in_rules,
        par_in_goal: goal.has_par(),
        recursive: !recursive.is_empty(),
        recursion_through_par,
        recursion_through_iso,
        tail_recursion_only,
        max_par_width,
    }
}

fn in_same_scc(graph: &DepGraph, a: Pred, b: Pred) -> bool {
    if a == b {
        return true;
    }
    for comp in graph.sccs() {
        if comp.contains(&a) && comp.contains(&b) {
            return true;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::term::Term;

    fn prog(rules: Vec<(Atom, Goal)>, base: &[(&str, u32)]) -> Program {
        let mut b = Program::builder().base_preds(base);
        for (h, g) in rules {
            b = b.rule_parts(h, g);
        }
        b.build_unchecked()
    }

    #[test]
    fn call_sites_distinguish_tail_positions() {
        let p = prog(
            vec![
                (
                    Atom::prop("loop"),
                    Goal::seq(vec![Goal::prop("step"), Goal::prop("loop")]),
                ),
                (Atom::prop("step"), Goal::ins("t", vec![])),
            ],
            &[("t", 0)],
        );
        let r = &p.rules()[0];
        let sites = call_sites(&p, &r.body);
        assert_eq!(sites.len(), 2);
        let step = sites
            .iter()
            .find(|s| s.pred == Pred::new("step", 0))
            .unwrap();
        let rec = sites
            .iter()
            .find(|s| s.pred == Pred::new("loop", 0))
            .unwrap();
        assert!(!step.tail);
        assert!(rec.tail);
    }

    #[test]
    fn calls_inside_par_are_not_tail() {
        let p = prog(
            vec![
                (
                    Atom::prop("sim"),
                    Goal::par(vec![Goal::prop("work"), Goal::prop("sim")]),
                ),
                (Atom::prop("work"), Goal::ins("t", vec![])),
            ],
            &[("t", 0)],
        );
        let sites = call_sites(&p, &p.rules()[0].body);
        for s in &sites {
            assert!(s.in_par);
            assert!(!s.tail);
        }
    }

    #[test]
    fn choice_branches_preserve_tailness() {
        let p = prog(
            vec![(
                Atom::prop("loop"),
                Goal::choice(vec![Goal::prop("loop"), Goal::ins("t", vec![])]),
            )],
            &[("t", 0)],
        );
        let sites = call_sites(&p, &p.rules()[0].body);
        assert_eq!(sites.len(), 1);
        assert!(sites[0].tail);
    }

    #[test]
    fn sccs_find_mutual_recursion() {
        let p = prog(
            vec![
                (Atom::prop("a"), Goal::prop("b")),
                (Atom::prop("b"), Goal::prop("a")),
                (Atom::prop("c"), Goal::prop("a")),
            ],
            &[],
        );
        let g = DepGraph::of(&p);
        let rec = g.recursive_preds();
        assert!(rec.contains(&Pred::new("a", 0)));
        assert!(rec.contains(&Pred::new("b", 0)));
        assert!(!rec.contains(&Pred::new("c", 0)));
    }

    #[test]
    fn self_loop_is_recursive() {
        let p = prog(vec![(Atom::prop("r"), Goal::prop("r"))], &[]);
        assert!(DepGraph::of(&p)
            .recursive_preds()
            .contains(&Pred::new("r", 0)));
    }

    #[test]
    fn nonrecursive_chain_has_no_recursive_preds() {
        let p = prog(
            vec![
                (Atom::prop("a"), Goal::prop("b")),
                (Atom::prop("b"), Goal::prop("c")),
                (Atom::prop("c"), Goal::ins("t", vec![])),
            ],
            &[("t", 0)],
        );
        assert!(DepGraph::of(&p).recursive_preds().is_empty());
    }

    #[test]
    fn facts_for_example_32_simulation_pattern() {
        // simulate <- workflow(W) | simulate   (unbounded process creation)
        let p = prog(
            vec![
                (
                    Atom::prop("simulate"),
                    Goal::par(vec![
                        Goal::atom("workflow", vec![Term::var(0)]),
                        Goal::prop("simulate"),
                    ]),
                ),
                (
                    Atom::new("workflow", vec![Term::var(0)]),
                    Goal::del("item", vec![Term::var(0)]),
                ),
            ],
            &[("item", 1)],
        );
        let f = structure_facts(&p, &Goal::prop("simulate"));
        assert!(f.recursive);
        assert!(f.recursion_through_par);
        assert!(f.par_in_rules);
        assert!(!f.tail_recursion_only);
        assert_eq!(f.max_par_width, 2);
    }

    #[test]
    fn facts_for_tail_recursive_iteration() {
        // loop <- step * loop  (bounded iteration; Example: repeat protocol)
        let p = prog(
            vec![
                (
                    Atom::prop("loop"),
                    Goal::seq(vec![Goal::prop("step"), Goal::prop("loop")]),
                ),
                (Atom::prop("step"), Goal::ins("t", vec![])),
            ],
            &[("t", 0)],
        );
        let f = structure_facts(&p, &Goal::prop("loop"));
        assert!(f.recursive);
        assert!(f.tail_recursion_only);
        assert!(!f.recursion_through_par);
        assert!(!f.par_in_rules);
        assert!(!f.par_in_goal);
    }

    #[test]
    fn goal_par_detected_separately_from_rules() {
        let p = prog(
            vec![(Atom::prop("t1"), Goal::ins("t", vec![]))],
            &[("t", 0)],
        );
        let goal = Goal::par(vec![Goal::prop("t1"), Goal::prop("t1")]);
        let f = structure_facts(&p, &goal);
        assert!(f.par_in_goal);
        assert!(!f.par_in_rules);
        assert!(!f.recursive);
    }

    #[test]
    fn non_tail_sequential_recursion_detected() {
        // r <- r * step  (head recursion; not tail)
        let p = prog(
            vec![
                (
                    Atom::prop("r"),
                    Goal::seq(vec![Goal::prop("r"), Goal::prop("step")]),
                ),
                (Atom::prop("step"), Goal::ins("t", vec![])),
            ],
            &[("t", 0)],
        );
        let f = structure_facts(&p, &Goal::prop("r"));
        assert!(f.recursive);
        assert!(!f.tail_recursion_only);
    }

    #[test]
    fn mutual_tail_recursion_counts_as_tail() {
        let p = prog(
            vec![
                (
                    Atom::prop("a"),
                    Goal::seq(vec![Goal::prop("s"), Goal::prop("b")]),
                ),
                (
                    Atom::prop("b"),
                    Goal::seq(vec![Goal::prop("s"), Goal::prop("a")]),
                ),
                (Atom::prop("s"), Goal::ins("t", vec![])),
            ],
            &[("t", 0)],
        );
        let f = structure_facts(&p, &Goal::prop("a"));
        assert!(f.recursive);
        assert!(f.tail_recursion_only);
    }

    #[test]
    fn call_to_recursive_pred_from_outside_scc_is_not_recursion() {
        // main <- loop (not itself recursive); loop <- loop.
        // The non-tail call main→loop must not break tail_recursion_only.
        let p = prog(
            vec![
                (
                    Atom::prop("main"),
                    Goal::seq(vec![Goal::prop("loop"), Goal::prop("after")]),
                ),
                (
                    Atom::prop("loop"),
                    Goal::choice(vec![Goal::prop("loop"), Goal::True]),
                ),
                (Atom::prop("after"), Goal::ins("t", vec![])),
            ],
            &[("t", 0)],
        );
        let f = structure_facts(&p, &Goal::prop("main"));
        assert!(f.recursive);
        assert!(f.tail_recursion_only, "main->loop is not a recursive call");
    }
}

#[cfg(test)]
mod scc_properties {
    use super::*;
    use crate::atom::Atom;
    use crate::goal::Goal;
    use crate::program::Program;
    use proptest::prelude::*;
    use std::collections::HashSet as StdSet;

    /// Build a program whose call graph is exactly `edges` over `n` props.
    fn graph_program(n: usize, edges: &StdSet<(usize, usize)>) -> Program {
        let mut b = Program::builder().base_pred("t", 0);
        for i in 0..n {
            let callees: Vec<Goal> = edges
                .iter()
                .filter(|(a, _)| *a == i)
                .map(|(_, c)| Goal::prop(&format!("g{c}")))
                .collect();
            let body = if callees.is_empty() {
                Goal::ins("t", vec![])
            } else {
                Goal::seq(callees)
            };
            b = b.rule_parts(Atom::prop(&format!("g{i}")), body);
        }
        b.build_unchecked()
    }

    /// Reference recursive-predicate computation: i is recursive iff there
    /// is a path i →⁺ i (DFS reachability).
    fn recursive_by_reachability(n: usize, edges: &StdSet<(usize, usize)>) -> StdSet<usize> {
        let reach = |from: usize| -> StdSet<usize> {
            let mut seen = StdSet::new();
            let mut stack: Vec<usize> = edges
                .iter()
                .filter(|(a, _)| *a == from)
                .map(|(_, b)| *b)
                .collect();
            while let Some(x) = stack.pop() {
                if seen.insert(x) {
                    stack.extend(edges.iter().filter(|(a, _)| *a == x).map(|(_, b)| *b));
                }
            }
            seen
        };
        (0..n).filter(|i| reach(*i).contains(i)).collect()
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn tarjan_recursive_preds_match_reachability(
            n in 1usize..8,
            raw_edges in proptest::collection::hash_set((0usize..8, 0usize..8), 0..20),
        ) {
            let edges: StdSet<(usize, usize)> = raw_edges
                .into_iter()
                .filter(|(a, b)| *a < n && *b < n)
                .collect();
            let p = graph_program(n, &edges);
            let got: StdSet<usize> = DepGraph::of(&p)
                .recursive_preds()
                .into_iter()
                .map(|pred| {
                    pred.name.as_str()[1..].parse::<usize>().expect("gN name")
                })
                .collect();
            let expected = recursive_by_reachability(n, &edges);
            prop_assert_eq!(got, expected);
        }

        #[test]
        fn sccs_partition_the_nodes(
            n in 1usize..8,
            raw_edges in proptest::collection::hash_set((0usize..8, 0usize..8), 0..20),
        ) {
            let edges: StdSet<(usize, usize)> = raw_edges
                .into_iter()
                .filter(|(a, b)| *a < n && *b < n)
                .collect();
            let p = graph_program(n, &edges);
            let sccs = DepGraph::of(&p).sccs();
            let mut seen = StdSet::new();
            for comp in &sccs {
                prop_assert!(!comp.is_empty());
                for pred in comp {
                    prop_assert!(seen.insert(*pred), "node in two SCCs");
                }
            }
            prop_assert_eq!(seen.len(), n);
        }
    }
}
