//! Error types for program construction and validation.

use crate::atom::Pred;
use crate::symbol::Symbol;
use std::fmt;

/// Result alias for core operations.
pub type CoreResult<T> = Result<T, CoreError>;

/// Errors raised while building or validating TD programs.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CoreError {
    /// The same predicate name is used with two different arities in a
    /// context where that is disallowed (base-predicate declarations).
    ArityMismatch {
        name: Symbol,
        expected: u32,
        found: u32,
    },
    /// A rule's head predicate is declared as a base predicate; base
    /// predicates may only be changed by `ins`/`del`.
    HeadIsBase { pred: Pred },
    /// `ins`/`del` applied to a predicate that is not a declared base
    /// predicate (e.g. a derived predicate or an undeclared name).
    UpdateOnNonBase { pred: Pred },
    /// `ins`/`del` applied to an event relation. Event relations are
    /// append-only: tuples arrive solely through the server's event
    /// ingestion surface, never from transaction bodies.
    UpdateOnEvent { pred: Pred },
    /// A trigger pattern leaf names a predicate that is not a declared
    /// event relation (the `pred` carries the *declared* arity as written
    /// in the pattern, without the timestamp column).
    NotAnEvent { pred: Pred },
    /// A trigger pattern has more leaves than the match automaton supports.
    PatternTooLarge { leaves: usize, max: usize },
    /// A `within` window bound must be a non-negative integer.
    NegativeWindow { bound: i64 },
    /// `not` applied to a non-base predicate.
    NegationOnNonBase { pred: Pred },
    /// An atom refers to a predicate that is neither base nor derived.
    UnknownPredicate { pred: Pred },
    /// A head variable does not occur in the rule body (range restriction /
    /// safety): such a rule could bind head arguments to arbitrary domain
    /// elements.
    UnsafeHeadVar { pred: Pred, var: Symbol },
    /// A builtin was constructed with the wrong number of arguments.
    BuiltinArity {
        op: &'static str,
        expected: usize,
        found: usize,
    },
}

impl fmt::Display for CoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CoreError::ArityMismatch {
                name,
                expected,
                found,
            } => write!(
                f,
                "predicate `{name}` used with arity {found}, but declared with arity {expected}"
            ),
            CoreError::HeadIsBase { pred } => write!(
                f,
                "rule head `{pred}` is a base predicate; base relations change only via ins/del"
            ),
            CoreError::UpdateOnNonBase { pred } => {
                write!(f, "ins/del applied to non-base predicate `{pred}`")
            }
            CoreError::UpdateOnEvent { pred } => write!(
                f,
                "ins/del applied to event relation `{pred}`; event relations \
                 are append-only and change only via event ingestion"
            ),
            CoreError::NotAnEvent { pred } => write!(
                f,
                "trigger pattern atom `{pred}` does not name a declared event \
                 relation"
            ),
            CoreError::PatternTooLarge { leaves, max } => write!(
                f,
                "trigger pattern has {leaves} event atoms; at most {max} are \
                 supported"
            ),
            CoreError::NegativeWindow { bound } => {
                write!(f, "`within` bound must be non-negative, found {bound}")
            }
            CoreError::NegationOnNonBase { pred } => {
                write!(f, "`not` applied to non-base predicate `{pred}`")
            }
            CoreError::UnknownPredicate { pred } => {
                write!(
                    f,
                    "predicate `{pred}` is neither a base relation nor defined by any rule"
                )
            }
            CoreError::UnsafeHeadVar { pred, var } => write!(
                f,
                "unsafe rule for `{pred}`: head variable `{var}` does not occur in the body"
            ),
            CoreError::BuiltinArity {
                op,
                expected,
                found,
            } => write!(
                f,
                "builtin `{op}` takes {expected} arguments, found {found}"
            ),
        }
    }
}

impl std::error::Error for CoreError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_readably() {
        let e = CoreError::UpdateOnNonBase {
            pred: Pred::new("workflow", 1),
        };
        assert_eq!(
            e.to_string(),
            "ins/del applied to non-base predicate `workflow/1`"
        );
        let e = CoreError::ArityMismatch {
            name: Symbol::intern("p"),
            expected: 2,
            found: 3,
        };
        assert!(e.to_string().contains("arity 3"));
        assert!(e.to_string().contains("arity 2"));
    }
}
