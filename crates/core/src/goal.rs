//! The goal AST: TD's process/transaction expressions.
//!
//! Concrete syntax used by `td-parser` and by `Display`:
//!
//! ```text
//! ()                  empty goal (unit; always succeeds, changes nothing)
//! fail                always fails
//! p(a, X)             atom: tuple test (base), call (derived), or builtin
//! not p(a, X)         absence test on a base predicate (extension; see below)
//! ins.p(a, b)         insert tuple
//! del.p(a, b)         delete tuple
//! a * b               serial composition  (the paper's ⊗)
//! a | b               concurrent composition
//! iso { a }           isolation           (the paper's ⊙)
//! { a or b }          explicit choice (disjunction)
//! X < Y, X <= Y, ...  comparison builtins
//! Z is X + Y          arithmetic builtins
//! ```
//!
//! Serial composition binds tighter than concurrent composition, so
//! `a * b | c * d` reads `(a * b) | (c * d)`, matching the paper's examples.
//!
//! `not p(t̄)` (a ground absence test on a base predicate) is a conservative
//! convenience extension: the paper's core TD is negation-free, and every use
//! in this repository can be rewritten with complementary presence tuples.
//! The fragment classifier treats it like a tuple test.

use crate::atom::Atom;
use crate::term::{Term, Var};
use std::fmt;

/// Comparison and arithmetic builtins.
///
/// These model the "elementary operations" slot of TD: the paper factors
/// elementary operations out of the complexity analysis and allows them to be
/// any black-box database interaction (\[20\]); the examples use comparisons
/// and arithmetic on account balances. All builtins are *tests*: they never
/// change the database. Arithmetic builtins require their input operands to
/// be ground at execution time.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Builtin {
    /// `X = Y` — unification.
    Eq,
    /// `X != Y` — disunification (both sides must be ground).
    Ne,
    /// `X < Y` (ground integers).
    Lt,
    /// `X <= Y` (ground integers).
    Le,
    /// `X > Y` (ground integers).
    Gt,
    /// `X >= Y` (ground integers).
    Ge,
    /// `Z is X + Y` — binds or checks `Z`.
    Add,
    /// `Z is X - Y`.
    Sub,
    /// `Z is X * Y`.
    Mul,
}

impl Builtin {
    /// The number of term arguments the builtin takes.
    pub fn arity(self) -> usize {
        match self {
            Builtin::Eq | Builtin::Ne | Builtin::Lt | Builtin::Le | Builtin::Gt | Builtin::Ge => 2,
            Builtin::Add | Builtin::Sub | Builtin::Mul => 3,
        }
    }

    /// Human-readable operator name.
    pub fn op_str(self) -> &'static str {
        match self {
            Builtin::Eq => "=",
            Builtin::Ne => "!=",
            Builtin::Lt => "<",
            Builtin::Le => "<=",
            Builtin::Gt => ">",
            Builtin::Ge => ">=",
            Builtin::Add => "+",
            Builtin::Sub => "-",
            Builtin::Mul => "*",
        }
    }
}

/// A TD goal (transaction/process expression).
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub enum Goal {
    /// The empty goal `()`: succeeds immediately on the current state.
    True,
    /// `fail`: no successful execution.
    Fail,
    /// An atom. Whether it is a tuple test (base predicate), a call (derived
    /// predicate) or ill-formed is decided against the program + schema.
    Atom(Atom),
    /// `not p(t̄)`: succeeds iff the (ground) tuple is absent from the
    /// database. Base predicates only.
    NotAtom(Atom),
    /// `ins.p(t̄)`: elementary insertion.
    Ins(Atom),
    /// `del.p(t̄)`: elementary deletion.
    Del(Atom),
    /// Comparison/arithmetic test.
    Builtin(Builtin, Vec<Term>),
    /// Serial composition `g₁ * g₂ * … * gₙ` (n ≥ 2 after normalization).
    Seq(Vec<Goal>),
    /// Concurrent composition `g₁ | g₂ | … | gₙ` (n ≥ 2 after normalization).
    Par(Vec<Goal>),
    /// Isolation `iso { g }`.
    Iso(Box<Goal>),
    /// Explicit choice `{ g₁ or g₂ or … }`: execute exactly one branch.
    Choice(Vec<Goal>),
}

impl Goal {
    /// Atom goal helper.
    pub fn atom(name: &str, args: Vec<Term>) -> Goal {
        Goal::Atom(Atom::new(name, args))
    }

    /// Propositional atom goal helper.
    pub fn prop(name: &str) -> Goal {
        Goal::Atom(Atom::prop(name))
    }

    /// Insertion goal helper.
    pub fn ins(name: &str, args: Vec<Term>) -> Goal {
        Goal::Ins(Atom::new(name, args))
    }

    /// Deletion goal helper.
    pub fn del(name: &str, args: Vec<Term>) -> Goal {
        Goal::Del(Atom::new(name, args))
    }

    /// Serial composition of `goals`, flattening nested `Seq`s and dropping
    /// `True` units. Returns `True` for an empty input and the sole goal for
    /// a singleton.
    pub fn seq(goals: Vec<Goal>) -> Goal {
        let mut out = Vec::with_capacity(goals.len());
        for g in goals {
            match g {
                Goal::True => {}
                Goal::Seq(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Goal::True,
            1 => out.pop().expect("len checked"),
            _ => Goal::Seq(out),
        }
    }

    /// Concurrent composition of `goals`, flattening nested `Par`s and
    /// dropping `True` units.
    pub fn par(goals: Vec<Goal>) -> Goal {
        let mut out = Vec::with_capacity(goals.len());
        for g in goals {
            match g {
                Goal::True => {}
                Goal::Par(inner) => out.extend(inner),
                other => out.push(other),
            }
        }
        match out.len() {
            0 => Goal::True,
            1 => out.pop().expect("len checked"),
            _ => Goal::Par(out),
        }
    }

    /// Isolated goal `iso { g }`.
    pub fn iso(g: Goal) -> Goal {
        Goal::Iso(Box::new(g))
    }

    /// Choice between `goals`. Empty choice is `Fail`; singleton is the goal.
    pub fn choice(goals: Vec<Goal>) -> Goal {
        match goals.len() {
            0 => Goal::Fail,
            1 => {
                let mut goals = goals;
                goals.pop().expect("len checked")
            }
            _ => Goal::Choice(goals),
        }
    }

    /// Visit every subgoal (pre-order), including `self`.
    pub fn visit<'a>(&'a self, f: &mut impl FnMut(&'a Goal)) {
        f(self);
        match self {
            Goal::Seq(gs) | Goal::Par(gs) | Goal::Choice(gs) => {
                for g in gs {
                    g.visit(f);
                }
            }
            Goal::Iso(g) => g.visit(f),
            _ => {}
        }
    }

    /// Collect the distinct variables occurring in the goal, in first-seen
    /// order.
    pub fn vars(&self) -> Vec<Var> {
        let mut seen = Vec::new();
        self.visit(&mut |g| {
            let mut push = |v: Var| {
                if !seen.contains(&v) {
                    seen.push(v);
                }
            };
            match g {
                Goal::Atom(a) | Goal::NotAtom(a) | Goal::Ins(a) | Goal::Del(a) => {
                    for v in a.vars() {
                        push(v);
                    }
                }
                Goal::Builtin(_, ts) => {
                    for v in ts.iter().filter_map(Term::as_var) {
                        push(v);
                    }
                }
                _ => {}
            }
        });
        seen
    }

    /// True iff the goal contains a concurrent composition anywhere.
    pub fn has_par(&self) -> bool {
        let mut found = false;
        self.visit(&mut |g| {
            if matches!(g, Goal::Par(_)) {
                found = true;
            }
        });
        found
    }

    /// True iff the goal contains an update (`ins`/`del`) anywhere.
    pub fn has_update(&self) -> bool {
        let mut found = false;
        self.visit(&mut |g| {
            if matches!(g, Goal::Ins(_) | Goal::Del(_)) {
                found = true;
            }
        });
        found
    }

    /// The number of AST nodes in the goal.
    pub fn size(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |_| n += 1);
        n
    }

    /// Apply `f` to every term in the goal, rebuilding it. Used for variable
    /// renaming and substitution application.
    pub fn map_terms(&self, f: &mut impl FnMut(Term) -> Term) -> Goal {
        let map_atom = |a: &Atom, f: &mut dyn FnMut(Term) -> Term| Atom {
            pred: a.pred,
            args: a.args.iter().map(|t| f(*t)).collect(),
        };
        match self {
            Goal::True => Goal::True,
            Goal::Fail => Goal::Fail,
            Goal::Atom(a) => Goal::Atom(map_atom(a, f)),
            Goal::NotAtom(a) => Goal::NotAtom(map_atom(a, f)),
            Goal::Ins(a) => Goal::Ins(map_atom(a, f)),
            Goal::Del(a) => Goal::Del(map_atom(a, f)),
            Goal::Builtin(b, ts) => Goal::Builtin(*b, ts.iter().map(|t| f(*t)).collect()),
            Goal::Seq(gs) => Goal::Seq(gs.iter().map(|g| g.map_terms(f)).collect()),
            Goal::Par(gs) => Goal::Par(gs.iter().map(|g| g.map_terms(f)).collect()),
            Goal::Iso(g) => Goal::Iso(Box::new(g.map_terms(f))),
            Goal::Choice(gs) => Goal::Choice(gs.iter().map(|g| g.map_terms(f)).collect()),
        }
    }
}

/// Precedence-aware printer: `*` binds tighter than `|`; `or` is only valid
/// inside braces; atoms/updates/iso are atomic.
fn fmt_prec(g: &Goal, f: &mut fmt::Formatter<'_>, prec: u8) -> fmt::Result {
    // prec: 0 = top/choice context, 1 = par context, 2 = seq context
    match g {
        Goal::True => write!(f, "()"),
        Goal::Fail => write!(f, "fail"),
        Goal::Atom(a) => write!(f, "{a}"),
        Goal::NotAtom(a) => write!(f, "not {a}"),
        Goal::Ins(a) => write!(f, "ins.{a}"),
        Goal::Del(a) => write!(f, "del.{a}"),
        Goal::Builtin(b, ts) => match b {
            Builtin::Add | Builtin::Sub | Builtin::Mul => {
                write!(f, "{} is {} {} {}", ts[2], ts[0], b.op_str(), ts[1])
            }
            _ => write!(f, "{} {} {}", ts[0], b.op_str(), ts[1]),
        },
        Goal::Seq(gs) => {
            let need_paren = prec > 2;
            if need_paren {
                write!(f, "(")?;
            }
            for (i, g) in gs.iter().enumerate() {
                if i > 0 {
                    write!(f, " * ")?;
                }
                fmt_prec(g, f, 3)?;
            }
            if need_paren {
                write!(f, ")")?;
            }
            Ok(())
        }
        Goal::Par(gs) => {
            let need_paren = prec > 1;
            if need_paren {
                write!(f, "(")?;
            }
            for (i, g) in gs.iter().enumerate() {
                if i > 0 {
                    write!(f, " | ")?;
                }
                fmt_prec(g, f, 2)?;
            }
            if need_paren {
                write!(f, ")")?;
            }
            Ok(())
        }
        Goal::Iso(g) => {
            write!(f, "iso {{ ")?;
            fmt_prec(g, f, 0)?;
            write!(f, " }}")
        }
        Goal::Choice(gs) => {
            write!(f, "{{ ")?;
            for (i, g) in gs.iter().enumerate() {
                if i > 0 {
                    write!(f, " or ")?;
                }
                fmt_prec(g, f, 1)?;
            }
            write!(f, " }}")
        }
    }
}

impl fmt::Display for Goal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt_prec(self, f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(name: &str) -> Goal {
        Goal::prop(name)
    }

    #[test]
    fn seq_flattens_and_drops_units() {
        let g = Goal::seq(vec![a("p"), Goal::True, Goal::seq(vec![a("q"), a("r")])]);
        assert_eq!(g, Goal::Seq(vec![a("p"), a("q"), a("r")]));
    }

    #[test]
    fn empty_seq_is_true_singleton_is_identity() {
        assert_eq!(Goal::seq(vec![]), Goal::True);
        assert_eq!(Goal::seq(vec![a("p")]), a("p"));
        assert_eq!(Goal::par(vec![]), Goal::True);
        assert_eq!(Goal::par(vec![a("p")]), a("p"));
    }

    #[test]
    fn par_flattens() {
        let g = Goal::par(vec![a("p"), Goal::par(vec![a("q"), a("r")])]);
        assert_eq!(g, Goal::Par(vec![a("p"), a("q"), a("r")]));
    }

    #[test]
    fn choice_edge_cases() {
        assert_eq!(Goal::choice(vec![]), Goal::Fail);
        assert_eq!(Goal::choice(vec![a("p")]), a("p"));
    }

    #[test]
    fn display_respects_precedence() {
        let g = Goal::par(vec![
            Goal::seq(vec![a("a"), a("b")]),
            Goal::seq(vec![a("c"), a("d")]),
        ]);
        assert_eq!(g.to_string(), "a * b | c * d");

        let g2 = Goal::seq(vec![Goal::par(vec![a("a"), a("b")]), a("c")]);
        assert_eq!(g2.to_string(), "(a | b) * c");
    }

    #[test]
    fn display_updates_iso_choice() {
        let g = Goal::seq(vec![
            Goal::ins("p", vec![Term::sym("x")]),
            Goal::iso(Goal::del("q", vec![])),
            Goal::choice(vec![a("r"), a("s")]),
        ]);
        assert_eq!(g.to_string(), "ins.p(x) * iso { del.q } * { r or s }");
    }

    #[test]
    fn vars_in_first_seen_order_without_dups() {
        let g = Goal::seq(vec![
            Goal::atom("p", vec![Term::var(2), Term::var(0)]),
            Goal::atom("q", vec![Term::var(0), Term::var(1)]),
        ]);
        assert_eq!(g.vars(), vec![Var(2), Var(0), Var(1)]);
    }

    #[test]
    fn has_par_and_update_probe_deeply() {
        let g = Goal::iso(Goal::seq(vec![a("p"), Goal::par(vec![a("q"), a("r")])]));
        assert!(g.has_par());
        assert!(!g.has_update());
        let h = Goal::choice(vec![a("p"), Goal::ins("q", vec![])]);
        assert!(h.has_update());
        assert!(!h.has_par());
    }

    #[test]
    fn map_terms_renames_vars() {
        let g = Goal::atom("p", vec![Term::var(0), Term::sym("c")]);
        let g2 = g.map_terms(&mut |t| match t {
            Term::Var(Var(i)) => Term::var(i + 10),
            other => other,
        });
        assert_eq!(g2, Goal::atom("p", vec![Term::var(10), Term::sym("c")]));
    }

    #[test]
    fn size_counts_nodes() {
        let g = Goal::seq(vec![a("p"), Goal::par(vec![a("q"), a("r")])]);
        // Seq + p + Par + q + r = 5
        assert_eq!(g.size(), 5);
    }

    #[test]
    fn builtin_display() {
        let g = Goal::Builtin(Builtin::Lt, vec![Term::var(0), Term::int(5)]);
        assert_eq!(g.to_string(), "_V0 < 5");
        let h = Goal::Builtin(Builtin::Sub, vec![Term::var(0), Term::int(1), Term::var(1)]);
        assert_eq!(h.to_string(), "_V1 is _V0 - 1");
    }
}
