//! # td-core — the Transaction Datalog language
//!
//! This crate defines the abstract syntax and static analysis of
//! *Transaction Datalog* (TD), the concurrent transactional extension of
//! Datalog introduced by Bonner (PODS'99, DBPL'97) and Bonner & Kifer
//! (JICSLP'96).
//!
//! TD extends classical Datalog with:
//!
//! * **elementary database operations** — tuple testing `p(t̄)`, tuple
//!   insertion `ins.p(t̄)` and tuple deletion `del.p(t̄)`;
//! * **serial composition** `a ⊗ b` — execute `a`, then `b`;
//! * **concurrent composition** `a | b` — interleave the executions of `a`
//!   and `b`, which communicate through the shared database;
//! * **isolation** `⊙a` — execute `a` atomically, without interference from
//!   concurrent siblings;
//! * **rules** `head ← body` — named, parameterized transactions and
//!   processes, with full Datalog recursion.
//!
//! The crate provides:
//!
//! * interned [`Symbol`]s and the term language ([`Term`], [`Value`]);
//! * predicate identities ([`Pred`]) and atoms ([`Atom`]);
//! * the goal AST ([`Goal`]) and rules/programs ([`Rule`], [`Program`]);
//! * unification and substitutions ([`unify`], [`subst`]);
//! * static analysis: predicate dependency graphs, recursion and
//!   tail-recursion detection, and the **fragment classifier**
//!   ([`fragment::Fragment`]) implementing the sublanguages whose complexity
//!   the paper maps (full TD, sequential TD, nonrecursive TD, fully bounded
//!   TD, …);
//! * validation (arity checking, base/derived separation) and safety lints;
//! * source-to-source transformations ([`transform`]): algebraic goal
//!   normalization and non-recursive predicate inlining.
//!
//! Execution lives in `td-engine`; the concrete syntax in `td-parser`.

pub mod analysis;
pub mod atom;
pub mod error;
pub mod event;
pub mod fragment;
pub mod goal;
pub mod program;
pub mod rule;
pub mod subst;
pub mod symbol;
pub mod term;
pub mod transform;
pub mod unify;
pub mod validate;

pub use atom::{Atom, Pred};
pub use error::{CoreError, CoreResult};
pub use event::{EventPattern, Trigger, MAX_PATTERN_LEAVES};
pub use fragment::{Fragment, FragmentReport};
pub use goal::{Builtin, Goal};
pub use program::{Program, ProgramBuilder};
pub use rule::{Rule, RuleId};
pub use subst::Bindings;
pub use symbol::Symbol;
pub use term::{Term, Value, Var};
