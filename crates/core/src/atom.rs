//! Predicates and atoms.

use crate::symbol::Symbol;
use crate::term::{Term, Value, Var};
use std::fmt;

/// A predicate identity: interned name plus arity.
///
/// TD distinguishes *base* predicates (stored in the database, targets of
/// `ins`/`del` and tuple tests) from *derived* predicates (defined by rules).
/// That classification lives in [`crate::program::Program`] and the database
/// schema; `Pred` itself is just the name.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Pred {
    pub name: Symbol,
    pub arity: u32,
}

impl Pred {
    /// Predicate with the given name and arity.
    pub fn new(name: &str, arity: u32) -> Pred {
        Pred {
            name: Symbol::intern(name),
            arity,
        }
    }
}

impl fmt::Display for Pred {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.name, self.arity)
    }
}

/// An atom: predicate applied to terms, e.g. `task(W, a1)`.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Atom {
    pub pred: Pred,
    pub args: Vec<Term>,
}

impl Atom {
    /// Construct an atom; the predicate arity is taken from `args.len()`.
    pub fn new(name: &str, args: Vec<Term>) -> Atom {
        let arity = u32::try_from(args.len()).expect("atom arity overflow");
        Atom {
            pred: Pred::new(name, arity),
            args,
        }
    }

    /// A zero-ary (propositional) atom.
    pub fn prop(name: &str) -> Atom {
        Atom::new(name, Vec::new())
    }

    /// True iff every argument is ground.
    pub fn is_ground(&self) -> bool {
        self.args.iter().all(Term::is_ground)
    }

    /// The ground argument values, if the atom is ground.
    pub fn ground_args(&self) -> Option<Vec<Value>> {
        self.args.iter().map(Term::as_value).collect()
    }

    /// Iterate over the variables occurring in the atom (with repeats).
    pub fn vars(&self) -> impl Iterator<Item = Var> + '_ {
        self.args.iter().filter_map(Term::as_var)
    }
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.pred.name)?;
        if !self.args.is_empty() {
            write!(f, "(")?;
            for (i, t) in self.args.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{t}")?;
            }
            write!(f, ")")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pred_identity_includes_arity() {
        assert_ne!(Pred::new("p", 1), Pred::new("p", 2));
        assert_eq!(Pred::new("p", 1), Pred::new("p", 1));
    }

    #[test]
    fn atom_arity_tracks_args() {
        let a = Atom::new("task", vec![Term::sym("w1"), Term::var(0)]);
        assert_eq!(a.pred.arity, 2);
        assert!(!a.is_ground());
        assert_eq!(a.vars().collect::<Vec<_>>(), vec![Var(0)]);
    }

    #[test]
    fn ground_args_only_when_ground() {
        let g = Atom::new("p", vec![Term::sym("a"), Term::int(3)]);
        assert_eq!(g.ground_args(), Some(vec![Value::sym("a"), Value::Int(3)]));
        let ng = Atom::new("p", vec![Term::var(1)]);
        assert_eq!(ng.ground_args(), None);
    }

    #[test]
    fn display_forms() {
        assert_eq!(Atom::prop("go").to_string(), "go");
        let a = Atom::new("balance", vec![Term::sym("acct1"), Term::var(2)]);
        assert_eq!(a.to_string(), "balance(acct1, _V2)");
        assert_eq!(Pred::new("p", 3).to_string(), "p/3");
    }
}
