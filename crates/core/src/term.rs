//! Terms and values.
//!
//! TD is a Datalog: terms are variables or constants — there are no function
//! symbols, so the term language (and unification) stays flat. Constants are
//! either symbolic ([`Value::Sym`]) or integers ([`Value::Int`]); integers
//! exist so that the paper's banking and laboratory examples (`Bal > Amt`,
//! `Bal' is Bal - Amt`) can be written directly.

use crate::symbol::Symbol;
use std::cmp::Ordering;
use std::fmt;

/// A runtime variable identity.
///
/// Inside a [`crate::rule::Rule`], variables are rule-local indices
/// `0..rule.num_vars`; the engine *renames apart* at unfold time by offsetting
/// into a fresh id range. Two `Var`s are the same logical variable iff their
/// ids are equal.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Var(pub u32);

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "_V{}", self.0)
    }
}

/// A ground constant: an uninterpreted symbol or an integer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Value {
    /// An uninterpreted constant, e.g. `alice`, `gel_42`.
    Sym(Symbol),
    /// A machine integer. Used by the arithmetic builtins.
    Int(i64),
}

impl Value {
    /// Symbolic constant from a string.
    pub fn sym(s: &str) -> Value {
        Value::Sym(Symbol::intern(s))
    }

    /// True if this value is an integer.
    pub fn is_int(&self) -> bool {
        matches!(self, Value::Int(_))
    }

    /// The integer payload, if any.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Sym(_) => None,
        }
    }
}

/// Values order: integers before symbols; integers numerically, symbols by
/// interned text. A total order is required by the sorted relation storage in
/// `td-db`.
impl Ord for Value {
    fn cmp(&self, other: &Value) -> Ordering {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => a.cmp(b),
            (Value::Int(_), Value::Sym(_)) => Ordering::Less,
            (Value::Sym(_), Value::Int(_)) => Ordering::Greater,
            (Value::Sym(a), Value::Sym(b)) => a.as_str().cmp(b.as_str()),
        }
    }
}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Value) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Sym(s) => write!(f, "{s}"),
            Value::Int(i) => write!(f, "{i}"),
        }
    }
}

impl From<i64> for Value {
    fn from(i: i64) -> Value {
        Value::Int(i)
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::sym(s)
    }
}

impl From<Symbol> for Value {
    fn from(s: Symbol) -> Value {
        Value::Sym(s)
    }
}

/// A term: a variable or a ground value.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Term {
    /// A logic variable.
    Var(Var),
    /// A ground constant.
    Val(Value),
}

impl Term {
    /// Variable term with rule-local or runtime id `i`.
    pub fn var(i: u32) -> Term {
        Term::Var(Var(i))
    }

    /// Symbolic constant term.
    pub fn sym(s: &str) -> Term {
        Term::Val(Value::sym(s))
    }

    /// Integer constant term.
    pub fn int(i: i64) -> Term {
        Term::Val(Value::Int(i))
    }

    /// True iff the term is ground (not a variable).
    pub fn is_ground(&self) -> bool {
        matches!(self, Term::Val(_))
    }

    /// The value, if ground.
    pub fn as_value(&self) -> Option<Value> {
        match self {
            Term::Val(v) => Some(*v),
            Term::Var(_) => None,
        }
    }

    /// The variable, if not ground.
    pub fn as_var(&self) -> Option<Var> {
        match self {
            Term::Var(v) => Some(*v),
            Term::Val(_) => None,
        }
    }
}

impl fmt::Display for Term {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Term::Var(v) => write!(f, "{v}"),
            Term::Val(v) => write!(f, "{v}"),
        }
    }
}

impl From<Value> for Term {
    fn from(v: Value) -> Term {
        Term::Val(v)
    }
}

impl From<Var> for Term {
    fn from(v: Var) -> Term {
        Term::Var(v)
    }
}

impl From<i64> for Term {
    fn from(i: i64) -> Term {
        Term::int(i)
    }
}

impl From<&str> for Term {
    fn from(s: &str) -> Term {
        Term::sym(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn value_ordering_is_total_and_stable() {
        let vals = [
            Value::Int(-3),
            Value::Int(0),
            Value::Int(7),
            Value::sym("a"),
            Value::sym("b"),
        ];
        for w in vals.windows(2) {
            assert!(w[0] < w[1], "{} < {}", w[0], w[1]);
        }
    }

    #[test]
    fn ints_sort_before_symbols() {
        assert!(Value::Int(i64::MAX) < Value::sym(""));
    }

    #[test]
    fn symbol_order_is_textual_not_interning_order() {
        // Intern in reverse lexicographic order; comparison must still be
        // textual.
        let z = Value::sym("zzz_order_test");
        let a = Value::sym("aaa_order_test");
        assert!(a < z);
    }

    #[test]
    fn term_groundness() {
        assert!(Term::sym("x").is_ground());
        assert!(Term::int(4).is_ground());
        assert!(!Term::var(0).is_ground());
        assert_eq!(Term::int(4).as_value(), Some(Value::Int(4)));
        assert_eq!(Term::var(3).as_var(), Some(Var(3)));
    }

    #[test]
    fn display_forms() {
        assert_eq!(Term::sym("plate").to_string(), "plate");
        assert_eq!(Term::int(-2).to_string(), "-2");
        assert_eq!(Term::var(5).to_string(), "_V5");
    }
}
