//! Global string interner.
//!
//! Predicate and constant names occur everywhere — in rules, tuples, traces —
//! so they are interned once into a process-wide table. A [`Symbol`] carries
//! both a dense id (identity: `Eq`/`Hash` are integer operations) and the
//! leaked `&'static str` itself, so resolution, display and *ordering* never
//! touch the interner lock — ordering in particular sits on the engine's hot
//! path through the `BTreeMap`-keyed database.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Mutex, OnceLock};

/// An interned string. Cheap to copy, compare and hash.
///
/// Equality and hashing use the dense id; ordering is *textual* (not
/// interning order), so sorted containers and displays are deterministic
/// across runs regardless of interning sequence.
#[derive(Clone, Copy)]
pub struct Symbol {
    id: u32,
    text: &'static str,
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Symbol) -> bool {
        self.id == other.id
    }
}

impl Eq for Symbol {}

impl std::hash::Hash for Symbol {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Symbol) -> std::cmp::Ordering {
        if self.id == other.id {
            std::cmp::Ordering::Equal
        } else {
            self.text.cmp(other.text)
        }
    }
}

struct Interner {
    map: HashMap<&'static str, u32>,
    strings: Vec<&'static str>,
}

fn interner() -> &'static Mutex<Interner> {
    static INTERNER: OnceLock<Mutex<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        Mutex::new(Interner {
            map: HashMap::new(),
            strings: Vec::new(),
        })
    })
}

impl Symbol {
    /// Intern `s`, returning its symbol. Repeated calls with equal strings
    /// return equal symbols.
    pub fn intern(s: &str) -> Symbol {
        let mut int = interner().lock().expect("symbol interner poisoned");
        if let Some(&id) = int.map.get(s) {
            return Symbol {
                id,
                text: int.strings[id as usize],
            };
        }
        let id = u32::try_from(int.strings.len()).expect("interner overflow");
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        int.strings.push(leaked);
        int.map.insert(leaked, id);
        Symbol { id, text: leaked }
    }

    /// The interned text (allocation- and lock-free).
    pub fn as_str(self) -> &'static str {
        self.text
    }

    /// Raw id, stable within a process run. Useful for dense tables.
    pub fn id(self) -> u32 {
        self.id
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("workflow");
        let b = Symbol::intern("workflow");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "workflow");
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::intern("ins");
        let b = Symbol::intern("del");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "ins");
        assert_eq!(b.as_str(), "del");
    }

    #[test]
    fn from_str_matches_intern() {
        let a: Symbol = "task".into();
        assert_eq!(a, Symbol::intern("task"));
    }

    #[test]
    fn display_round_trips() {
        let a = Symbol::intern("genome_lab");
        assert_eq!(a.to_string(), "genome_lab");
    }

    #[test]
    fn empty_string_is_internable() {
        let a = Symbol::intern("");
        assert_eq!(a.as_str(), "");
        assert_eq!(a, Symbol::intern(""));
    }

    #[test]
    fn ordering_is_textual() {
        // Intern in reverse lexicographic order; comparison must be textual.
        let z = Symbol::intern("zzz_sym_order");
        let a = Symbol::intern("aaa_sym_order");
        assert!(a < z);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn hash_and_eq_by_identity() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Symbol::intern("x1"));
        set.insert(Symbol::intern("x1"));
        set.insert(Symbol::intern("x2"));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn many_symbols_stay_distinct() {
        let syms: Vec<Symbol> = (0..1000).map(|i| Symbol::intern(&format!("s{i}"))).collect();
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(s.as_str(), format!("s{i}"));
        }
    }

    #[test]
    fn symbols_are_usable_across_threads() {
        let a = Symbol::intern("shared");
        let handle = std::thread::spawn(move || {
            assert_eq!(a.as_str(), "shared");
            Symbol::intern("from-thread")
        });
        let b = handle.join().unwrap();
        assert_eq!(b.as_str(), "from-thread");
    }
}
