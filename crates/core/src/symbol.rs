//! Global string interner.
//!
//! Predicate and constant names occur everywhere — in rules, tuples, traces —
//! so they are interned once into a process-wide table. A [`Symbol`] carries
//! both a unique id (identity: `Eq`/`Hash` are integer operations) and the
//! leaked `&'static str` itself, so resolution, display and *ordering* never
//! touch the interner at all — ordering in particular sits on the engine's
//! hot path through the `BTreeMap`-keyed database.
//!
//! The table is sharded: each string hashes to one of `SHARDS` independent
//! `RwLock`-protected maps, and the overwhelmingly common case — interning a
//! string that already exists — takes only a read lock on one shard. This
//! keeps the interner off the contention profile of the parallel search
//! backend, where every worker thread interns during parsing-free operation
//! only rarely, but many threads may still race on warm-up. Symbols are
//! `Copy + Send + Sync`; everything they point at is immortal.

use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{OnceLock, RwLock};

/// An interned string. Cheap to copy, compare and hash.
///
/// Equality uses the unique id (one lookup-free integer compare); ordering
/// and *hashing* are textual, so sorted containers, displays and — crucially
/// — the 128-bit content digests built on `Hash` are deterministic across
/// runs and across *processes*, regardless of interning sequence. Interner
/// ids depend on what was interned first (program text vs a recovered
/// snapshot, worker-thread races); the persisted digests in `td-store`
/// would be unverifiable in any later process if hashes leaked them.
#[derive(Clone, Copy)]
pub struct Symbol {
    id: u32,
    text: &'static str,
}

impl PartialEq for Symbol {
    fn eq(&self, other: &Symbol) -> bool {
        self.id == other.id
    }
}

impl Eq for Symbol {}

impl Hash for Symbol {
    fn hash<H: Hasher>(&self, state: &mut H) {
        // Text, not id: ids are assigned in interning order, which differs
        // between processes (and between threads racing to intern). Interning
        // dedups, so id equality and text equality coincide — hashing the
        // text keeps `Hash`/`Eq` consistent while making every derived hash
        // (HAMT placement, relation digests, the persisted store digests)
        // a pure function of content.
        self.text.hash(state);
    }
}

impl PartialOrd for Symbol {
    fn partial_cmp(&self, other: &Symbol) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    fn cmp(&self, other: &Symbol) -> std::cmp::Ordering {
        if self.id == other.id {
            std::cmp::Ordering::Equal
        } else {
            self.text.cmp(other.text)
        }
    }
}

/// Shard count; a power of two so shard selection is a mask.
const SHARDS: usize = 16;

struct Interner {
    shards: [RwLock<HashMap<&'static str, Symbol>>; SHARDS],
    next_id: AtomicU32,
    /// Payload bytes leaked so far (string text only, not map overhead).
    /// The table is append-only, so this is exactly the process-lifetime
    /// interner footprint — `td serve` reports it so unbounded growth in a
    /// long-running server is observable, not silent (see docs/SERVE.md).
    bytes: AtomicU64,
}

fn interner() -> &'static Interner {
    static INTERNER: OnceLock<Interner> = OnceLock::new();
    INTERNER.get_or_init(|| Interner {
        shards: std::array::from_fn(|_| RwLock::new(HashMap::new())),
        next_id: AtomicU32::new(0),
        bytes: AtomicU64::new(0),
    })
}

fn shard_of(s: &str) -> usize {
    // FNV-1a over the bytes; only shard selection uses this hash.
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    (h as usize) & (SHARDS - 1)
}

impl Symbol {
    /// Intern `s`, returning its symbol. Repeated calls with equal strings
    /// return equal symbols, from any thread.
    pub fn intern(s: &str) -> Symbol {
        let shard = &interner().shards[shard_of(s)];
        if let Some(&sym) = shard.read().expect("symbol interner poisoned").get(s) {
            return sym;
        }
        let mut map = shard.write().expect("symbol interner poisoned");
        // Double-check: another thread may have interned between the locks.
        if let Some(&sym) = map.get(s) {
            return sym;
        }
        let id = interner().next_id.fetch_add(1, Ordering::Relaxed);
        assert!(id != u32::MAX, "interner overflow");
        let leaked: &'static str = Box::leak(s.to_owned().into_boxed_str());
        interner()
            .bytes
            .fetch_add(leaked.len() as u64, Ordering::Relaxed);
        let sym = Symbol { id, text: leaked };
        map.insert(leaked, sym);
        sym
    }

    /// Distinct strings interned so far, process-wide. The table is
    /// append-only (symbols are immortal by design — see the module docs),
    /// so this only ever grows: long-running servers surface it as a
    /// metric rather than pretend the leak isn't there.
    pub fn interned_count() -> u64 {
        interner().next_id.load(Ordering::Relaxed) as u64
    }

    /// Total payload bytes held by the interner (excludes per-entry map
    /// overhead, roughly 48 bytes/entry on 64-bit). Grows linearly in the
    /// distinct constants a workload mentions; see the leak test below for
    /// the measured rate.
    pub fn interned_bytes() -> u64 {
        interner().bytes.load(Ordering::Relaxed)
    }

    /// The interned text (allocation- and lock-free).
    pub fn as_str(self) -> &'static str {
        self.text
    }

    /// Raw id, stable within a process run. Useful for dense tables. Ids are
    /// unique but not contiguous in interning order once threads race.
    pub fn id(self) -> u32 {
        self.id
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text)
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Symbol({:?})", self.text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = Symbol::intern("workflow");
        let b = Symbol::intern("workflow");
        assert_eq!(a, b);
        assert_eq!(a.as_str(), "workflow");
        assert_eq!(a.id(), b.id());
    }

    #[test]
    fn distinct_strings_get_distinct_symbols() {
        let a = Symbol::intern("ins");
        let b = Symbol::intern("del");
        assert_ne!(a, b);
        assert_eq!(a.as_str(), "ins");
        assert_eq!(b.as_str(), "del");
    }

    #[test]
    fn from_str_matches_intern() {
        let a: Symbol = "task".into();
        assert_eq!(a, Symbol::intern("task"));
    }

    #[test]
    fn display_round_trips() {
        let a = Symbol::intern("genome_lab");
        assert_eq!(a.to_string(), "genome_lab");
    }

    #[test]
    fn empty_string_is_internable() {
        let a = Symbol::intern("");
        assert_eq!(a.as_str(), "");
        assert_eq!(a, Symbol::intern(""));
    }

    #[test]
    fn ordering_is_textual() {
        // Intern in reverse lexicographic order; comparison must be textual.
        let z = Symbol::intern("zzz_sym_order");
        let a = Symbol::intern("aaa_sym_order");
        assert!(a < z);
        assert_eq!(a.cmp(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn hash_and_eq_by_identity() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Symbol::intern("x1"));
        set.insert(Symbol::intern("x1"));
        set.insert(Symbol::intern("x2"));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn many_symbols_stay_distinct() {
        let syms: Vec<Symbol> = (0..1000)
            .map(|i| Symbol::intern(&format!("s{i}")))
            .collect();
        for (i, s) in syms.iter().enumerate() {
            assert_eq!(s.as_str(), format!("s{i}"));
        }
    }

    #[test]
    fn symbols_are_usable_across_threads() {
        let a = Symbol::intern("shared");
        let handle = std::thread::spawn(move || {
            assert_eq!(a.as_str(), "shared");
            Symbol::intern("from-thread")
        });
        let b = handle.join().unwrap();
        assert_eq!(b.as_str(), "from-thread");
    }

    #[test]
    fn symbol_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Symbol>();
    }

    #[test]
    fn interner_growth_is_linear_in_distinct_strings_and_observable() {
        // The interner is an intentional leak: symbols are immortal so that
        // `as_str`/ordering stay lock-free on the engine's hot path. This
        // test pins the growth contract a long-running `td serve` relies
        // on: each *distinct* string grows the table by one entry and its
        // payload bytes (linear in distinct constants seen — payload plus
        // ~48 bytes/entry of map overhead on 64-bit); re-interning an
        // existing string allocates nothing (dedup ⇒ steady state is
        // flat); and both quantities are observable, so a server surfaces
        // the growth instead of hiding it. Counters are process-global and
        // other tests intern concurrently, so growth assertions are
        // one-sided (>=) and dedup is proven by id stability.
        let fresh: Vec<String> = (0..128).map(|i| format!("leak_probe_{i}")).collect();
        let fresh_bytes: u64 = fresh.iter().map(|s| s.len() as u64).sum();
        let count0 = Symbol::interned_count();
        let bytes0 = Symbol::interned_bytes();
        let first: Vec<Symbol> = fresh.iter().map(|s| Symbol::intern(s)).collect();
        assert!(Symbol::interned_count() - count0 >= 128);
        assert!(Symbol::interned_bytes() - bytes0 >= fresh_bytes);
        // Dedup: re-interning returns the same immortal entries — no new
        // ids, hence no new allocations on our behalf. (Growth on re-use
        // would be a fatal leak rate for a long-running server.)
        for (s, sym) in fresh.iter().zip(&first) {
            let again = Symbol::intern(s);
            assert_eq!(again.id(), sym.id());
            assert!(std::ptr::eq(again.as_str(), sym.as_str()));
        }
    }

    #[test]
    fn concurrent_interning_agrees_on_identity() {
        // Many threads intern overlapping string sets; all must agree.
        let handles: Vec<_> = (0..8)
            .map(|t| {
                std::thread::spawn(move || {
                    (0..200)
                        .map(|i| Symbol::intern(&format!("race_{}", (i + t) % 100)))
                        .map(|s| (s.as_str(), s.id()))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let mut by_text: std::collections::HashMap<&str, u32> = std::collections::HashMap::new();
        for run in &results {
            for (text, id) in run {
                let prev = by_text.insert(text, *id);
                if let Some(prev) = prev {
                    assert_eq!(prev, *id, "{text} interned to two ids");
                }
            }
        }
    }
}
