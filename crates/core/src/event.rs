//! Complex-event patterns and triggers.
//!
//! Following Gomes & Alferes' *Transaction Logic with (Complex) Events*,
//! programs may declare *event relations* (`event e/n.`) and attach
//! *triggers* — `on <pattern> do <goal>.` — whose pattern is built from
//! event atoms with three combinators:
//!
//! * `seq(p, q)` — a match of `p` strictly before a match of `q` (arrival
//!   order, not timestamp order);
//! * `and(p, q)` — matches of `p` and `q` in either order;
//! * `within(p, d)` — a match of `p` whose events span at most `d`
//!   timestamp units.
//!
//! Pattern atoms are written with the event's *declared* arity; the stored
//! timestamp column stays implicit and feeds `within`. Variables are shared
//! between the pattern and the trigger goal: when a pattern completes, the
//! bindings accumulated by matching are applied to the goal and the result
//! is executed as an ordinary TD transaction.
//!
//! The incremental match automata live in the `td-events` crate; this
//! module is only the abstract syntax plus static validation.

use crate::atom::{Atom, Pred};
use crate::error::{CoreError, CoreResult};
use crate::goal::Goal;
use crate::program::Program;
use crate::rule::render_goal_with_names;
use crate::symbol::Symbol;
use crate::term::Term;
use std::fmt;

/// Upper bound on event atoms per pattern — the automaton tracks assigned
/// leaves in a 64-bit mask.
pub const MAX_PATTERN_LEAVES: usize = 64;

/// A complex-event pattern over declared event relations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum EventPattern {
    /// A single event occurrence, written with the declared arity (no
    /// timestamp column).
    Atom(Atom),
    /// Left strictly before right, in arrival order.
    Seq(Box<EventPattern>, Box<EventPattern>),
    /// Both sub-patterns, in either order.
    And(Box<EventPattern>, Box<EventPattern>),
    /// The sub-pattern with its events' timestamps spanning at most the
    /// given number of units.
    Within(Box<EventPattern>, u64),
}

impl EventPattern {
    /// The event atoms of the pattern, left to right.
    pub fn leaves(&self) -> Vec<&Atom> {
        let mut out = Vec::new();
        self.collect_leaves(&mut out);
        out
    }

    fn collect_leaves<'a>(&'a self, out: &mut Vec<&'a Atom>) {
        match self {
            EventPattern::Atom(a) => out.push(a),
            EventPattern::Seq(l, r) | EventPattern::And(l, r) => {
                l.collect_leaves(out);
                r.collect_leaves(out);
            }
            EventPattern::Within(p, _) => p.collect_leaves(out),
        }
    }

    /// Every variable occurring in the pattern.
    pub fn vars(&self) -> Vec<crate::term::Var> {
        let mut out = Vec::new();
        for leaf in self.leaves() {
            for v in leaf.vars() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
        }
        out
    }

    fn render(&self, names: &[Symbol], out: &mut String) {
        match self {
            EventPattern::Atom(a) => {
                out.push_str(&a.pred.name.to_string());
                if !a.args.is_empty() {
                    out.push('(');
                    for (i, t) in a.args.iter().enumerate() {
                        if i > 0 {
                            out.push_str(", ");
                        }
                        match t {
                            Term::Var(v) => match names.get(v.0 as usize) {
                                Some(n) => out.push_str(&n.to_string()),
                                None => out.push_str(&format!("_V{}", v.0)),
                            },
                            Term::Val(val) => out.push_str(&val.to_string()),
                        }
                    }
                    out.push(')');
                }
            }
            EventPattern::Seq(l, r) => {
                out.push_str("seq(");
                l.render(names, out);
                out.push_str(", ");
                r.render(names, out);
                out.push(')');
            }
            EventPattern::And(l, r) => {
                out.push_str("and(");
                l.render(names, out);
                out.push_str(", ");
                r.render(names, out);
                out.push(')');
            }
            EventPattern::Within(p, d) => {
                out.push_str("within(");
                p.render(names, out);
                out.push_str(&format!(", {d})"));
            }
        }
    }
}

/// A trigger: a complex-event pattern plus the transaction goal to run on
/// each completed match, sharing one variable scope.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Trigger {
    pub pattern: EventPattern,
    pub goal: Goal,
    /// Source names for the shared variables, indexed by variable id.
    pub var_names: Vec<Symbol>,
}

impl Trigger {
    /// Render in concrete syntax (`on <pattern> do <goal>.`).
    pub fn to_source(&self) -> String {
        let mut out = String::from("on ");
        self.pattern.render(&self.var_names, &mut out);
        out.push_str(" do ");
        out.push_str(&render_goal_with_names(&self.goal, &self.var_names));
        out.push('.');
        out
    }
}

impl fmt::Display for Trigger {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_source())
    }
}

/// Validate a trigger against a program: every pattern leaf must name a
/// declared event relation at its declared arity, the pattern must fit the
/// automaton's leaf bound, and the goal must validate like any query.
pub fn validate_trigger(p: &Program, trigger: &Trigger) -> CoreResult<()> {
    let leaves = trigger.pattern.leaves();
    if leaves.len() > MAX_PATTERN_LEAVES {
        return Err(CoreError::PatternTooLarge {
            leaves: leaves.len(),
            max: MAX_PATTERN_LEAVES,
        });
    }
    for leaf in leaves {
        let stored = Pred {
            name: leaf.pred.name,
            arity: leaf.pred.arity + 1,
        };
        if !p.is_event(stored) {
            return Err(CoreError::NotAnEvent { pred: leaf.pred });
        }
    }
    crate::validate::validate_goal(p, &trigger.goal)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    fn program() -> Program {
        Program::builder()
            .event_pred("sample", 1)
            .event_pred("result", 2)
            .base_pred("handled", 1)
            .build()
            .unwrap()
    }

    fn seq_pattern() -> EventPattern {
        EventPattern::Within(
            Box::new(EventPattern::Seq(
                Box::new(EventPattern::Atom(Atom::new("sample", vec![Term::var(0)]))),
                Box::new(EventPattern::Atom(Atom::new(
                    "result",
                    vec![Term::var(0), Term::var(1)],
                ))),
            )),
            1000,
        )
    }

    fn trigger() -> Trigger {
        Trigger {
            pattern: seq_pattern(),
            goal: Goal::ins("handled", vec![Term::var(0)]),
            var_names: vec![Symbol::intern("S"), Symbol::intern("Q")],
        }
    }

    #[test]
    fn leaves_are_collected_left_to_right() {
        let p = seq_pattern();
        let leaves = p.leaves();
        assert_eq!(leaves.len(), 2);
        assert_eq!(leaves[0].pred, Pred::new("sample", 1));
        assert_eq!(leaves[1].pred, Pred::new("result", 2));
        assert_eq!(p.vars().len(), 2);
    }

    #[test]
    fn valid_trigger_passes() {
        assert!(validate_trigger(&program(), &trigger()).is_ok());
    }

    #[test]
    fn non_event_leaf_rejected() {
        let t = Trigger {
            pattern: EventPattern::Atom(Atom::new("handled", vec![Term::var(0)])),
            goal: Goal::True,
            var_names: vec![Symbol::intern("X")],
        };
        assert_eq!(
            validate_trigger(&program(), &t),
            Err(CoreError::NotAnEvent {
                pred: Pred::new("handled", 1)
            })
        );
    }

    #[test]
    fn wrong_arity_leaf_rejected() {
        let t = Trigger {
            pattern: EventPattern::Atom(Atom::new("sample", vec![Term::var(0), Term::var(1)])),
            goal: Goal::True,
            var_names: vec![Symbol::intern("X"), Symbol::intern("Y")],
        };
        assert!(matches!(
            validate_trigger(&program(), &t),
            Err(CoreError::NotAnEvent { .. })
        ));
    }

    #[test]
    fn trigger_goal_is_validated() {
        let t = Trigger {
            goal: Goal::prop("mystery"),
            ..trigger()
        };
        assert!(matches!(
            validate_trigger(&program(), &t),
            Err(CoreError::UnknownPredicate { .. })
        ));
    }

    #[test]
    fn trigger_renders_round_trippable_source() {
        let t = trigger();
        assert_eq!(
            t.to_source(),
            "on within(seq(sample(S), result(S, Q)), 1000) do ins.handled(S)."
        );
    }
}
