//! Unification over the flat TD term language.
//!
//! With no function symbols, unification is pairwise: resolve both terms,
//! then either they are equal values, one side is an unbound variable (bind
//! it), or they clash. No occurs-check is needed — variables can only bind to
//! values or other variables, so no cycles through structure can form (a
//! var-var binding always points to a *different* representative).

use crate::atom::Atom;
use crate::subst::Bindings;
use crate::term::Term;

/// Unify two terms under `b`. On failure the bindings are left as they were
/// before the call only if the caller undoes to a mark; `unify_terms` itself
/// may have recorded bindings before discovering a clash in a larger
/// structure, so callers always bracket with [`Bindings::mark`] /
/// [`Bindings::undo_to`].
pub fn unify_terms(b: &mut Bindings, s: Term, t: Term) -> bool {
    let rs = b.resolve(s);
    let rt = b.resolve(t);
    match (rs, rt) {
        (Term::Val(x), Term::Val(y)) => x == y,
        (Term::Var(v), Term::Var(w)) => {
            if v == w {
                true
            } else {
                b.bind(v, Term::Var(w));
                true
            }
        }
        (Term::Var(v), val @ Term::Val(_)) => {
            b.bind(v, val);
            true
        }
        (val @ Term::Val(_), Term::Var(w)) => {
            b.bind(w, val);
            true
        }
    }
}

/// Unify two argument lists of equal length. Returns false (possibly leaving
/// partial bindings — see [`unify_terms`]) on clash or length mismatch.
pub fn unify_args(b: &mut Bindings, xs: &[Term], ys: &[Term]) -> bool {
    if xs.len() != ys.len() {
        return false;
    }
    xs.iter().zip(ys).all(|(x, y)| unify_terms(b, *x, *y))
}

/// Unify two atoms: same predicate, unifiable arguments.
pub fn unify_atoms(b: &mut Bindings, x: &Atom, y: &Atom) -> bool {
    x.pred == y.pred && unify_args(b, &x.args, &y.args)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::term::Value;

    #[test]
    fn value_value() {
        let mut b = Bindings::new();
        assert!(unify_terms(&mut b, Term::sym("a"), Term::sym("a")));
        assert!(!unify_terms(&mut b, Term::sym("a"), Term::sym("b")));
        assert!(!unify_terms(&mut b, Term::int(1), Term::sym("1")));
        assert!(unify_terms(&mut b, Term::int(3), Term::int(3)));
    }

    #[test]
    fn var_value_binds() {
        let mut b = Bindings::new();
        b.alloc(1);
        assert!(unify_terms(&mut b, Term::var(0), Term::int(7)));
        assert_eq!(b.value_of(Term::var(0)), Some(Value::Int(7)));
    }

    #[test]
    fn value_var_binds() {
        let mut b = Bindings::new();
        b.alloc(1);
        assert!(unify_terms(&mut b, Term::sym("x"), Term::var(0)));
        assert_eq!(b.value_of(Term::var(0)), Some(Value::sym("x")));
    }

    #[test]
    fn var_var_aliases() {
        let mut b = Bindings::new();
        b.alloc(2);
        assert!(unify_terms(&mut b, Term::var(0), Term::var(1)));
        assert!(unify_terms(&mut b, Term::var(1), Term::int(4)));
        assert_eq!(b.value_of(Term::var(0)), Some(Value::Int(4)));
    }

    #[test]
    fn self_unification_is_noop() {
        let mut b = Bindings::new();
        b.alloc(1);
        let m = b.mark();
        assert!(unify_terms(&mut b, Term::var(0), Term::var(0)));
        assert_eq!(b.mark(), m, "no binding should be recorded");
    }

    #[test]
    fn bound_vars_unify_through_chains() {
        let mut b = Bindings::new();
        b.alloc(3);
        assert!(unify_terms(&mut b, Term::var(0), Term::var(1)));
        assert!(unify_terms(&mut b, Term::var(2), Term::int(5)));
        assert!(unify_terms(&mut b, Term::var(0), Term::var(2)));
        assert_eq!(b.value_of(Term::var(1)), Some(Value::Int(5)));
    }

    #[test]
    fn clash_through_chain_fails() {
        let mut b = Bindings::new();
        b.alloc(2);
        assert!(unify_terms(&mut b, Term::var(0), Term::int(1)));
        assert!(unify_terms(&mut b, Term::var(1), Term::int(2)));
        assert!(!unify_terms(&mut b, Term::var(0), Term::var(1)));
    }

    #[test]
    fn atom_unification() {
        let mut b = Bindings::new();
        b.alloc(2);
        let x = Atom::new("p", vec![Term::var(0), Term::sym("c")]);
        let y = Atom::new("p", vec![Term::int(1), Term::var(1)]);
        assert!(unify_atoms(&mut b, &x, &y));
        assert_eq!(b.value_of(Term::var(0)), Some(Value::Int(1)));
        assert_eq!(b.value_of(Term::var(1)), Some(Value::sym("c")));
    }

    #[test]
    fn atom_unification_requires_same_pred() {
        let mut b = Bindings::new();
        let x = Atom::prop("p");
        let y = Atom::prop("q");
        assert!(!unify_atoms(&mut b, &x, &y));
    }

    #[test]
    fn partial_bindings_rolled_back_by_caller() {
        let mut b = Bindings::new();
        b.alloc(2);
        let m = b.mark();
        let x = Atom::new("p", vec![Term::var(0), Term::sym("a")]);
        let y = Atom::new("p", vec![Term::int(1), Term::sym("b")]);
        assert!(!unify_atoms(&mut b, &x, &y));
        // var 0 got bound before the clash on the second arg:
        assert_eq!(b.value_of(Term::var(0)), Some(Value::Int(1)));
        b.undo_to(m);
        assert_eq!(b.value_of(Term::var(0)), None);
    }
}

#[cfg(test)]
mod properties {
    use super::*;
    use crate::term::Term;
    use proptest::prelude::*;

    fn arb_term(nvars: u32) -> impl Strategy<Value = Term> {
        prop_oneof![
            (0..nvars).prop_map(Term::var),
            (-3i64..3).prop_map(Term::int),
            "[a-c]".prop_map(|s| Term::sym(&s)),
        ]
    }

    proptest! {
        #[test]
        fn unification_is_symmetric(s in arb_term(4), t in arb_term(4)) {
            let mut b1 = Bindings::new();
            b1.alloc(4);
            let mut b2 = Bindings::new();
            b2.alloc(4);
            prop_assert_eq!(unify_terms(&mut b1, s, t), unify_terms(&mut b2, t, s));
            // And the resulting resolutions agree.
            if b1.resolve(s).is_ground() {
                prop_assert_eq!(b1.resolve(s), b2.resolve(s));
                prop_assert_eq!(b1.resolve(t), b2.resolve(t));
            }
        }

        #[test]
        fn successful_unification_makes_terms_equal(s in arb_term(4), t in arb_term(4)) {
            let mut b = Bindings::new();
            b.alloc(4);
            if unify_terms(&mut b, s, t) {
                prop_assert_eq!(b.resolve(s), b.resolve(t));
            }
        }

        #[test]
        fn unification_is_idempotent(s in arb_term(4), t in arb_term(4)) {
            let mut b = Bindings::new();
            b.alloc(4);
            if unify_terms(&mut b, s, t) {
                let mark = b.mark();
                prop_assert!(unify_terms(&mut b, s, t), "re-unifying must succeed");
                prop_assert_eq!(b.mark(), mark, "and bind nothing new");
            }
        }

        #[test]
        fn undo_restores_resolution(
            s in arb_term(4),
            t in arb_term(4),
            u in arb_term(4),
            v in arb_term(4),
        ) {
            let mut b = Bindings::new();
            b.alloc(4);
            let _ = unify_terms(&mut b, s, t);
            let before: Vec<Term> = (0..4).map(|i| b.resolve(Term::var(i))).collect();
            let mark = b.mark();
            let _ = unify_terms(&mut b, u, v);
            b.undo_to(mark);
            let after: Vec<Term> = (0..4).map(|i| b.resolve(Term::var(i))).collect();
            prop_assert_eq!(before, after);
        }
    }
}
