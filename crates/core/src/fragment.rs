//! The paper's sublanguage (fragment) classification.
//!
//! §4–§5 of the paper map the data complexity of workflow executability
//! across restrictions of TD:
//!
//! | fragment | restriction | data complexity |
//! |---|---|---|
//! | full TD | none | RE-complete |
//! | sequential rulebase | `\|` only in the top-level goal | RE-complete (3 processes suffice — Cor. 4.6) |
//! | sequential TD | no `\|` at all | EXPTIME-complete (Thm. 4.5) |
//! | nonrecursive TD | no recursion | inside PTIME (Thm. 4.7) |
//! | fully bounded TD | bounded process width + sequential tail recursion | the paper's "practical blend" — see below |
//!
//! **Fully bounded TD** (§5, reconstructed): TD is already *data*-bounded —
//! it is safe, so the domain and schema are fixed and the database stays
//! polynomial. What remains unbounded are the *process* features: concurrent
//! width (recursion through `|` creates processes at runtime, Example 3.2)
//! and the recursion stack (non-tail sequential recursion simulates
//! alternation, Thm. 4.5). Fully bounded TD removes both: recursion may not
//! pass through `|` (process width is then a program constant) and every
//! recursive call must be a tail call (iteration, like the repeated
//! laboratory protocol of \[26\]). Both workflow idioms the paper needs —
//! iterated protocols and a fixed network of cooperating workflows — remain
//! expressible; what is lost is exactly the machinery of the hardness
//! proofs.

use crate::analysis::{structure_facts, StructureFacts};
use crate::goal::Goal;
use crate::program::Program;
use std::fmt;

/// The paper's named TD sublanguages, most restrictive applicable first.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Fragment {
    /// No recursion at all. Data complexity inside PTIME (Thm. 4.7).
    Nonrecursive,
    /// No concurrent composition anywhere. EXPTIME-complete (Thm. 4.5).
    Sequential,
    /// Bounded process width and only sequential tail recursion (§5).
    FullyBounded,
    /// `|` occurs only in the top-level goal, not in rule bodies; with
    /// unrestricted recursion this is still RE-complete (Cor. 4.6).
    SequentialRulebase,
    /// Unrestricted TD. RE-complete (§4).
    Full,
}

impl Fragment {
    /// The complexity class the paper proves for this fragment (data
    /// complexity of the executability problem).
    pub fn complexity(self) -> &'static str {
        match self {
            Fragment::Nonrecursive => "inside PTIME",
            Fragment::Sequential => "EXPTIME-complete",
            Fragment::FullyBounded => "PSPACE (bounded configuration space)",
            Fragment::SequentialRulebase => "RE-complete",
            Fragment::Full => "RE-complete",
        }
    }
}

impl fmt::Display for Fragment {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Fragment::Nonrecursive => "nonrecursive TD",
            Fragment::Sequential => "sequential TD",
            Fragment::FullyBounded => "fully bounded TD",
            Fragment::SequentialRulebase => "TD with sequential rulebase",
            Fragment::Full => "full TD",
        };
        f.write_str(s)
    }
}

/// Classification result: the fragment plus the structural facts that
/// produced it, for reporting (`td fragment <file>` in the CLI).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct FragmentReport {
    pub fragment: Fragment,
    pub facts: StructureFacts,
}

impl FragmentReport {
    /// Classify `program` with entry `goal`.
    pub fn classify(program: &Program, goal: &Goal) -> FragmentReport {
        let facts = structure_facts(program, goal);
        let fragment = if !facts.recursive {
            Fragment::Nonrecursive
        } else if !facts.par_in_rules && !facts.par_in_goal {
            Fragment::Sequential
        } else if !facts.recursion_through_par
            && !facts.recursion_through_iso
            && facts.tail_recursion_only
        {
            Fragment::FullyBounded
        } else if !facts.par_in_rules {
            Fragment::SequentialRulebase
        } else {
            Fragment::Full
        };
        FragmentReport { fragment, facts }
    }

    /// True if executability is decidable for this fragment (everything
    /// except the RE-complete fragments).
    pub fn decidable(&self) -> bool {
        !matches!(self.fragment, Fragment::Full | Fragment::SequentialRulebase)
    }
}

impl fmt::Display for FragmentReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "fragment: {} ({})",
            self.fragment,
            self.fragment.complexity()
        )?;
        writeln!(f, "  recursive:              {}", self.facts.recursive)?;
        writeln!(f, "  | in rule bodies:       {}", self.facts.par_in_rules)?;
        writeln!(f, "  | in top-level goal:    {}", self.facts.par_in_goal)?;
        writeln!(
            f,
            "  recursion through |:    {}",
            self.facts.recursion_through_par
        )?;
        writeln!(
            f,
            "  recursion through iso:  {}",
            self.facts.recursion_through_iso
        )?;
        writeln!(
            f,
            "  tail recursion only:    {}",
            self.facts.tail_recursion_only
        )?;
        write!(f, "  max | width:            {}", self.facts.max_par_width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::atom::Atom;
    use crate::term::Term;

    fn classify(rules: Vec<(Atom, Goal)>, base: &[(&str, u32)], goal: Goal) -> Fragment {
        let mut b = Program::builder().base_preds(base);
        for (h, g) in rules {
            b = b.rule_parts(h, g);
        }
        let p = b.build_unchecked();
        FragmentReport::classify(&p, &goal).fragment
    }

    #[test]
    fn nonrecursive_program() {
        let f = classify(
            vec![
                (Atom::prop("a"), Goal::prop("b")),
                (Atom::prop("b"), Goal::ins("t", vec![])),
            ],
            &[("t", 0)],
            Goal::prop("a"),
        );
        assert_eq!(f, Fragment::Nonrecursive);
    }

    #[test]
    fn nonrecursive_wins_even_with_par() {
        // Thm 4.7: eliminating recursion collapses complexity regardless of |.
        let f = classify(
            vec![(
                Atom::prop("a"),
                Goal::par(vec![Goal::ins("t", vec![]), Goal::ins("u", vec![])]),
            )],
            &[("t", 0), ("u", 0)],
            Goal::prop("a"),
        );
        assert_eq!(f, Fragment::Nonrecursive);
    }

    #[test]
    fn sequential_td() {
        let f = classify(
            vec![(
                Atom::prop("loop"),
                Goal::choice(vec![
                    Goal::seq(vec![Goal::prop("loop"), Goal::prop("loop")]),
                    Goal::ins("t", vec![]),
                ]),
            )],
            &[("t", 0)],
            Goal::prop("loop"),
        );
        // Non-tail recursion but no | at all → sequential TD.
        assert_eq!(f, Fragment::Sequential);
    }

    #[test]
    fn fully_bounded_tail_iteration_with_static_par() {
        // Two fixed cooperating workflows, each a tail-recursive loop:
        // exactly the §5 "practical blend".
        let loop_a = (
            Atom::prop("wf_a"),
            Goal::choice(vec![
                Goal::seq(vec![Goal::ins("a", vec![]), Goal::prop("wf_a")]),
                Goal::True,
            ]),
        );
        let loop_b = (
            Atom::prop("wf_b"),
            Goal::choice(vec![
                Goal::seq(vec![
                    Goal::atom("a", vec![]),
                    Goal::ins("b", vec![]),
                    Goal::prop("wf_b"),
                ]),
                Goal::True,
            ]),
        );
        let f = classify(
            vec![loop_a, loop_b],
            &[("a", 0), ("b", 0)],
            Goal::par(vec![Goal::prop("wf_a"), Goal::prop("wf_b")]),
        );
        assert_eq!(f, Fragment::FullyBounded);
    }

    #[test]
    fn sequential_rulebase_when_recursion_is_not_tail() {
        // Non-tail recursion + | only in the goal → Cor 4.6 territory.
        let f = classify(
            vec![(
                Atom::prop("r"),
                Goal::choice(vec![
                    Goal::seq(vec![Goal::prop("r"), Goal::ins("t", vec![])]),
                    Goal::True,
                ]),
            )],
            &[("t", 0)],
            Goal::par(vec![Goal::prop("r"), Goal::prop("r"), Goal::prop("r")]),
        );
        assert_eq!(f, Fragment::SequentialRulebase);
    }

    #[test]
    fn full_td_for_recursion_through_par() {
        // Example 3.2's simulate pattern.
        let f = classify(
            vec![
                (
                    Atom::prop("simulate"),
                    Goal::par(vec![
                        Goal::atom("workflow", vec![Term::var(0)]),
                        Goal::prop("simulate"),
                    ]),
                ),
                (
                    Atom::new("workflow", vec![Term::var(0)]),
                    Goal::del("item", vec![Term::var(0)]),
                ),
            ],
            &[("item", 1)],
            Goal::prop("simulate"),
        );
        assert_eq!(f, Fragment::Full);
    }

    #[test]
    fn decidability_flags() {
        let p = Program::builder().base_pred("t", 0).build().unwrap();
        let r = FragmentReport::classify(&p, &Goal::ins("t", vec![]));
        assert_eq!(r.fragment, Fragment::Nonrecursive);
        assert!(r.decidable());
    }

    #[test]
    fn complexity_strings() {
        assert_eq!(Fragment::Full.complexity(), "RE-complete");
        assert_eq!(Fragment::Sequential.complexity(), "EXPTIME-complete");
        assert!(Fragment::Nonrecursive.complexity().contains("PTIME"));
    }

    #[test]
    fn report_display_mentions_fragment() {
        let p = Program::builder().base_pred("t", 0).build().unwrap();
        let r = FragmentReport::classify(&p, &Goal::ins("t", vec![]));
        let s = r.to_string();
        assert!(s.contains("nonrecursive TD"));
        assert!(s.contains("recursive:              false"));
    }
}
