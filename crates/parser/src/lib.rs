//! # td-parser — concrete syntax for Transaction Datalog
//!
//! A hand-written lexer and recursive-descent parser for `.td` files, with
//! span-carrying diagnostics and statement-level error recovery.
//!
//! ```
//! use td_parser::parse_program;
//!
//! let src = r#"
//!     base item/1.
//!     base done/2.
//!     init item(w1).
//!
//!     workflow(W) <- task_a(W) * (task_b(W) | task_c(W)).
//!     task_a(W) <- item(W) * ins.done(W, a).
//!     task_b(W) <- ins.done(W, b).
//!     task_c(W) <- ins.done(W, c).
//!
//!     ?- workflow(w1).
//! "#;
//! let parsed = parse_program(src).expect("parses");
//! assert_eq!(parsed.program.len(), 4);
//! assert_eq!(parsed.init.len(), 1);
//! assert_eq!(parsed.goals.len(), 1);
//! ```

pub mod error;
pub mod lexer;
pub mod parser;
pub mod token;

pub use error::{ParseError, ParseErrorKind, ParseErrors};
pub use parser::{parse_event, parse_goal, parse_program, ParsedGoal, ParsedProgram};
pub use token::{Span, Tok, Token};

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::{Builtin, Fragment, FragmentReport, Goal, Pred, Term};

    #[test]
    fn parse_minimal_program() {
        let p = parse_program("base t/0. r <- ins.t.").unwrap();
        assert_eq!(p.program.len(), 1);
        assert!(p.program.is_base(Pred::new("t", 0)));
        assert_eq!(p.program.rules()[0].body, Goal::ins("t", vec![]));
    }

    #[test]
    fn precedence_star_over_pipe() {
        let p =
            parse_program("base a/0. base b/0. base c/0. base d/0. r <- a * b | c * d.").unwrap();
        let body = &p.program.rules()[0].body;
        assert_eq!(
            *body,
            Goal::par(vec![
                Goal::seq(vec![Goal::prop("a"), Goal::prop("b")]),
                Goal::seq(vec![Goal::prop("c"), Goal::prop("d")]),
            ])
        );
    }

    #[test]
    fn parens_override_precedence() {
        let p = parse_program("base a/0. base b/0. base c/0. r <- (a | b) * c.").unwrap();
        let body = &p.program.rules()[0].body;
        assert_eq!(
            *body,
            Goal::seq(vec![
                Goal::par(vec![Goal::prop("a"), Goal::prop("b")]),
                Goal::prop("c"),
            ])
        );
    }

    #[test]
    fn variables_scoped_per_rule() {
        let p =
            parse_program("base p/1. base q/1. r(X) <- p(X) * q(Y) * q(X). s(Y) <- p(Y).").unwrap();
        let r = &p.program.rules()[0];
        assert_eq!(r.num_vars(), 2);
        assert_eq!(r.head.args, vec![Term::var(0)]);
        let s = &p.program.rules()[1];
        assert_eq!(s.num_vars(), 1);
        assert_eq!(s.head.args, vec![Term::var(0)]);
    }

    #[test]
    fn anonymous_underscore_is_fresh_each_time() {
        let p = parse_program("base p/2. r <- p(_, _).").unwrap();
        let body = &p.program.rules()[0].body;
        assert_eq!(*body, Goal::atom("p", vec![Term::var(0), Term::var(1)]));
    }

    #[test]
    fn iso_and_choice_and_unit() {
        let p = parse_program("base a/0. base b/0. r <- iso { a or b } * ().").unwrap();
        let body = &p.program.rules()[0].body;
        assert_eq!(
            *body,
            Goal::iso(Goal::choice(vec![Goal::prop("a"), Goal::prop("b")]))
        );
    }

    #[test]
    fn fail_and_not() {
        let p = parse_program("base a/0. r <- not a * fail.").unwrap();
        let body = &p.program.rules()[0].body;
        assert_eq!(
            *body,
            Goal::seq(vec![Goal::NotAtom(td_core::Atom::prop("a")), Goal::Fail])
        );
    }

    #[test]
    fn builtins_comparisons_and_is() {
        let p = parse_program("base bal/1. r(B) <- bal(B) * B >= 10 * C is B - 10 * ins.bal(C).")
            .unwrap();
        let body = &p.program.rules()[0].body;
        let Goal::Seq(steps) = body else {
            panic!("expected seq")
        };
        assert_eq!(
            steps[1],
            Goal::Builtin(Builtin::Ge, vec![Term::var(0), Term::int(10)])
        );
        assert_eq!(
            steps[2],
            Goal::Builtin(
                Builtin::Sub,
                vec![Term::var(0), Term::int(10), Term::var(1)]
            )
        );
    }

    #[test]
    fn constant_comparison_lhs() {
        let p = parse_program("r <- 3 < 5.").unwrap();
        assert_eq!(
            p.program.rules()[0].body,
            Goal::Builtin(Builtin::Lt, vec![Term::int(3), Term::int(5)])
        );
    }

    #[test]
    fn symbol_equality_builtin() {
        let p = parse_program("base p/1. r(X) <- p(X) * X = abc.").unwrap();
        let Goal::Seq(steps) = &p.program.rules()[0].body else {
            panic!()
        };
        assert_eq!(
            steps[1],
            Goal::Builtin(Builtin::Eq, vec![Term::var(0), Term::sym("abc")])
        );
    }

    #[test]
    fn init_and_goal_statements() {
        let p =
            parse_program("base item/1. init item(w1). init item(w2). ?- item(X) * del.item(X).")
                .unwrap();
        assert_eq!(p.init.len(), 2);
        assert!(p.init[0].is_ground());
        assert_eq!(p.goals.len(), 1);
        assert_eq!(p.goals[0].var_names.len(), 1);
        assert_eq!(p.goals[0].var_names[0].as_str(), "X");
    }

    #[test]
    fn init_must_be_ground_and_base() {
        let err = parse_program("base item/1. init item(X).").unwrap_err();
        assert!(err.to_string().contains("not ground"));
        let err = parse_program("r <- (). init r.").unwrap_err();
        assert!(err.to_string().contains("not a base relation"));
    }

    #[test]
    fn negative_integers() {
        let p = parse_program("base t/1. r <- ins.t(-5).").unwrap();
        assert_eq!(
            p.program.rules()[0].body,
            Goal::ins("t", vec![Term::int(-5)])
        );
    }

    #[test]
    fn derived_fact_sugar() {
        let p = parse_program("ready.").unwrap();
        assert_eq!(p.program.rules()[0].body, Goal::True);
        assert_eq!(p.program.rules()[0].head, td_core::Atom::prop("ready"));
    }

    #[test]
    fn error_recovery_reports_multiple() {
        let err = parse_program("base t/0. r <- * t. s <- ) . ok <- ins.t.").unwrap_err();
        assert!(err.errors.len() >= 2, "got: {err}");
    }

    #[test]
    fn unknown_predicate_in_rule_is_reported() {
        let err = parse_program("r <- mystery.").unwrap_err();
        assert!(err.to_string().contains("mystery"));
    }

    #[test]
    fn reserved_words_rejected_as_predicates() {
        let err = parse_program("iso <- ().").unwrap_err();
        assert!(err.to_string().contains("reserved"));
    }

    #[test]
    fn parse_goal_standalone() {
        let p = parse_program("base item/1.").unwrap();
        let g = parse_goal("item(X) * del.item(X)", &p.program).unwrap();
        assert_eq!(g.var_names.len(), 1);
        assert!(matches!(g.goal, Goal::Seq(_)));
        assert!(parse_goal("nonsense(X)", &p.program).is_err());
    }

    #[test]
    fn round_trip_program_source() {
        let src = "base done/2.\nbase item/1.\n\nworkflow(W) <- task_a(W) * (task_b(W) | task_c(W)).\ntask_a(W) <- item(W) * ins.done(W, a).\ntask_b(W) <- ins.done(W, b).\ntask_c(W) <- iso { ins.done(W, c) }.\n";
        let p1 = parse_program(src).unwrap();
        let rendered = p1.program.to_source();
        let p2 = parse_program(&rendered).unwrap();
        assert_eq!(p2.program.to_source(), rendered);
        assert_eq!(p1.program.len(), p2.program.len());
        for (a, b) in p1.program.rules().iter().zip(p2.program.rules()) {
            assert_eq!(a.head, b.head);
            assert_eq!(a.body, b.body);
        }
    }

    #[test]
    fn classify_example_31_style_workflow() {
        // Example 3.1 of the paper (shape): a workflow of tasks and a
        // sub-workflow, some concurrent.
        let src = r#"
            base item/1.
            base done/2.
            workflow(W) <- task1(W) * (task2(W) | subflow(W)) * task5(W).
            subflow(W) <- task3(W) * task4(W).
            task1(W) <- item(W) * ins.done(W, t1).
            task2(W) <- ins.done(W, t2).
            task3(W) <- ins.done(W, t3).
            task4(W) <- ins.done(W, t4).
            task5(W) <- done(W, t2) * done(W, t4) * ins.done(W, t5).
            ?- workflow(w1).
        "#;
        let p = parse_program(src).unwrap();
        let rep = FragmentReport::classify(&p.program, &p.goals[0].goal);
        assert_eq!(rep.fragment, Fragment::Nonrecursive);
    }

    #[test]
    fn event_declarations_and_triggers_parse() {
        let src = r#"
            event sample/1.
            event result/2.
            base handled/1.
            handle(S) <- ins.handled(S).
            on within(seq(sample(S), result(S, Q)), 1000) do handle(S).
        "#;
        let p = parse_program(src).unwrap();
        let stored = Pred::new("sample", 2);
        assert!(p.program.is_event(stored));
        assert!(p.program.is_base(stored));
        assert_eq!(p.triggers.len(), 1);
        let t = &p.triggers[0];
        // Pattern and goal share one variable scope: S is var 0 in both.
        assert_eq!(t.var_names[0].as_str(), "S");
        assert_eq!(t.goal, Goal::atom("handle", vec![Term::var(0)]));
        assert_eq!(
            t.to_source(),
            "on within(seq(sample(S), result(S, Q)), 1000) do handle(S)."
        );
    }

    #[test]
    fn trigger_pattern_leaves_must_be_events() {
        let err = parse_program("base p/1. on p(X) do ().").unwrap_err();
        assert!(err.to_string().contains("event"), "{err}");
        // Wrong arity in the pattern is also rejected.
        let err = parse_program("event e/1. on e(X, Y) do ().").unwrap_err();
        assert!(err.to_string().contains("event"), "{err}");
    }

    #[test]
    fn ins_del_and_init_on_event_relations_rejected() {
        let err = parse_program("event e/1. r <- ins.e(a, 1).").unwrap_err();
        assert!(err.to_string().contains("append-only"), "{err}");
        let err = parse_program("event e/1. init e(a, 1).").unwrap_err();
        assert!(err.to_string().contains("event ingestion"), "{err}");
    }

    #[test]
    fn rules_may_read_event_history_with_timestamp_column() {
        let src = "event e/1. recent(X) <- e(X, T) * T >= 100.";
        let p = parse_program(src).unwrap();
        assert_eq!(p.program.len(), 1);
    }

    #[test]
    fn within_bound_must_be_nonnegative() {
        let err = parse_program("event e/1. on within(e(X), -5) do ().").unwrap_err();
        assert!(err.to_string().contains("non-negative"), "{err}");
    }

    #[test]
    fn event_on_do_are_reserved() {
        assert!(parse_program("event <- ().").is_err());
        assert!(parse_program("on <- ().").is_err());
        assert!(parse_program("do <- ().").is_err());
    }

    #[test]
    fn parse_event_requests() {
        use td_core::Value;
        let (name, args, ts) = parse_event("sample(s1, -3)").unwrap();
        assert_eq!(name, "sample");
        assert_eq!(args, vec![Value::sym("s1"), Value::Int(-3)]);
        assert_eq!(ts, None);
        let (name, args, ts) = parse_event("tick at 42").unwrap();
        assert_eq!(name, "tick");
        assert!(args.is_empty());
        assert_eq!(ts, Some(42));
        assert!(parse_event("sample(X)").is_err(), "variables rejected");
        assert!(parse_event("sample(a) at -1").is_err(), "negative ts");
        assert!(parse_event("sample(a) trailing").is_err());
        assert!(parse_event("").is_err());
    }

    #[test]
    fn lexer_error_surfaces() {
        let err = parse_program("r <- @.").unwrap_err();
        assert!(err.to_string().contains("unexpected character"));
    }

    #[test]
    fn missing_dot_reported_with_location() {
        let err = parse_program("base t/0. r <- ins.t").unwrap_err();
        let msg = err.render("base t/0. r <- ins.t");
        assert!(msg.contains("expected"), "{msg}");
    }
}

#[cfg(test)]
mod edge_case_tests {
    use super::*;
    use td_core::{Goal, Term};

    #[test]
    fn deeply_nested_parens_parse_up_to_the_limit() {
        let nest = |depth: usize| {
            let mut src = String::from("base t/0. r <- ");
            src.push_str(&"(".repeat(depth));
            src.push_str("ins.t");
            src.push_str(&")".repeat(depth));
            src.push('.');
            src
        };
        let p = parse_program(&nest(100)).expect("100 levels parse");
        assert_eq!(p.program.rules()[0].body, Goal::ins("t", vec![]));
        // Beyond the limit: a clean diagnostic, not a stack overflow.
        let err = parse_program(&nest(400)).unwrap_err();
        assert!(err.to_string().contains("nesting deeper"), "{err}");
    }

    #[test]
    fn long_serial_chains_parse_flat() {
        let n = 500;
        let mut src = String::from("base t/1. r <- ");
        let steps: Vec<String> = (0..n).map(|i| format!("ins.t({i})")).collect();
        src.push_str(&steps.join(" * "));
        src.push('.');
        let p = parse_program(&src).unwrap();
        let Goal::Seq(steps) = &p.program.rules()[0].body else {
            panic!("expected a flat Seq");
        };
        assert_eq!(steps.len(), n);
    }

    #[test]
    fn crlf_and_tab_whitespace() {
        let p = parse_program("base t/1.\r\n\tr <- ins.t(1).\r\n").unwrap();
        assert_eq!(p.program.len(), 1);
    }

    #[test]
    fn comment_at_eof_without_newline() {
        let p = parse_program("base t/0. % trailing").unwrap();
        assert!(p.program.is_empty());
        let p = parse_program("base t/0. // trailing").unwrap();
        assert!(p.program.is_empty());
    }

    #[test]
    fn arity_zero_declaration_and_use() {
        let p = parse_program("base flag/0. r <- ins.flag * flag * del.flag.").unwrap();
        assert_eq!(p.program.rules()[0].body.size(), 4);
    }

    #[test]
    fn integer_terms_in_every_position() {
        let p = parse_program("base p/3. r <- p(-1, 0, 99) * ins.p(1, 2, 3).").unwrap();
        let Goal::Seq(steps) = &p.program.rules()[0].body else {
            panic!()
        };
        let Goal::Atom(a) = &steps[0] else { panic!() };
        assert_eq!(a.args, vec![Term::int(-1), Term::int(0), Term::int(99)]);
    }

    #[test]
    fn keywords_as_atom_arguments_are_rejected() {
        // `iso` etc. are reserved even in argument position.
        assert!(parse_program("base p/1. r <- p(iso).").is_err());
        assert!(parse_program("base p/1. r <- p(or).").is_err());
    }

    #[test]
    fn goal_only_files_are_fine() {
        let p = parse_program("base t/0. ?- ins.t. ?- t.").unwrap();
        assert_eq!(p.goals.len(), 2);
        assert!(p.program.is_empty());
    }

    #[test]
    fn error_spans_point_into_multiline_sources() {
        let src = "base t/0.\n\nr <- t *\n     @bad.\n";
        let err = parse_program(src).unwrap_err();
        let rendered = err.render(src);
        assert!(rendered.contains("4:"), "{rendered}");
    }
}
