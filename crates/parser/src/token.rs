//! Tokens and source positions.

use std::fmt;

/// A half-open byte range in the source, with line/column of its start
/// (1-based) for diagnostics.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Span {
    pub start: usize,
    pub end: usize,
    pub line: u32,
    pub col: u32,
}

impl Span {
    /// A zero-width span at the very start of the input.
    pub fn zero() -> Span {
        Span {
            start: 0,
            end: 0,
            line: 1,
            col: 1,
        }
    }
}

/// Lexical tokens of the `.td` concrete syntax.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum Tok {
    /// Lowercase-initial identifier: predicate or constant name.
    Ident(String),
    /// Uppercase- or `_`-initial identifier: variable name.
    Var(String),
    /// Integer literal.
    Int(i64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `{`
    LBrace,
    /// `}`
    RBrace,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `*`
    Star,
    /// `|`
    Pipe,
    /// `/`
    Slash,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `<-`
    Arrow,
    /// `?-`
    Query,
    /// `=`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// End of input.
    Eof,
}

impl fmt::Display for Tok {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Tok::Ident(s) => write!(f, "`{s}`"),
            Tok::Var(s) => write!(f, "variable `{s}`"),
            Tok::Int(i) => write!(f, "integer `{i}`"),
            Tok::LParen => write!(f, "`(`"),
            Tok::RParen => write!(f, "`)`"),
            Tok::LBrace => write!(f, "`{{`"),
            Tok::RBrace => write!(f, "`}}`"),
            Tok::Comma => write!(f, "`,`"),
            Tok::Dot => write!(f, "`.`"),
            Tok::Star => write!(f, "`*`"),
            Tok::Pipe => write!(f, "`|`"),
            Tok::Slash => write!(f, "`/`"),
            Tok::Plus => write!(f, "`+`"),
            Tok::Minus => write!(f, "`-`"),
            Tok::Arrow => write!(f, "`<-`"),
            Tok::Query => write!(f, "`?-`"),
            Tok::Eq => write!(f, "`=`"),
            Tok::Ne => write!(f, "`!=`"),
            Tok::Lt => write!(f, "`<`"),
            Tok::Le => write!(f, "`<=`"),
            Tok::Gt => write!(f, "`>`"),
            Tok::Ge => write!(f, "`>=`"),
            Tok::Eof => write!(f, "end of input"),
        }
    }
}

/// A token with its source span.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct Token {
    pub tok: Tok,
    pub span: Span,
}
