//! Recursive-descent parser for `.td` programs.
//!
//! A program is a sequence of statements, each ended by `.`:
//!
//! ```text
//! base item/1.                          % declare a base relation
//! init item(w1).                        % initial database tuple
//! workflow(W) <- t1(W) * (t2(W) | t3(W)) * t4(W).
//! t1(W) <- ins.done(W, t1).            % rules
//! ready.                                % derived fact: ready <- ().
//! ?- workflow(w1).                      % goal to execute
//! ```
//!
//! The parser recovers at statement boundaries, so one file can report many
//! errors in a single pass.

use crate::error::{ParseError, ParseErrorKind, ParseErrors};
use crate::lexer::Lexer;
use crate::token::{Span, Tok, Token};
use td_core::event::{validate_trigger, EventPattern, Trigger};
use td_core::{Atom, Builtin, Goal, Program, Rule, Symbol, Term, Value};

/// A goal together with the names of its free variables (display names for
/// answer bindings).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParsedGoal {
    pub goal: Goal,
    pub var_names: Vec<Symbol>,
    pub span: Span,
}

/// The result of parsing a `.td` file.
#[derive(Clone, Debug)]
pub struct ParsedProgram {
    /// The validated program (base declarations + rules).
    pub program: Program,
    /// `init` statements: ground atoms to load into the initial database.
    pub init: Vec<Atom>,
    /// `?-` statements, in order.
    pub goals: Vec<ParsedGoal>,
    /// `on <pattern> do <goal>.` triggers, in declaration order.
    pub triggers: Vec<Trigger>,
}

/// Names that cannot be used as predicates or constants.
const RESERVED: &[&str] = &[
    "base", "init", "ins", "del", "iso", "not", "fail", "or", "is", "event", "on", "do",
];

/// Parse a complete `.td` source file.
pub fn parse_program(src: &str) -> Result<ParsedProgram, ParseErrors> {
    let tokens = Lexer::new(src)
        .tokenize()
        .map_err(|e| ParseErrors { errors: vec![e] })?;
    let mut p = Parser::new(tokens);
    p.program()
}

/// Parse a standalone goal (e.g. CLI input), validating it against
/// `program`.
pub fn parse_goal(src: &str, program: &Program) -> Result<ParsedGoal, ParseErrors> {
    let tokens = Lexer::new(src)
        .tokenize()
        .map_err(|e| ParseErrors { errors: vec![e] })?;
    let mut p = Parser::new(tokens);
    let mut scope = VarScope::default();
    let start = p.span();
    let goal = p
        .goal(&mut scope)
        .map_err(|e| ParseErrors { errors: vec![e] })?;
    // Optional trailing `.`
    if p.peek() == &Tok::Dot {
        p.bump();
    }
    if p.peek() != &Tok::Eof {
        return Err(ParseErrors {
            errors: vec![p.unexpected("end of goal")],
        });
    }
    td_core::validate::validate_goal(program, &goal).map_err(|e| ParseErrors {
        errors: vec![ParseError::new(
            ParseErrorKind::Invalid(e.to_string()),
            start,
        )],
    })?;
    Ok(ParsedGoal {
        goal,
        var_names: scope.names,
        span: start,
    })
}

/// Parse an event-ingestion request body: `name(arg, ...) [at <ts>]`.
///
/// This is the payload of the serve protocol's `event` verb and of
/// `td client event`. Arguments must be ground (symbols or integers); the
/// optional `at <ts>` clause supplies an explicit non-negative timestamp,
/// otherwise the server assigns its own clock reading.
pub fn parse_event(src: &str) -> Result<(String, Vec<Value>, Option<u64>), ParseErrors> {
    let one = |e: ParseError| ParseErrors { errors: vec![e] };
    let tokens = Lexer::new(src).tokenize().map_err(one)?;
    let mut p = Parser::new(tokens);
    let (name, span) = p.ident("an event name").map_err(one)?;
    p.check_not_reserved(&name, span).map_err(one)?;
    let mut scope = VarScope::default();
    let mut args = Vec::new();
    if p.peek() == &Tok::LParen {
        p.bump();
        loop {
            let tspan = p.span();
            let term = p.term(&mut scope).map_err(one)?;
            match term.as_value() {
                Some(v) => args.push(v),
                None => {
                    return Err(one(ParseError::new(
                        ParseErrorKind::Invalid(
                            "event arguments must be ground (no variables)".to_owned(),
                        ),
                        tspan,
                    )))
                }
            }
            match p.peek() {
                Tok::Comma => {
                    p.bump();
                }
                Tok::RParen => {
                    p.bump();
                    break;
                }
                _ => return Err(one(p.unexpected("`,` or `)`"))),
            }
        }
    }
    let ts = match p.peek() {
        Tok::Ident(s) if s == "at" => {
            p.bump();
            match p.peek() {
                Tok::Int(n) if *n >= 0 => {
                    let n = *n;
                    p.bump();
                    Some(u64::try_from(n).expect("non-negative i64 fits u64"))
                }
                _ => return Err(one(p.unexpected("a non-negative timestamp"))),
            }
        }
        _ => None,
    };
    if p.peek() != &Tok::Eof {
        return Err(one(p.unexpected("end of event")));
    }
    Ok((name, args, ts))
}

#[derive(Default)]
struct VarScope {
    names: Vec<Symbol>,
    anon: u32,
}

impl VarScope {
    fn lookup(&mut self, name: &str) -> Term {
        if name == "_" {
            // Each bare underscore is a fresh variable.
            let id = u32::try_from(self.names.len()).expect("too many variables");
            self.anon += 1;
            self.names.push(Symbol::intern(&format!("_{}", self.anon)));
            return Term::var(id);
        }
        let sym = Symbol::intern(name);
        if let Some(i) = self.names.iter().position(|n| *n == sym) {
            Term::var(u32::try_from(i).expect("too many variables"))
        } else {
            let id = u32::try_from(self.names.len()).expect("too many variables");
            self.names.push(sym);
            Term::var(id)
        }
    }
}

/// Maximum bracket/operator nesting depth. Recursive descent uses the call
/// stack; beyond this we report a clean error instead of overflowing.
const MAX_DEPTH: usize = 128;

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
    depth: usize,
}

/// The outcome of parsing a primary item: either definitely a goal, or a
/// bare term that may become the left side of a builtin.
enum Primary {
    Goal(Goal),
    /// A term; `goal_form` is `Some(goal)` if the term could also stand
    /// alone as a goal (a bare identifier is a 0-ary atom).
    Term(Term, Option<Goal>),
}

impl Parser {
    fn new(tokens: Vec<Token>) -> Parser {
        Parser {
            tokens,
            pos: 0,
            depth: 0,
        }
    }

    fn enter(&mut self) -> Result<(), ParseError> {
        self.depth += 1;
        if self.depth > MAX_DEPTH {
            Err(ParseError::new(
                ParseErrorKind::TooDeep { limit: MAX_DEPTH },
                self.span(),
            ))
        } else {
            Ok(())
        }
    }

    fn leave(&mut self) {
        self.depth -= 1;
    }

    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn peek2(&self) -> &Tok {
        let i = (self.pos + 1).min(self.tokens.len() - 1);
        &self.tokens[i].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, tok: Tok, what: &str) -> Result<Token, ParseError> {
        if self.peek() == &tok {
            Ok(self.bump())
        } else {
            Err(self.unexpected(what))
        }
    }

    fn unexpected(&self, expected: &str) -> ParseError {
        ParseError::new(
            ParseErrorKind::Expected {
                expected: expected.to_owned(),
                found: self.peek().to_string(),
            },
            self.span(),
        )
    }

    fn ident(&mut self, what: &str) -> Result<(String, Span), ParseError> {
        match self.peek() {
            Tok::Ident(_) => {
                let span = self.span();
                let Tok::Ident(s) = self.bump().tok else {
                    unreachable!()
                };
                Ok((s, span))
            }
            _ => Err(self.unexpected(what)),
        }
    }

    fn check_not_reserved(&self, name: &str, span: Span) -> Result<(), ParseError> {
        if RESERVED.contains(&name) {
            Err(ParseError::new(
                ParseErrorKind::Expected {
                    expected: "a predicate or constant name".to_owned(),
                    found: format!("reserved word `{name}`"),
                },
                span,
            ))
        } else {
            Ok(())
        }
    }

    /// Skip to just past the next `.` (statement recovery).
    fn sync(&mut self) {
        loop {
            match self.peek() {
                Tok::Dot => {
                    self.bump();
                    return;
                }
                Tok::Eof => return,
                _ => {
                    self.bump();
                }
            }
        }
    }

    fn program(&mut self) -> Result<ParsedProgram, ParseErrors> {
        let mut errors = Vec::new();
        let mut builder = Program::builder();
        let mut init: Vec<Atom> = Vec::new();
        let mut goals: Vec<ParsedGoal> = Vec::new();
        let mut triggers: Vec<Trigger> = Vec::new();
        let mut init_spans: Vec<Span> = Vec::new();
        let mut goal_spans: Vec<Span> = Vec::new();
        let mut trigger_spans: Vec<Span> = Vec::new();

        while self.peek() != &Tok::Eof {
            match self.statement() {
                Ok(Stmt::Base(name, arity)) => {
                    builder = builder.base_pred(&name, arity);
                }
                Ok(Stmt::Event(name, arity)) => {
                    builder = builder.event_pred(&name, arity);
                }
                Ok(Stmt::Init(atom, span)) => {
                    init.push(atom);
                    init_spans.push(span);
                }
                Ok(Stmt::Rule(rule)) => {
                    builder = builder.rule(rule);
                }
                Ok(Stmt::Goal(g)) => {
                    goal_spans.push(g.span);
                    goals.push(g);
                }
                Ok(Stmt::Trigger(t, span)) => {
                    triggers.push(t);
                    trigger_spans.push(span);
                }
                Err(e) => {
                    errors.push(e);
                    self.sync();
                }
            }
        }

        // Build & validate the program.
        let program = match builder.build() {
            Ok(p) => p,
            Err(e) => {
                errors.push(ParseError::new(
                    ParseErrorKind::Invalid(e.to_string()),
                    Span::zero(),
                ));
                return Err(ParseErrors { errors });
            }
        };

        // Validate init atoms: ground, base predicate, not an event relation
        // (event tuples arrive only via the server's ingestion surface).
        for (atom, span) in init.iter().zip(&init_spans) {
            if program.is_event(atom.pred) {
                errors.push(ParseError::new(
                    ParseErrorKind::Invalid(format!(
                        "init tuple for event relation `{}`; event tuples \
                         arrive only via event ingestion",
                        atom.pred
                    )),
                    *span,
                ));
            } else if !program.is_base(atom.pred) {
                errors.push(ParseError::new(
                    ParseErrorKind::Invalid(format!(
                        "init tuple for `{}` which is not a base relation",
                        atom.pred
                    )),
                    *span,
                ));
            } else if !atom.is_ground() {
                errors.push(ParseError::new(
                    ParseErrorKind::Invalid(format!("init tuple `{atom}` is not ground")),
                    *span,
                ));
            }
        }

        // Validate goals.
        for (g, span) in goals.iter().zip(&goal_spans) {
            if let Err(e) = td_core::validate::validate_goal(&program, &g.goal) {
                errors.push(ParseError::new(
                    ParseErrorKind::Invalid(e.to_string()),
                    *span,
                ));
            }
        }

        // Validate triggers: pattern leaves name declared event relations at
        // the declared arity, and the goal validates like a query.
        for (t, span) in triggers.iter().zip(&trigger_spans) {
            if let Err(e) = validate_trigger(&program, t) {
                errors.push(ParseError::new(
                    ParseErrorKind::Invalid(e.to_string()),
                    *span,
                ));
            }
        }

        if errors.is_empty() {
            Ok(ParsedProgram {
                program,
                init,
                goals,
                triggers,
            })
        } else {
            Err(ParseErrors { errors })
        }
    }

    fn statement(&mut self) -> Result<Stmt, ParseError> {
        match self.peek() {
            Tok::Ident(s) if s == "base" && matches!(self.peek2(), Tok::Ident(_)) => {
                self.bump();
                let (name, span) = self.ident("a relation name")?;
                self.check_not_reserved(&name, span)?;
                self.expect(Tok::Slash, "`/` and an arity")?;
                let arity = match self.peek() {
                    Tok::Int(n) if *n >= 0 => {
                        let n = *n;
                        self.bump();
                        u32::try_from(n).map_err(|_| self.unexpected("a small arity"))?
                    }
                    _ => return Err(self.unexpected("an arity")),
                };
                self.expect(Tok::Dot, "`.`")?;
                Ok(Stmt::Base(name, arity))
            }
            Tok::Ident(s) if s == "event" && matches!(self.peek2(), Tok::Ident(_)) => {
                self.bump();
                let (name, span) = self.ident("an event relation name")?;
                self.check_not_reserved(&name, span)?;
                self.expect(Tok::Slash, "`/` and an arity")?;
                let arity = match self.peek() {
                    Tok::Int(n) if *n >= 0 => {
                        let n = *n;
                        self.bump();
                        u32::try_from(n).map_err(|_| self.unexpected("a small arity"))?
                    }
                    _ => return Err(self.unexpected("an arity")),
                };
                self.expect(Tok::Dot, "`.`")?;
                Ok(Stmt::Event(name, arity))
            }
            Tok::Ident(s) if s == "on" => {
                self.bump();
                let span = self.span();
                let mut scope = VarScope::default();
                let pattern = self.pattern(&mut scope)?;
                match self.peek() {
                    Tok::Ident(s) if s == "do" => {
                        self.bump();
                    }
                    _ => return Err(self.unexpected("`do` and a trigger goal")),
                }
                let goal = self.goal(&mut scope)?;
                self.expect(Tok::Dot, "`.`")?;
                Ok(Stmt::Trigger(
                    Trigger {
                        pattern,
                        goal,
                        var_names: scope.names,
                    },
                    span,
                ))
            }
            Tok::Ident(s) if s == "init" && matches!(self.peek2(), Tok::Ident(_)) => {
                self.bump();
                let span = self.span();
                let mut scope = VarScope::default();
                let atom = self.atom(&mut scope)?;
                self.expect(Tok::Dot, "`.`")?;
                Ok(Stmt::Init(atom, span))
            }
            Tok::Query => {
                self.bump();
                let span = self.span();
                let mut scope = VarScope::default();
                let goal = self.goal(&mut scope)?;
                self.expect(Tok::Dot, "`.`")?;
                Ok(Stmt::Goal(ParsedGoal {
                    goal,
                    var_names: scope.names,
                    span,
                }))
            }
            _ => {
                // Rule or derived fact.
                let mut scope = VarScope::default();
                let head = self.atom(&mut scope)?;
                let body = if self.peek() == &Tok::Arrow {
                    self.bump();
                    self.goal(&mut scope)?
                } else {
                    Goal::True
                };
                self.expect(Tok::Dot, "`.`")?;
                Ok(Stmt::Rule(Rule::with_var_names(head, body, scope.names)))
            }
        }
    }

    fn atom(&mut self, scope: &mut VarScope) -> Result<Atom, ParseError> {
        let (name, span) = self.ident("a predicate name")?;
        self.check_not_reserved(&name, span)?;
        let mut args = Vec::new();
        if self.peek() == &Tok::LParen {
            self.bump();
            loop {
                args.push(self.term(scope)?);
                match self.peek() {
                    Tok::Comma => {
                        self.bump();
                    }
                    Tok::RParen => {
                        self.bump();
                        break;
                    }
                    _ => return Err(self.unexpected("`,` or `)`")),
                }
            }
        }
        Ok(Atom::new(&name, args))
    }

    fn term(&mut self, scope: &mut VarScope) -> Result<Term, ParseError> {
        match self.peek().clone() {
            Tok::Var(name) => {
                self.bump();
                Ok(scope.lookup(&name))
            }
            Tok::Int(n) => {
                self.bump();
                Ok(Term::int(n))
            }
            Tok::Ident(name) => {
                let span = self.span();
                self.check_not_reserved(&name, span)?;
                self.bump();
                Ok(Term::sym(&name))
            }
            _ => Err(self.unexpected("a term")),
        }
    }

    fn goal(&mut self, scope: &mut VarScope) -> Result<Goal, ParseError> {
        // par := seq ('|' seq)*
        self.enter()?;
        let result = (|| {
            let mut branches = vec![self.seq(scope)?];
            while self.peek() == &Tok::Pipe {
                self.bump();
                branches.push(self.seq(scope)?);
            }
            Ok(Goal::par(branches))
        })();
        self.leave();
        result
    }

    fn seq(&mut self, scope: &mut VarScope) -> Result<Goal, ParseError> {
        let mut steps = vec![self.unary(scope)?];
        while self.peek() == &Tok::Star {
            self.bump();
            steps.push(self.unary(scope)?);
        }
        Ok(Goal::seq(steps))
    }

    fn unary(&mut self, scope: &mut VarScope) -> Result<Goal, ParseError> {
        let primary = self.primary(scope)?;
        // A term (or term-like atom) may continue as a builtin.
        match primary {
            Primary::Goal(g) => Ok(g),
            Primary::Term(t, goal_form) => match self.peek() {
                Tok::Eq | Tok::Ne | Tok::Lt | Tok::Le | Tok::Gt | Tok::Ge => {
                    let op = match self.bump().tok {
                        Tok::Eq => Builtin::Eq,
                        Tok::Ne => Builtin::Ne,
                        Tok::Lt => Builtin::Lt,
                        Tok::Le => Builtin::Le,
                        Tok::Gt => Builtin::Gt,
                        Tok::Ge => Builtin::Ge,
                        _ => unreachable!(),
                    };
                    let rhs = self.term(scope)?;
                    Ok(Goal::Builtin(op, vec![t, rhs]))
                }
                Tok::Ident(s) if s == "is" => {
                    self.bump();
                    let a = self.term(scope)?;
                    let op = match self.peek() {
                        Tok::Plus => Builtin::Add,
                        Tok::Minus => Builtin::Sub,
                        Tok::Star => Builtin::Mul,
                        _ => {
                            return Err(ParseError::new(
                                ParseErrorKind::MalformedArith,
                                self.span(),
                            ))
                        }
                    };
                    self.bump();
                    let b = self.term(scope)?;
                    Ok(Goal::Builtin(op, vec![a, b, t]))
                }
                _ => goal_form.ok_or_else(|| self.unexpected("a goal (found a bare term)")),
            },
        }
    }

    fn primary(&mut self, scope: &mut VarScope) -> Result<Primary, ParseError> {
        match self.peek().clone() {
            Tok::Ident(s) if (s == "ins" || s == "del") && self.peek2() == &Tok::Dot => {
                self.bump(); // ins/del
                self.bump(); // .
                let atom = self.atom(scope)?;
                Ok(Primary::Goal(if s == "ins" {
                    Goal::Ins(atom)
                } else {
                    Goal::Del(atom)
                }))
            }
            Tok::Ident(s) if s == "iso" && self.peek2() == &Tok::LBrace => {
                self.bump();
                self.bump();
                let inner = self.goal_or_choice(scope)?;
                self.expect(Tok::RBrace, "`}`")?;
                Ok(Primary::Goal(Goal::iso(inner)))
            }
            Tok::Ident(s) if s == "not" => {
                self.bump();
                let atom = self.atom(scope)?;
                Ok(Primary::Goal(Goal::NotAtom(atom)))
            }
            Tok::Ident(s) if s == "fail" => {
                self.bump();
                Ok(Primary::Goal(Goal::Fail))
            }
            Tok::Ident(_) => {
                let atom = self.atom(scope)?;
                if atom.args.is_empty() {
                    // Bare identifier: 0-ary atom, or a constant term if an
                    // operator follows.
                    let name = atom.pred.name;
                    Ok(Primary::Term(
                        Term::Val(td_core::Value::Sym(name)),
                        Some(Goal::Atom(atom)),
                    ))
                } else {
                    Ok(Primary::Goal(Goal::Atom(atom)))
                }
            }
            Tok::Var(name) => {
                self.bump();
                Ok(Primary::Term(scope.lookup(&name), None))
            }
            Tok::Int(n) => {
                self.bump();
                Ok(Primary::Term(Term::int(n), None))
            }
            Tok::LParen => {
                self.bump();
                if self.peek() == &Tok::RParen {
                    self.bump();
                    return Ok(Primary::Goal(Goal::True));
                }
                let inner = self.goal(scope)?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(Primary::Goal(inner))
            }
            Tok::LBrace => {
                self.bump();
                let inner = self.goal_or_choice(scope)?;
                self.expect(Tok::RBrace, "`}`")?;
                Ok(Primary::Goal(inner))
            }
            _ => Err(self.unexpected("a goal")),
        }
    }

    /// A complex-event pattern:
    /// `seq(p, q)` | `and(p, q)` | `within(p, Δt)` | event atom.
    /// `seq`, `and` and `within` are contextual: they act as combinators
    /// only when followed by `(` inside a pattern.
    fn pattern(&mut self, scope: &mut VarScope) -> Result<EventPattern, ParseError> {
        self.enter()?;
        let result = (|| match self.peek().clone() {
            Tok::Ident(s) if (s == "seq" || s == "and") && self.peek2() == &Tok::LParen => {
                self.bump();
                self.bump();
                let l = self.pattern(scope)?;
                self.expect(Tok::Comma, "`,`")?;
                let r = self.pattern(scope)?;
                self.expect(Tok::RParen, "`)`")?;
                Ok(if s == "seq" {
                    EventPattern::Seq(Box::new(l), Box::new(r))
                } else {
                    EventPattern::And(Box::new(l), Box::new(r))
                })
            }
            Tok::Ident(s) if s == "within" && self.peek2() == &Tok::LParen => {
                self.bump();
                self.bump();
                let p = self.pattern(scope)?;
                self.expect(Tok::Comma, "`,`")?;
                let bound = match self.peek() {
                    Tok::Int(n) if *n >= 0 => {
                        let n = *n;
                        self.bump();
                        u64::try_from(n).expect("non-negative i64 fits u64")
                    }
                    _ => return Err(self.unexpected("a non-negative window bound")),
                };
                self.expect(Tok::RParen, "`)`")?;
                Ok(EventPattern::Within(Box::new(p), bound))
            }
            Tok::Ident(_) => Ok(EventPattern::Atom(self.atom(scope)?)),
            _ => Err(self.unexpected("an event pattern")),
        })();
        self.leave();
        result
    }

    /// Inside braces: `goal (or goal)*`.
    fn goal_or_choice(&mut self, scope: &mut VarScope) -> Result<Goal, ParseError> {
        let mut branches = vec![self.goal(scope)?];
        while matches!(self.peek(), Tok::Ident(s) if s == "or") {
            self.bump();
            branches.push(self.goal(scope)?);
        }
        Ok(Goal::choice(branches))
    }
}

enum Stmt {
    Base(String, u32),
    Event(String, u32),
    Init(Atom, Span),
    Rule(Rule),
    Goal(ParsedGoal),
    Trigger(Trigger, Span),
}
