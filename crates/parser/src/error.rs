//! Parse errors with source snippets.

use crate::token::Span;
use std::fmt;

/// What went wrong.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum ParseErrorKind {
    /// A character the lexer does not recognize.
    UnexpectedChar(char),
    /// Integer literal outside `i64`.
    IntOutOfRange(String),
    /// The parser expected something else here.
    Expected { expected: String, found: String },
    /// `is` expressions take exactly `term op term`.
    MalformedArith,
    /// Goal nesting exceeds the parser's depth limit.
    TooDeep { limit: usize },
    /// A program-level validation error (from `td-core`), attached to the
    /// statement that triggered it.
    Invalid(String),
}

/// A parse error at a source location.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseError {
    pub kind: ParseErrorKind,
    pub span: Span,
}

impl ParseError {
    pub fn new(kind: ParseErrorKind, span: Span) -> ParseError {
        ParseError { kind, span }
    }

    /// Render with a source snippet and caret, e.g.
    ///
    /// ```text
    /// 3:9: expected `.`, found `)`
    ///   task(W <- p(W).
    ///         ^
    /// ```
    pub fn render(&self, src: &str) -> String {
        let mut out = format!("{}:{}: {}", self.span.line, self.span.col, self);
        // An end-of-input error can point one line past the last; clamp so
        // the snippet still shows where the input ended.
        let (line, col) = match src.lines().nth(self.span.line as usize - 1) {
            Some(line) => (Some(line), self.span.col as usize),
            None => {
                let last = src.lines().last();
                (last, last.map_or(1, |l| l.chars().count() + 1))
            }
        };
        if let Some(line) = line {
            out.push_str(&format!("\n  {line}\n  "));
            for _ in 1..col {
                out.push(' ');
            }
            out.push('^');
        }
        out
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.kind {
            ParseErrorKind::UnexpectedChar(c) => write!(f, "unexpected character `{c}`"),
            ParseErrorKind::IntOutOfRange(s) => {
                write!(f, "integer literal `{s}` does not fit in 64 bits")
            }
            ParseErrorKind::Expected { expected, found } => {
                write!(f, "expected {expected}, found {found}")
            }
            ParseErrorKind::MalformedArith => {
                write!(f, "`is` takes exactly `Var is Term op Term`")
            }
            ParseErrorKind::TooDeep { limit } => {
                write!(f, "goal nesting deeper than {limit} levels")
            }
            ParseErrorKind::Invalid(msg) => write!(f, "{msg}"),
        }
    }
}

impl std::error::Error for ParseError {}

/// All errors found in one source file (the parser recovers at statement
/// boundaries and keeps going).
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct ParseErrors {
    pub errors: Vec<ParseError>,
}

impl ParseErrors {
    /// Render every error with its snippet.
    pub fn render(&self, src: &str) -> String {
        self.errors
            .iter()
            .map(|e| e.render(src))
            .collect::<Vec<_>>()
            .join("\n")
    }
}

impl fmt::Display for ParseErrors {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, e) in self.errors.iter().enumerate() {
            if i > 0 {
                writeln!(f)?;
            }
            write!(f, "{}:{}: {}", e.span.line, e.span.col, e)?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseErrors {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_points_at_the_column() {
        let src = "abc def\nghi jkl";
        let err = ParseError::new(
            ParseErrorKind::Expected {
                expected: "`.`".into(),
                found: "`jkl`".into(),
            },
            Span {
                start: 12,
                end: 15,
                line: 2,
                col: 5,
            },
        );
        let r = err.render(src);
        assert!(r.contains("2:5: expected `.`, found `jkl`"));
        assert!(r.contains("\n  ghi jkl\n      ^"));
    }

    #[test]
    fn multi_error_display() {
        let e1 = ParseError::new(ParseErrorKind::MalformedArith, Span::zero());
        let e2 = ParseError::new(ParseErrorKind::UnexpectedChar('~'), Span::zero());
        let all = ParseErrors {
            errors: vec![e1, e2],
        };
        let s = all.to_string();
        assert!(s.contains("is"));
        assert!(s.contains('~'));
        assert_eq!(s.lines().count(), 2);
    }
}
