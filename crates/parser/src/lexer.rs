//! The lexer for `.td` source.
//!
//! Comments run from `%` or `//` to end of line. Identifiers starting with a
//! lowercase letter are constants/predicate names; identifiers starting with
//! an uppercase letter or `_` are variables (Prolog convention — the paper's
//! examples are written this way).

use crate::error::{ParseError, ParseErrorKind};
use crate::token::{Span, Tok, Token};

pub struct Lexer<'a> {
    src: &'a [u8],
    pos: usize,
    line: u32,
    col: u32,
}

impl<'a> Lexer<'a> {
    pub fn new(src: &'a str) -> Lexer<'a> {
        Lexer {
            src: src.as_bytes(),
            pos: 0,
            line: 1,
            col: 1,
        }
    }

    /// Tokenize the whole input. Returns tokens (ending with `Eof`) or the
    /// first lexical error.
    pub fn tokenize(mut self) -> Result<Vec<Token>, ParseError> {
        let mut out = Vec::new();
        loop {
            self.skip_trivia();
            let span_start = self.here();
            let Some(c) = self.peek() else {
                out.push(Token {
                    tok: Tok::Eof,
                    span: self.span_from(span_start),
                });
                return Ok(out);
            };
            let tok = match c {
                b'(' => self.take(Tok::LParen),
                b')' => self.take(Tok::RParen),
                b'{' => self.take(Tok::LBrace),
                b'}' => self.take(Tok::RBrace),
                b',' => self.take(Tok::Comma),
                b'.' => self.take(Tok::Dot),
                b'*' => self.take(Tok::Star),
                b'|' => self.take(Tok::Pipe),
                b'/' => self.take(Tok::Slash),
                b'+' => self.take(Tok::Plus),
                b'=' => self.take(Tok::Eq),
                b'-' => {
                    // negative integer literal or bare minus
                    self.bump();
                    if self.peek().is_some_and(|c| c.is_ascii_digit()) {
                        let n = self.lex_int(span_start)?;
                        Tok::Int(-n)
                    } else {
                        Tok::Minus
                    }
                }
                b'<' => {
                    self.bump();
                    match self.peek() {
                        Some(b'-') => {
                            self.bump();
                            Tok::Arrow
                        }
                        Some(b'=') => {
                            self.bump();
                            Tok::Le
                        }
                        _ => Tok::Lt,
                    }
                }
                b'>' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Ge
                    } else {
                        Tok::Gt
                    }
                }
                b'!' => {
                    self.bump();
                    if self.peek() == Some(b'=') {
                        self.bump();
                        Tok::Ne
                    } else {
                        return Err(ParseError::new(
                            ParseErrorKind::UnexpectedChar('!'),
                            self.span_from(span_start),
                        ));
                    }
                }
                b'?' => {
                    self.bump();
                    if self.peek() == Some(b'-') {
                        self.bump();
                        Tok::Query
                    } else {
                        return Err(ParseError::new(
                            ParseErrorKind::UnexpectedChar('?'),
                            self.span_from(span_start),
                        ));
                    }
                }
                c if c.is_ascii_digit() => {
                    let n = self.lex_int(span_start)?;
                    Tok::Int(n)
                }
                c if c.is_ascii_lowercase() => Tok::Ident(self.lex_word()),
                c if c.is_ascii_uppercase() || c == b'_' => Tok::Var(self.lex_word()),
                other => {
                    return Err(ParseError::new(
                        ParseErrorKind::UnexpectedChar(other as char),
                        self.span_from(span_start),
                    ))
                }
            };
            out.push(Token {
                tok,
                span: self.span_from(span_start),
            });
        }
    }

    fn here(&self) -> (usize, u32, u32) {
        (self.pos, self.line, self.col)
    }

    fn span_from(&self, (start, line, col): (usize, u32, u32)) -> Span {
        Span {
            start,
            end: self.pos,
            line,
            col,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.src.get(self.pos).copied()
    }

    fn peek2(&self) -> Option<u8> {
        self.src.get(self.pos + 1).copied()
    }

    fn bump(&mut self) {
        if let Some(c) = self.peek() {
            self.pos += 1;
            if c == b'\n' {
                self.line += 1;
                self.col = 1;
            } else {
                self.col += 1;
            }
        }
    }

    fn take(&mut self, tok: Tok) -> Tok {
        self.bump();
        tok
    }

    fn skip_trivia(&mut self) {
        loop {
            match self.peek() {
                Some(c) if c.is_ascii_whitespace() => self.bump(),
                Some(b'%') => self.skip_line(),
                Some(b'/') if self.peek2() == Some(b'/') => self.skip_line(),
                _ => return,
            }
        }
    }

    fn skip_line(&mut self) {
        while let Some(c) = self.peek() {
            if c == b'\n' {
                return;
            }
            self.bump();
        }
    }

    fn lex_int(&mut self, span_start: (usize, u32, u32)) -> Result<i64, ParseError> {
        let start = self.pos;
        while self.peek().is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
        }
        let text = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii digits");
        text.parse::<i64>().map_err(|_| {
            ParseError::new(
                ParseErrorKind::IntOutOfRange(text.to_owned()),
                self.span_from(span_start),
            )
        })
    }

    fn lex_word(&mut self) -> String {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|c| c.is_ascii_alphanumeric() || c == b'_')
        {
            self.bump();
        }
        String::from_utf8(self.src[start..self.pos].to_vec()).expect("ascii word")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Tok> {
        Lexer::new(src)
            .tokenize()
            .unwrap()
            .into_iter()
            .map(|t| t.tok)
            .collect()
    }

    #[test]
    fn lex_rule_shape() {
        let t = toks("r(X) <- p(X) * ins.q(X).");
        assert_eq!(
            t,
            vec![
                Tok::Ident("r".into()),
                Tok::LParen,
                Tok::Var("X".into()),
                Tok::RParen,
                Tok::Arrow,
                Tok::Ident("p".into()),
                Tok::LParen,
                Tok::Var("X".into()),
                Tok::RParen,
                Tok::Star,
                Tok::Ident("ins".into()),
                Tok::Dot,
                Tok::Ident("q".into()),
                Tok::LParen,
                Tok::Var("X".into()),
                Tok::RParen,
                Tok::Dot,
                Tok::Eof,
            ]
        );
    }

    #[test]
    fn lex_operators() {
        assert_eq!(
            toks("< <= > >= = != <- ?- | * / + -"),
            vec![
                Tok::Lt,
                Tok::Le,
                Tok::Gt,
                Tok::Ge,
                Tok::Eq,
                Tok::Ne,
                Tok::Arrow,
                Tok::Query,
                Tok::Pipe,
                Tok::Star,
                Tok::Slash,
                Tok::Plus,
                Tok::Minus,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn lex_integers_including_negative() {
        assert_eq!(
            toks("0 42 -17"),
            vec![Tok::Int(0), Tok::Int(42), Tok::Int(-17), Tok::Eof]
        );
    }

    #[test]
    fn comments_are_skipped() {
        let t = toks("p. % trailing comment\n// full line\nq.");
        assert_eq!(
            t,
            vec![
                Tok::Ident("p".into()),
                Tok::Dot,
                Tok::Ident("q".into()),
                Tok::Dot,
                Tok::Eof
            ]
        );
    }

    #[test]
    fn slash_alone_is_a_token_not_comment() {
        let t = toks("p/2");
        assert_eq!(
            t,
            vec![Tok::Ident("p".into()), Tok::Slash, Tok::Int(2), Tok::Eof]
        );
    }

    #[test]
    fn variables_and_underscore() {
        assert_eq!(
            toks("X _foo Abc_1"),
            vec![
                Tok::Var("X".into()),
                Tok::Var("_foo".into()),
                Tok::Var("Abc_1".into()),
                Tok::Eof
            ]
        );
    }

    #[test]
    fn spans_track_lines_and_columns() {
        let tokens = Lexer::new("p.\n  q.").tokenize().unwrap();
        let q = &tokens[2];
        assert_eq!(q.tok, Tok::Ident("q".into()));
        assert_eq!(q.span.line, 2);
        assert_eq!(q.span.col, 3);
    }

    #[test]
    fn unexpected_char_errors() {
        let err = Lexer::new("p @ q").tokenize().unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedChar('@')));
        assert_eq!(err.span.col, 3);
    }

    #[test]
    fn bang_without_eq_errors() {
        let err = Lexer::new("a ! b").tokenize().unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::UnexpectedChar('!')));
    }

    #[test]
    fn int_out_of_range_errors() {
        let err = Lexer::new("99999999999999999999999")
            .tokenize()
            .unwrap_err();
        assert!(matches!(err.kind, ParseErrorKind::IntOutOfRange(_)));
    }
}
