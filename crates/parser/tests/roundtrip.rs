//! Generative round-trip property: random programs built through the
//! `td-core` builders render to source (`Program::to_source`), parse back,
//! and re-render identically; goals survive the same loop.

use proptest::prelude::*;
use td_core::{Atom, Goal, Program, Term};
use td_parser::parse_program;

/// Random ground-ish goals over a fixed schema with occasional variables
/// X0..X2 (always also used in a leading query atom so rules stay valid).
fn arb_goal(depth: u32) -> impl Strategy<Value = Goal> {
    let term = prop_oneof![
        (0u32..3).prop_map(Term::var),
        (-5i64..20).prop_map(Term::int),
        "[a-z][a-z0-9_]{0,6}"
            .prop_filter("reserved words are not constants", |s| {
                !matches!(
                    s.as_str(),
                    "base" | "init" | "ins" | "del" | "iso" | "not" | "fail" | "or" | "is"
                )
            })
            .prop_map(|s| Term::sym(&s)),
    ];
    let atom2 = proptest::collection::vec(term.clone(), 2).prop_map(|args| Atom::new("p", args));
    let atom1 = proptest::collection::vec(term, 1).prop_map(|args| Atom::new("q", args));
    let leaf = prop_oneof![
        atom2.clone().prop_map(Goal::Atom),
        atom1.clone().prop_map(Goal::Atom),
        atom2.clone().prop_map(Goal::Ins),
        atom1.clone().prop_map(Goal::Del),
        atom1.prop_map(Goal::NotAtom),
        Just(Goal::True),
        Just(Goal::Fail),
    ];
    leaf.prop_recursive(depth, 20, 3, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(Goal::seq),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Goal::par),
            proptest::collection::vec(inner.clone(), 2..3).prop_map(Goal::choice),
            inner.prop_map(Goal::iso),
        ]
    })
}

fn program_with_body(body: Goal) -> Program {
    // Ensure rule safety: prefix with query atoms binding X0..X2.
    let binder = Goal::seq(vec![
        Goal::atom("p", vec![Term::var(0), Term::var(1)]),
        Goal::atom("q", vec![Term::var(2)]),
        body,
    ]);
    Program::builder()
        .base_pred("p", 2)
        .base_pred("q", 1)
        .rule_parts(Atom::prop("main"), binder)
        .build()
        .expect("generated rule is valid")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn program_source_round_trips(body in arb_goal(3)) {
        let p1 = program_with_body(body);
        let src1 = p1.to_source();
        let parsed = parse_program(&src1).unwrap_or_else(|e| {
            panic!("rendered program does not parse:\n{}\n{}", e.render(&src1), src1)
        });
        let src2 = parsed.program.to_source();
        prop_assert_eq!(&src1, &src2, "render-parse-render not stable");
        // Structural equality of the rules too (not just text).
        prop_assert_eq!(p1.rules().len(), parsed.program.rules().len());
        for (a, b) in p1.rules().iter().zip(parsed.program.rules()) {
            prop_assert_eq!(&a.head, &b.head);
            prop_assert_eq!(&a.body, &b.body);
        }
    }

    #[test]
    fn goal_display_round_trips(body in arb_goal(3)) {
        // Goals with variables round-trip through parse_goal when rendered
        // with variable names.
        let p = program_with_body(Goal::True);
        let goal = Goal::seq(vec![
            Goal::atom("p", vec![Term::var(0), Term::var(1)]),
            Goal::atom("q", vec![Term::var(2)]),
            body,
        ]);
        let names: Vec<td_core::Symbol> = (0..3)
            .map(|i| td_core::Symbol::intern(&format!("V{i}")))
            .collect();
        let rendered = td_core::rule::render_goal_with_names(&goal, &names);
        let reparsed = td_parser::parse_goal(&rendered, &p).unwrap_or_else(|e| {
            panic!("rendered goal does not parse: {e}\n{rendered}")
        });
        // Round-trip modulo variable identity: re-render and compare text.
        let rendered2 =
            td_core::rule::render_goal_with_names(&reparsed.goal, &reparsed.var_names);
        prop_assert_eq!(rendered, rendered2);
    }
}
