//! Quantified Boolean formulas in sequential TD (Theorem 4.5).
//!
//! Theorem 4.5: *sequential* TD (no `|`) is data complete for **EXPTIME**,
//! and "the extra power of sequential TD comes from an ability to simulate
//! alternating PSPACE machines \[30\]. … the ability to alternate comes from
//! the combination of recursive subroutines and sequential composition."
//!
//! QBF evaluation is the canonical alternation workload. The encoding uses
//! exactly the mechanism the proof isolates — sequential composition
//! re-executing a subgoal under different database states:
//!
//! ```text
//! q_i <- { (ins.tru(i) * q_{i+1} * del.tru(i)) or q_{i+1} }.       % ∃xᵢ
//! q_i <- ins.tru(i) * q_{i+1} * del.tru(i) * q_{i+1}.              % ∀xᵢ
//! q_{n} <- clause_1 * clause_2 * … * clause_m.                     % matrix
//! clause_j <- { lit or lit or lit }.
//! ```
//!
//! A `∀` level runs its continuation **twice in sequence** — once with the
//! variable true, once false — which is precisely how sequential
//! composition plus subroutines yields exponential work over a
//! polynomial-size state (the assignment relation `tru/1`).

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::fmt::Write as _;
use td_workflow::Scenario;

/// Quantifier kinds, outermost first.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Quant {
    Exists,
    Forall,
}

/// A literal: variable index (0-based) and polarity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Lit {
    pub var: usize,
    pub positive: bool,
}

/// A prenex-CNF QBF: `Q₀x₀ Q₁x₁ … . clauses`.
#[derive(Clone, Debug)]
pub struct Qbf {
    pub quants: Vec<Quant>,
    pub clauses: Vec<Vec<Lit>>,
}

impl Qbf {
    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.quants.len()
    }

    /// Direct recursive evaluation (the reference semantics).
    pub fn eval(&self) -> bool {
        let mut assignment = vec![false; self.num_vars()];
        self.eval_from(0, &mut assignment)
    }

    fn eval_from(&self, level: usize, assignment: &mut Vec<bool>) -> bool {
        if level == self.quants.len() {
            return self
                .clauses
                .iter()
                .all(|clause| clause.iter().any(|l| assignment[l.var] == l.positive));
        }
        match self.quants[level] {
            Quant::Exists => {
                for v in [true, false] {
                    assignment[level] = v;
                    if self.eval_from(level + 1, assignment) {
                        return true;
                    }
                }
                false
            }
            Quant::Forall => {
                for v in [true, false] {
                    assignment[level] = v;
                    if !self.eval_from(level + 1, assignment) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// A random QBF with alternating quantifiers (∀ first), `vars`
    /// variables and `clauses` random 3-literal clauses.
    pub fn random(vars: usize, clauses: usize, seed: u64) -> Qbf {
        let mut rng = StdRng::seed_from_u64(seed);
        let quants = (0..vars)
            .map(|i| {
                if i % 2 == 0 {
                    Quant::Forall
                } else {
                    Quant::Exists
                }
            })
            .collect();
        let clauses = (0..clauses)
            .map(|_| {
                (0..3)
                    .map(|_| Lit {
                        var: rng.random_range(0..vars),
                        positive: rng.random_bool(0.5),
                    })
                    .collect()
            })
            .collect();
        Qbf { quants, clauses }
    }

    /// Encode the formula **into the database** and evaluate it with a
    /// *fixed* sequential-TD program — the data-complexity regime of
    /// Theorem 4.5 proper (the theorem is about data complexity; the
    /// program below never changes, only the instance relations do).
    ///
    /// Schema: `qvar(I, Kind)` quantifiers (1-based, `e`/`a`),
    /// `lit(C, I, P)` clause literals (`P` = 1 positive / 0 negated),
    /// `nv(N)` variable count, `nc(M)` clause count, `tru(I)` the working
    /// assignment. The recursion through sequential composition
    /// (`eval`'s ∀ case runs `eval(J)` twice) is exactly the alternation
    /// mechanism the proof isolates.
    pub fn to_td_data(&self) -> Scenario {
        let mut src = String::new();
        let _ = writeln!(
            src,
            "% QBF instance in the DATABASE; fixed sequential-TD evaluator"
        );
        let _ = writeln!(src, "base qvar/2.");
        let _ = writeln!(src, "base lit/3.");
        let _ = writeln!(src, "base nv/1.");
        let _ = writeln!(src, "base nc/1.");
        let _ = writeln!(src, "base tru/1.");
        let _ = writeln!(src, "init nv({}).", self.num_vars());
        let _ = writeln!(src, "init nc({}).", self.clauses.len());
        for (i, q) in self.quants.iter().enumerate() {
            let kind = match q {
                Quant::Exists => "e",
                Quant::Forall => "a",
            };
            let _ = writeln!(src, "init qvar({}, {kind}).", i + 1);
        }
        for (c, clause) in self.clauses.iter().enumerate() {
            for l in clause {
                let _ = writeln!(
                    src,
                    "init lit({}, {}, {}).",
                    c + 1,
                    l.var + 1,
                    i64::from(l.positive)
                );
            }
        }
        // The fixed evaluator.
        let _ = writeln!(src, "eval(I) <- nv(N) * I > N * nc(M) * chk(1, M).");
        let _ = writeln!(
            src,
            "eval(I) <- qvar(I, e) * J is I + 1 * {{ (ins.tru(I) * eval(J) * del.tru(I)) or eval(J) }}."
        );
        let _ = writeln!(
            src,
            "eval(I) <- qvar(I, a) * J is I + 1 * ins.tru(I) * eval(J) * del.tru(I) * eval(J)."
        );
        let _ = writeln!(src, "chk(C, M) <- C > M.");
        let _ = writeln!(
            src,
            "chk(C, M) <- C <= M * sat(C) * C2 is C + 1 * chk(C2, M)."
        );
        let _ = writeln!(src, "sat(C) <- lit(C, I, 1) * tru(I).");
        let _ = writeln!(src, "sat(C) <- lit(C, I, 0) * not tru(I).");
        let _ = writeln!(src, "?- eval(1).");
        Scenario::from_source(src)
    }

    /// Encode into sequential TD. The goal `?- q0.` is executable iff the
    /// formula is true.
    pub fn to_td(&self) -> Scenario {
        let n = self.num_vars();
        let mut src = String::new();
        let _ = writeln!(
            src,
            "% QBF with {n} vars / {} clauses in sequential TD",
            self.clauses.len()
        );
        let _ = writeln!(src, "base tru/1.");
        for (i, q) in self.quants.iter().enumerate() {
            let next = i + 1;
            match q {
                Quant::Exists => {
                    let _ = writeln!(
                        src,
                        "q{i} <- {{ (ins.tru({i}) * q{next} * del.tru({i})) or q{next} }}."
                    );
                }
                Quant::Forall => {
                    let _ = writeln!(
                        src,
                        "q{i} <- ins.tru({i}) * q{next} * del.tru({i}) * q{next}."
                    );
                }
            }
        }
        if self.clauses.is_empty() {
            let _ = writeln!(src, "q{n} <- ().");
        } else {
            let checks: Vec<String> = (0..self.clauses.len()).map(|j| format!("cl{j}")).collect();
            let _ = writeln!(src, "q{n} <- {}.", checks.join(" * "));
            for (j, clause) in self.clauses.iter().enumerate() {
                let lits: Vec<String> = clause
                    .iter()
                    .map(|l| {
                        if l.positive {
                            format!("tru({})", l.var)
                        } else {
                            format!("not tru({})", l.var)
                        }
                    })
                    .collect();
                let _ = writeln!(src, "cl{j} <- {{ {} }}.", lits.join(" or "));
            }
        }
        let _ = writeln!(src, "?- q0.");
        Scenario::from_source(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::{Fragment, FragmentReport};
    use td_engine::EngineConfig;

    fn lit(var: usize, positive: bool) -> Lit {
        Lit { var, positive }
    }

    #[test]
    fn direct_eval_tautology_and_contradiction() {
        // ∀x. (x ∨ ¬x)
        let taut = Qbf {
            quants: vec![Quant::Forall],
            clauses: vec![vec![lit(0, true), lit(0, false)]],
        };
        assert!(taut.eval());
        // ∀x. x
        let contra = Qbf {
            quants: vec![Quant::Forall],
            clauses: vec![vec![lit(0, true)]],
        };
        assert!(!contra.eval());
        // ∃x. x
        let sat = Qbf {
            quants: vec![Quant::Exists],
            clauses: vec![vec![lit(0, true)]],
        };
        assert!(sat.eval());
    }

    #[test]
    fn forall_exists_dependency() {
        // ∀x ∃y. (x ↔ y) as CNF: (¬x ∨ y) ∧ (x ∨ ¬y) — true.
        let f = Qbf {
            quants: vec![Quant::Forall, Quant::Exists],
            clauses: vec![
                vec![lit(0, false), lit(1, true)],
                vec![lit(0, true), lit(1, false)],
            ],
        };
        assert!(f.eval());
        // ∃y ∀x. (x ↔ y) — false.
        let g = Qbf {
            quants: vec![Quant::Exists, Quant::Forall],
            clauses: vec![
                vec![lit(1, false), lit(0, true)],
                vec![lit(1, true), lit(0, false)],
            ],
        };
        assert!(!g.eval());
    }

    #[test]
    fn td_encoding_agrees_with_direct_eval_on_random_instances() {
        for seed in 0..12 {
            let qbf = Qbf::random(4, 5, seed);
            let scenario = qbf.to_td();
            let out = scenario
                .run_with(EngineConfig::default().with_max_steps(5_000_000))
                .unwrap();
            assert_eq!(
                out.is_success(),
                qbf.eval(),
                "seed {seed}: TD disagrees with direct evaluation\n{}",
                scenario.source
            );
        }
    }

    #[test]
    fn td_encoding_handles_dependency_ordering() {
        let f = Qbf {
            quants: vec![Quant::Forall, Quant::Exists],
            clauses: vec![
                vec![lit(0, false), lit(1, true)],
                vec![lit(0, true), lit(1, false)],
            ],
        };
        assert!(f.to_td().run().unwrap().is_success());
        let g = Qbf {
            quants: vec![Quant::Exists, Quant::Forall],
            clauses: vec![
                vec![lit(1, false), lit(0, true)],
                vec![lit(1, true), lit(0, false)],
            ],
        };
        assert!(!g.to_td().run().unwrap().is_success());
    }

    #[test]
    fn encoding_is_strictly_sequential() {
        let qbf = Qbf::random(3, 3, 0);
        let scenario = qbf.to_td();
        let rep = FragmentReport::classify(&scenario.program, &scenario.goal);
        // No | anywhere, no recursion (the chain is finite) → the
        // tractable-by-memoization side of Thm 4.5's language; the
        // exponential work is in the ∀ re-execution.
        assert_eq!(rep.fragment, Fragment::Nonrecursive);
        assert!(!rep.facts.par_in_rules && !rep.facts.par_in_goal);
    }

    #[test]
    fn empty_matrix_is_true() {
        let f = Qbf {
            quants: vec![Quant::Forall, Quant::Forall],
            clauses: vec![],
        };
        assert!(f.eval());
        assert!(f.to_td().run().unwrap().is_success());
    }

    #[test]
    fn random_is_deterministic_per_seed() {
        let a = Qbf::random(5, 7, 42);
        let b = Qbf::random(5, 7, 42);
        assert_eq!(a.clauses, b.clauses);
        assert_eq!(a.quants, b.quants);
    }
}

#[cfg(test)]
mod data_encoding_tests {
    use super::*;
    use td_core::{Fragment, FragmentReport};
    use td_engine::EngineConfig;

    #[test]
    fn fixed_program_agrees_with_direct_eval() {
        for seed in 0..10 {
            let qbf = Qbf::random(4, 5, seed);
            let scenario = qbf.to_td_data();
            let out = scenario
                .run_with(EngineConfig::default().with_max_steps(20_000_000))
                .unwrap();
            assert_eq!(out.is_success(), qbf.eval(), "seed {seed}");
        }
    }

    #[test]
    fn the_program_is_fixed_across_instances() {
        // Data complexity: the rulebase must not depend on the instance.
        let a = Qbf::random(3, 4, 1).to_td_data();
        let b = Qbf::random(6, 9, 2).to_td_data();
        assert_eq!(a.program.to_source(), b.program.to_source());
    }

    #[test]
    fn classified_as_sequential_td() {
        let rep_src = Qbf::random(3, 3, 0).to_td_data();
        let rep = FragmentReport::classify(&rep_src.program, &rep_src.goal);
        assert_eq!(rep.fragment, Fragment::Sequential);
        assert!(rep.facts.recursive, "eval/chk recurse");
        assert!(
            !rep.facts.tail_recursion_only,
            "the ∀ rule's first eval(J) call is non-tail — the alternation engine"
        );
    }

    #[test]
    fn dependency_pairs_through_the_fixed_program() {
        let lit = |var: usize, positive: bool| Lit { var, positive };
        // ∀x ∃y. x ↔ y (true) vs ∃y ∀x. x ↔ y (false).
        let t = Qbf {
            quants: vec![Quant::Forall, Quant::Exists],
            clauses: vec![
                vec![lit(0, false), lit(1, true)],
                vec![lit(0, true), lit(1, false)],
            ],
        };
        assert!(t.to_td_data().run().unwrap().is_success());
        let f = Qbf {
            quants: vec![Quant::Exists, Quant::Forall],
            clauses: vec![
                vec![lit(1, false), lit(0, true)],
                vec![lit(1, true), lit(0, false)],
            ],
        };
        assert!(!f.to_td_data().run().unwrap().is_success());
    }
}
