//! # td-machines — the complexity-theorem constructions
//!
//! §4–§5 of the paper map the data complexity of workflow executability
//! across TD fragments. Complexity classes cannot be measured directly, but
//! the *constructions in the proofs are executable programs*, and their
//! resource growth is observable. This crate builds each construction plus
//! a directly-implemented baseline to validate against:
//!
//! | module | theorem | construction | baseline |
//! |---|---|---|---|
//! | [`minsky`] | §4 RE-completeness, Cor. 4.6 | 2-counter machine as 3 concurrent sequential TD processes, constant-size DB | direct Minsky simulator |
//! | [`stack`] | Cor. 4.6 (the proof's own object) | 2-stack machine, stack frames as process activations | direct simulator + Minsky compiler |
//! | [`turing`] | §4's Turing-machine framing | single-tape TM compiled to 2 stacks (tape = two stacks), then to TD | direct TM simulator |
//! | [`qbf`] | Thm. 4.5 (sequential TD / alternation) | QBF via sequential composition re-executing subgoals | recursive QBF evaluator |
//! | [`sat`] | §5 (fully bounded TD) | 3SAT via tail-recursive guess-and-check | DPLL + brute force |
//! | [`nonrec`] | Thm. 4.7 (nonrecursive TD) | k-hop joins and fixed-width update transactions | — (polynomial by inspection) |

pub mod minsky;
pub mod nonrec;
pub mod qbf;
pub mod sat;
pub mod stack;
pub mod turing;

pub use minsky::{Counter, Instr, MinskyMachine, RunResult};
pub use qbf::{Qbf, Quant};
pub use sat::Cnf;
pub use stack::{StackMachine, StackRun};
pub use turing::{palindrome_tm, successor_tm, TmRun, TuringMachine};
