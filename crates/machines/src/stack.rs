//! Two-stack machines and their Transaction Datalog encoding.
//!
//! This is the construction the paper's proof of Corollary 4.6 actually
//! uses: "three sequential processes executing concurrently … two of the
//! processes encode the stacks, and the third process encodes the finite
//! control" (§4, citing Hopcroft & Ullman \[52\] for 2-stack machines). The
//! counter-machine encoding in [`crate::minsky`] is the minimal variant;
//! this module builds the stack variant faithfully: each stack is a
//! recursive sequential process whose activation *depth* is the stack
//! height and whose activation *frame* holds one stack symbol.
//!
//! Machines are cross-validated three ways: a direct simulator, the TD
//! encoding, and a compiler from Minsky machines (a counter is a stack of
//! identical symbols).

use crate::minsky::{Counter, Instr as MInstr, MinskyMachine};
use std::fmt::Write as _;
use td_workflow::Scenario;

/// Which stack.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum StackId {
    S0,
    S1,
}

impl StackId {
    fn name(self) -> &'static str {
        match self {
            StackId::S0 => "s0",
            StackId::S1 => "s1",
        }
    }
}

/// A stack symbol: a lowercase letter index (0 = `a`, 1 = `b`, …).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Sym(pub u8);

impl Sym {
    fn name(self) -> String {
        // a, b, c, ...
        ((b'a' + self.0) as char).to_string()
    }
}

/// Instructions. Addresses index [`StackMachine::instrs`].
#[derive(Clone, Debug)]
pub enum Instr {
    /// Push a symbol, go to `next`.
    Push(StackId, Sym, usize),
    /// Pop: branch by the popped symbol (pairs of symbol → address) or go
    /// to the final address if the stack is empty. A popped symbol with no
    /// matching branch rejects.
    PopBranch(StackId, Vec<(Sym, usize)>, usize),
    /// Accept.
    Halt,
    /// Reject.
    Reject,
}

/// Result of a direct run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum StackRun {
    /// Accepted; final stack contents (bottom first).
    Halted {
        steps: u64,
        s0: Vec<Sym>,
        s1: Vec<Sym>,
    },
    Rejected {
        steps: u64,
    },
    OutOfFuel,
}

/// A two-stack machine.
#[derive(Clone, Debug, Default)]
pub struct StackMachine {
    pub instrs: Vec<Instr>,
}

impl StackMachine {
    /// Direct simulation (reference semantics).
    pub fn run(&self, max_steps: u64) -> StackRun {
        let mut s0: Vec<Sym> = Vec::new();
        let mut s1: Vec<Sym> = Vec::new();
        let mut pc = 0usize;
        let mut steps = 0u64;
        loop {
            if steps >= max_steps {
                return StackRun::OutOfFuel;
            }
            steps += 1;
            match self.instrs.get(pc) {
                None | Some(Instr::Halt) => return StackRun::Halted { steps, s0, s1 },
                Some(Instr::Reject) => return StackRun::Rejected { steps },
                Some(Instr::Push(sid, sym, next)) => {
                    match sid {
                        StackId::S0 => s0.push(*sym),
                        StackId::S1 => s1.push(*sym),
                    }
                    pc = *next;
                }
                Some(Instr::PopBranch(sid, branches, on_empty)) => {
                    let stack = match sid {
                        StackId::S0 => &mut s0,
                        StackId::S1 => &mut s1,
                    };
                    match stack.pop() {
                        None => pc = *on_empty,
                        Some(sym) => match branches.iter().find(|(s, _)| *s == sym) {
                            Some((_, next)) => pc = *next,
                            None => return StackRun::Rejected { steps },
                        },
                    }
                }
            }
        }
    }

    /// Does the machine accept (halt)?
    pub fn accepts(&self, max_steps: u64) -> Option<bool> {
        match self.run(max_steps) {
            StackRun::Halted { .. } => Some(true),
            StackRun::Rejected { .. } => Some(false),
            StackRun::OutOfFuel => None,
        }
    }

    /// Compile a Minsky machine: counter `cX` becomes stack `sX` holding a
    /// column of `a` symbols (height = counter value).
    pub fn from_minsky(m: &MinskyMachine) -> StackMachine {
        let map_counter = |c: Counter| match c {
            Counter::C0 => StackId::S0,
            Counter::C1 => StackId::S1,
        };
        let instrs = m
            .instrs
            .iter()
            .map(|ins| match *ins {
                MInstr::Inc(c, next) => Instr::Push(map_counter(c), Sym(0), next),
                MInstr::DecJz(c, next, if_zero) => {
                    Instr::PopBranch(map_counter(c), vec![(Sym(0), next)], if_zero)
                }
                MInstr::Halt => Instr::Halt,
                MInstr::Reject => Instr::Reject,
            })
            .collect();
        StackMachine { instrs }
    }

    /// The machine that pushes `word` on stack 0, moves it to stack 1
    /// (reversing it), then halts.
    pub fn reverser(word: &[Sym]) -> StackMachine {
        let mut instrs: Vec<Instr> = Vec::new();
        // Push the word.
        for (i, sym) in word.iter().enumerate() {
            instrs.push(Instr::Push(StackId::S0, *sym, i + 1));
        }
        let loop_at = word.len();
        // loop: pop s0; on any known symbol push to s1 and loop; on empty halt.
        // Collect the alphabet used.
        let mut alphabet: Vec<Sym> = word.to_vec();
        alphabet.sort_by_key(|s| s.0);
        alphabet.dedup();
        // loop_at: PopBranch(s0, sym -> push instr, empty -> halt)
        let halt_at = loop_at + 1 + alphabet.len();
        let branches: Vec<(Sym, usize)> = alphabet
            .iter()
            .enumerate()
            .map(|(j, s)| (*s, loop_at + 1 + j))
            .collect();
        instrs.push(Instr::PopBranch(StackId::S0, branches, halt_at));
        for s in &alphabet {
            instrs.push(Instr::Push(StackId::S1, *s, loop_at));
        }
        instrs.push(Instr::Halt);
        StackMachine { instrs }
    }

    /// Accepts iff `word == probe` (pushes `word`, then pops while matching
    /// `probe` back-to-front; any mismatch rejects).
    pub fn word_equals(word: &[Sym], probe: &[Sym]) -> StackMachine {
        let mut instrs: Vec<Instr> = Vec::new();
        for (i, sym) in word.iter().enumerate() {
            instrs.push(Instr::Push(StackId::S0, *sym, i + 1));
        }
        // Pop probe back-to-front; each must match.
        let base = word.len();
        for (j, expected) in probe.iter().rev().enumerate() {
            instrs.push(Instr::PopBranch(
                StackId::S0,
                vec![(*expected, base + j + 1)],
                usize::MAX, // empty before probe consumed → reject (see below)
            ));
        }
        // After consuming the probe, the stack must be empty.
        let check_at = base + probe.len();
        let reject_at = check_at + 2;
        instrs.push(Instr::PopBranch(StackId::S0, vec![], check_at + 1));
        instrs.push(Instr::Halt);
        instrs.push(Instr::Reject);
        // Patch usize::MAX empties to the reject instruction.
        for ins in &mut instrs {
            if let Instr::PopBranch(_, _, on_empty) = ins {
                if *on_empty == usize::MAX {
                    *on_empty = reject_at;
                }
            }
        }
        StackMachine { instrs }
    }

    /// Encode into TD: three concurrent sequential processes (Cor. 4.6).
    /// The goal is executable iff the machine halts.
    ///
    /// Stack process protocol (per stack `S`):
    ///
    /// ```text
    /// sempty(S): on push(X) → ack, then scell(S, X), then sempty(S) again;
    ///            on pop     → report empty(S);
    ///            on halted  → return.
    /// scell(S,V): on push(X) → ack, then scell(S, X), then scell(S, V);
    ///             on pop     → report popped(S, V) and return;
    ///             on halted  → return (unwinds every frame).
    /// ```
    pub fn to_td(&self) -> Scenario {
        let mut src = String::new();
        let _ = writeln!(
            src,
            "% 2-stack machine as 3 concurrent TD processes (Cor. 4.6)"
        );
        let _ = writeln!(src, "base cmd/3.");
        let _ = writeln!(src, "base ack/1.");
        let _ = writeln!(src, "base popped/2.");
        let _ = writeln!(src, "base sempty/1.");
        let _ = writeln!(src, "base halted/0.");

        // Stack processes.
        let _ = writeln!(src, "stk(S) <- halted.");
        let _ = writeln!(
            src,
            "stk(S) <- cmd(S, Op, X) * del.cmd(S, Op, X) * hempty(S, Op, X)."
        );
        let _ = writeln!(
            src,
            "hempty(S, push, X) <- ins.ack(S) * cell(S, X) * stk(S)."
        );
        let _ = writeln!(src, "hempty(S, pop, X) <- ins.sempty(S) * stk(S).");
        let _ = writeln!(src, "cell(S, V) <- halted.");
        let _ = writeln!(
            src,
            "cell(S, V) <- cmd(S, Op, X) * del.cmd(S, Op, X) * hcell(S, Op, X, V)."
        );
        let _ = writeln!(
            src,
            "hcell(S, push, X, V) <- ins.ack(S) * cell(S, X) * cell(S, V)."
        );
        let _ = writeln!(src, "hcell(S, pop, X, V) <- ins.popped(S, V).");

        // Control.
        for (i, ins) in self.instrs.iter().enumerate() {
            match ins {
                Instr::Push(sid, sym, next) => {
                    let _ = writeln!(
                        src,
                        "st{i} <- ins.cmd({s}, push, {x}) * ack({s}) * del.ack({s}) * st{next}.",
                        s = sid.name(),
                        x = sym.name()
                    );
                }
                Instr::PopBranch(sid, branches, on_empty) => {
                    let s = sid.name();
                    let mut alts: Vec<String> = branches
                        .iter()
                        .map(|(sym, next)| {
                            format!(
                                "(popped({s}, {x}) * del.popped({s}, {x}) * st{next})",
                                x = sym.name()
                            )
                        })
                        .collect();
                    alts.push(format!("(sempty({s}) * del.sempty({s}) * st{on_empty})"));
                    // A popped symbol with no branch leaves its `popped`
                    // tuple unconsumed: every alternative fails and the
                    // control (hence the machine) rejects — matching the
                    // direct simulator.
                    let _ = writeln!(
                        src,
                        "st{i} <- ins.cmd({s}, pop, pop) * {{ {} }}.",
                        alts.join(" or ")
                    );
                }
                Instr::Halt => {
                    let _ = writeln!(src, "st{i} <- ins.halted.");
                }
                Instr::Reject => {
                    let _ = writeln!(src, "st{i} <- fail.");
                }
            }
        }
        let end = self.instrs.len();
        let _ = writeln!(src, "st{end} <- ins.halted.");
        let _ = writeln!(src, "?- st0 | stk(s0) | stk(s1).");
        Scenario::from_source(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::{Fragment, FragmentReport};
    use td_engine::decider::{decide, DeciderConfig};
    use td_engine::EngineConfig;

    fn word(text: &str) -> Vec<Sym> {
        text.bytes().map(|b| Sym(b - b'a')).collect()
    }

    #[test]
    fn reverser_moves_the_word() {
        let m = StackMachine::reverser(&word("abca"));
        match m.run(1000) {
            StackRun::Halted { s0, s1, .. } => {
                assert!(s0.is_empty());
                assert_eq!(s1, word("acba"), "reversed onto s1");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn word_equals_direct() {
        assert_eq!(
            StackMachine::word_equals(&word("ab"), &word("ab")).accepts(1000),
            Some(true)
        );
        assert_eq!(
            StackMachine::word_equals(&word("ab"), &word("ba")).accepts(1000),
            Some(false)
        );
        assert_eq!(
            StackMachine::word_equals(&word("ab"), &word("abc")).accepts(1000),
            Some(false)
        );
        assert_eq!(
            StackMachine::word_equals(&word("abc"), &word("ab")).accepts(1000),
            Some(false)
        );
        assert_eq!(
            StackMachine::word_equals(&[], &[]).accepts(1000),
            Some(true)
        );
    }

    #[test]
    fn td_encoding_accepts_reverser() {
        let m = StackMachine::reverser(&word("ab"));
        let scenario = m.to_td();
        let out = scenario
            .run_with(EngineConfig::default().with_max_steps(5_000_000))
            .unwrap();
        assert!(out.is_success());
        // Constant-size database at commit.
        assert!(out.solution().unwrap().db.total_tuples() <= 3);
    }

    #[test]
    fn td_encoding_agrees_with_direct_on_word_equality() {
        // Accepting cases through the interpreter; rejecting cases through
        // the decider (refutation needs memoized search).
        let cases = [("ab", "ab", true), ("a", "a", true), ("ab", "ba", false)];
        for (w, p, expect) in cases {
            let m = StackMachine::word_equals(&word(w), &word(p));
            assert_eq!(m.accepts(10_000), Some(expect), "direct {w} vs {p}");
            let scenario = m.to_td();
            if expect {
                let out = scenario
                    .run_with(EngineConfig::default().with_max_steps(5_000_000))
                    .unwrap();
                assert!(out.is_success(), "TD should accept {w} = {p}");
            } else {
                let d = decide(
                    &scenario.program,
                    &scenario.goal,
                    &scenario.db,
                    DeciderConfig::default(),
                )
                .unwrap();
                assert!(!d.truncated);
                assert!(!d.executable, "TD should reject {w} = {p}");
            }
        }
    }

    #[test]
    fn minsky_compilation_preserves_acceptance() {
        for n in 0..4u64 {
            let minsky = MinskyMachine::parity().with_input(Counter::C0, n);
            let stack = StackMachine::from_minsky(&minsky);
            let direct = matches!(
                minsky.run(0, 0, 10_000),
                crate::minsky::RunResult::Halted { .. }
            );
            assert_eq!(stack.accepts(10_000), Some(direct), "n={n}");
        }
    }

    #[test]
    fn minsky_compilation_preserves_counter_as_height() {
        let m = MinskyMachine::doubling().with_input(Counter::C0, 3);
        let stack = StackMachine::from_minsky(&m);
        match stack.run(10_000) {
            StackRun::Halted { s0, s1, .. } => {
                assert_eq!(s0.len(), 0);
                assert_eq!(s1.len(), 6, "c1 = 2*3 as stack height");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn encoding_is_sequential_rulebase() {
        let scenario = StackMachine::reverser(&word("ab")).to_td();
        let rep = FragmentReport::classify(&scenario.program, &scenario.goal);
        assert_eq!(rep.fragment, Fragment::SequentialRulebase);
    }

    #[test]
    fn empty_machine_halts_immediately() {
        let m = StackMachine { instrs: vec![] };
        assert_eq!(m.accepts(10), Some(true));
        let out = m.to_td().run().unwrap();
        assert!(out.is_success());
    }
}
