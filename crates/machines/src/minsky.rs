//! Two-counter (Minsky) machines and their Transaction Datalog encoding.
//!
//! §4 of the paper proves full TD **RE-complete** — with a *fixed* data
//! domain and a *fixed* database schema, so the database stays constant-size
//! while the computation is unbounded. Corollary 4.6 sharpens this: "three
//! sequential processes executing concurrently" suffice, where two processes
//! encode unbounded storage and the third the finite control (the paper uses
//! a 2-stack machine; we use the equivalent 2-counter Minsky machine \[52\]).
//!
//! The encoding here follows that proof shape exactly:
//!
//! * each **counter** is a recursive sequential process whose *recursion
//!   depth* is the counter value — storage lives in the process structure,
//!   not the database (this is what lets TD beat the PSPACE ceiling of safe
//!   flat-transaction languages);
//! * the **control** process walks the instruction list;
//! * the three processes communicate through a constant-size set of
//!   handshake tuples (`cmd/2`, `ack/1`, `yes/1`, `no/1`, `halted/0`).
//!
//! The goal `?- control | counter(c0) | counter(c1)` is executable iff the
//! machine halts — undecidable in general, which is why the engine's step
//! budget exists.

use std::fmt::Write as _;
use td_workflow::Scenario;

/// One of the two counters.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Counter {
    C0,
    C1,
}

impl Counter {
    fn name(self) -> &'static str {
        match self {
            Counter::C0 => "c0",
            Counter::C1 => "c1",
        }
    }
}

/// A Minsky-machine instruction. Program addresses are indices into
/// [`MinskyMachine::instrs`].
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Instr {
    /// Increment the counter, go to the next address.
    Inc(Counter, usize),
    /// If the counter is zero go to the second address; otherwise decrement
    /// and go to the first.
    DecJz(Counter, usize, usize),
    /// Accept.
    Halt,
    /// Reject (no successful execution from here).
    Reject,
}

/// A two-counter machine.
#[derive(Clone, Debug, Default)]
pub struct MinskyMachine {
    pub instrs: Vec<Instr>,
}

/// Result of a direct simulation.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RunResult {
    /// Halted (accepted) after this many instruction steps, with final
    /// counter values.
    Halted { steps: u64, c0: u64, c1: u64 },
    /// Hit a `Reject` instruction.
    Rejected { steps: u64 },
    /// Step budget exhausted without halting.
    OutOfFuel,
}

impl MinskyMachine {
    /// Run the machine directly (the reference semantics).
    pub fn run(&self, mut c0: u64, mut c1: u64, max_steps: u64) -> RunResult {
        let mut pc = 0usize;
        let mut steps = 0u64;
        loop {
            if steps >= max_steps {
                return RunResult::OutOfFuel;
            }
            steps += 1;
            match self.instrs.get(pc) {
                None | Some(Instr::Halt) => {
                    return RunResult::Halted { steps, c0, c1 };
                }
                Some(Instr::Reject) => return RunResult::Rejected { steps },
                Some(Instr::Inc(c, next)) => {
                    match c {
                        Counter::C0 => c0 += 1,
                        Counter::C1 => c1 += 1,
                    }
                    pc = *next;
                }
                Some(Instr::DecJz(c, next, if_zero)) => {
                    let v = match c {
                        Counter::C0 => &mut c0,
                        Counter::C1 => &mut c1,
                    };
                    if *v == 0 {
                        pc = *if_zero;
                    } else {
                        *v -= 1;
                        pc = *next;
                    }
                }
            }
        }
    }

    /// Prefix the program with `n` increments of `counter` (the standard way
    /// to supply input to a counter machine).
    pub fn with_input(&self, counter: Counter, n: u64) -> MinskyMachine {
        let shift = n as usize;
        let mut instrs: Vec<Instr> = (0..shift).map(|i| Instr::Inc(counter, i + 1)).collect();
        for ins in &self.instrs {
            instrs.push(match *ins {
                Instr::Inc(c, j) => Instr::Inc(c, j + shift),
                Instr::DecJz(c, j, k) => Instr::DecJz(c, j + shift, k + shift),
                other => other,
            });
        }
        MinskyMachine { instrs }
    }

    /// The machine that moves `c0` into `c1` (c1 += c0; c0 = 0) then halts.
    pub fn transfer() -> MinskyMachine {
        MinskyMachine {
            instrs: vec![
                Instr::DecJz(Counter::C0, 1, 2),
                Instr::Inc(Counter::C1, 0),
                Instr::Halt,
            ],
        }
    }

    /// The machine computing `c1 = 2 * c0` (destroying `c0`), then halting.
    pub fn doubling() -> MinskyMachine {
        MinskyMachine {
            instrs: vec![
                Instr::DecJz(Counter::C0, 1, 3),
                Instr::Inc(Counter::C1, 2),
                Instr::Inc(Counter::C1, 0),
                Instr::Halt,
            ],
        }
    }

    /// Accepts iff `c0` is even (the parity decider): repeatedly subtract 2;
    /// landing on 0 accepts, landing on 1 rejects.
    pub fn parity() -> MinskyMachine {
        MinskyMachine {
            instrs: vec![
                Instr::DecJz(Counter::C0, 1, 2), // even so far → accept on 0
                Instr::DecJz(Counter::C0, 0, 3), // odd remainder → reject on 0
                Instr::Halt,
                Instr::Reject,
            ],
        }
    }

    /// A machine that never halts (counts up forever). Its TD encoding
    /// diverges — the RE witness.
    pub fn diverging() -> MinskyMachine {
        MinskyMachine {
            instrs: vec![Instr::Inc(Counter::C0, 0)],
        }
    }

    /// Encode into TD: three concurrent sequential processes over a
    /// constant-size database (Cor. 4.6 shape). The goal is executable iff
    /// the machine (with empty initial counters) halts.
    pub fn to_td(&self) -> Scenario {
        let mut src = String::new();
        let _ = writeln!(src, "% 2-counter machine as 3 concurrent TD processes");
        let _ = writeln!(src, "base cmd/2.");
        let _ = writeln!(src, "base ack/1.");
        let _ = writeln!(src, "base yes/1.");
        let _ = writeln!(src, "base no/1.");
        let _ = writeln!(src, "base halted/0.");

        // --- counter processes -------------------------------------------
        // A counter at value 0 runs `czero(C)`; at value k ≥ 1 it runs
        // inside k nested activations of `cpos(C)`. Unwinding on `halted`
        // terminates every level.
        let _ = writeln!(src, "czero(C) <- halted.");
        let _ = writeln!(
            src,
            "czero(C) <- cmd(C, Cmd) * del.cmd(C, Cmd) * handle0(C, Cmd)."
        );
        let _ = writeln!(src, "handle0(C, inc) <- ins.ack(C) * cpos(C) * czero(C).");
        let _ = writeln!(src, "handle0(C, zerop) <- ins.yes(C) * czero(C).");
        let _ = writeln!(src, "cpos(C) <- halted.");
        let _ = writeln!(
            src,
            "cpos(C) <- cmd(C, Cmd) * del.cmd(C, Cmd) * handlep(C, Cmd)."
        );
        let _ = writeln!(src, "handlep(C, inc) <- ins.ack(C) * cpos(C) * cpos(C).");
        let _ = writeln!(src, "handlep(C, dec) <- ins.ack(C).");
        let _ = writeln!(src, "handlep(C, zerop) <- ins.no(C) * cpos(C).");

        // --- control process ---------------------------------------------
        for (i, ins) in self.instrs.iter().enumerate() {
            match *ins {
                Instr::Inc(c, next) => {
                    let _ = writeln!(
                        src,
                        "st{i} <- ins.cmd({c}, inc) * ack({c}) * del.ack({c}) * st{next}.",
                        c = c.name()
                    );
                }
                Instr::DecJz(c, next, if_zero) => {
                    let c = c.name();
                    let _ = writeln!(
                        src,
                        "st{i} <- ins.cmd({c}, zerop) * {{ \
                         (yes({c}) * del.yes({c}) * st{if_zero}) or \
                         (no({c}) * del.no({c}) * ins.cmd({c}, dec) \
                          * ack({c}) * del.ack({c}) * st{next}) }}."
                    );
                }
                Instr::Halt => {
                    let _ = writeln!(src, "st{i} <- ins.halted.");
                }
                Instr::Reject => {
                    let _ = writeln!(src, "st{i} <- fail.");
                }
            }
        }
        // Falling off the end of the program is a halt.
        let end = self.instrs.len();
        let _ = writeln!(src, "st{end} <- ins.halted.");

        let _ = writeln!(src, "?- st0 | czero(c0) | czero(c1).");
        Scenario::from_source(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::{Fragment, FragmentReport};
    use td_engine::{EngineConfig, EngineError};

    #[test]
    fn direct_simulation_of_samples() {
        match MinskyMachine::doubling()
            .with_input(Counter::C0, 5)
            .run(0, 0, 1000)
        {
            RunResult::Halted { c0, c1, .. } => {
                assert_eq!(c0, 0);
                assert_eq!(c1, 10);
            }
            other => panic!("expected halt, got {other:?}"),
        }
        match MinskyMachine::transfer().run(7, 2, 1000) {
            RunResult::Halted { c0, c1, .. } => {
                assert_eq!((c0, c1), (0, 9));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parity_machine_decides_parity() {
        for n in 0..8u64 {
            let r = MinskyMachine::parity().run(n, 0, 1000);
            if n % 2 == 0 {
                assert!(matches!(r, RunResult::Halted { .. }), "n={n}");
            } else {
                assert!(matches!(r, RunResult::Rejected { .. }), "n={n}");
            }
        }
    }

    #[test]
    fn diverging_machine_runs_out_of_fuel() {
        assert_eq!(
            MinskyMachine::diverging().run(0, 0, 500),
            RunResult::OutOfFuel
        );
    }

    #[test]
    fn td_encoding_accepts_exactly_when_machine_halts() {
        // Accepting runs: the depth-first interpreter finds the witness
        // interleaving quickly. Rejecting runs require refuting *every*
        // interleaving, which is exponential for the interpreter — there the
        // memoizing decider is the right procedure (its configuration space
        // for the parity machine is polynomial in n).
        use td_engine::decider::{decide, DeciderConfig};
        for n in 0..5u64 {
            let machine = MinskyMachine::parity().with_input(Counter::C0, n);
            let scenario = machine.to_td();
            let direct_accepts = matches!(machine.run(0, 0, 10_000), RunResult::Halted { .. });
            if direct_accepts {
                let out = scenario
                    .run_with(EngineConfig::default().with_max_steps(2_000_000))
                    .unwrap();
                assert!(out.is_success(), "n={n}: interpreter should accept");
            }
            let d = decide(
                &scenario.program,
                &scenario.goal,
                &scenario.db,
                DeciderConfig::default(),
            )
            .unwrap();
            assert!(!d.truncated, "n={n}: decider should finish");
            assert_eq!(d.executable, direct_accepts, "n={n}: decider disagrees");
        }
    }

    #[test]
    fn td_encoding_halts_on_doubling() {
        let machine = MinskyMachine::doubling().with_input(Counter::C0, 3);
        let out = machine
            .to_td()
            .run_with(EngineConfig::default().with_max_steps(2_000_000))
            .unwrap();
        assert!(out.is_success());
    }

    #[test]
    fn database_stays_constant_size_while_computation_grows() {
        // The paper's point: fixed schema, fixed domain — the DB never
        // grows with the computation; storage lives in process recursion.
        let machine = MinskyMachine::doubling().with_input(Counter::C0, 4);
        let out = machine
            .to_td()
            .run_with(EngineConfig::default().with_max_steps(2_000_000))
            .unwrap();
        let sol = out.solution().unwrap();
        // At commit only `halted` remains (all handshakes consumed).
        assert!(sol.db.total_tuples() <= 3, "db stays O(1): {}", sol.db);
        assert!(sol.stats.steps > 50, "yet the computation was long");
    }

    #[test]
    fn td_encoding_of_diverging_machine_exhausts_budget() {
        let scenario = MinskyMachine::diverging().to_td();
        let err = scenario
            .run_with(EngineConfig::default().with_max_steps(5_000))
            .unwrap_err();
        assert!(matches!(err, EngineError::StepBudget { .. }));
    }

    #[test]
    fn encoding_is_sequential_rulebase_fragment() {
        // Cor 4.6: | appears only in the top-level goal; rule bodies are
        // sequential; recursion is unrestricted → RE-complete fragment.
        let scenario = MinskyMachine::parity().to_td();
        let rep = FragmentReport::classify(&scenario.program, &scenario.goal);
        assert_eq!(rep.fragment, Fragment::SequentialRulebase);
        assert!(!rep.decidable());
    }

    #[test]
    fn with_input_shifts_addresses_correctly() {
        let m = MinskyMachine::parity().with_input(Counter::C0, 2);
        assert_eq!(m.instrs.len(), 6);
        assert_eq!(m.instrs[0], Instr::Inc(Counter::C0, 1));
        assert_eq!(m.instrs[2], Instr::DecJz(Counter::C0, 3, 4));
    }
}
