//! 3SAT in fully bounded TD (§5).
//!
//! Fully bounded TD keeps the *process* features bounded: recursion must be
//! sequential **tail** recursion and may not pass through `|`. That is
//! still enough to express guess-and-check over the database:
//!
//! ```text
//! assign(0) <- check.
//! assign(V) <- V > 0 * { ins.tru(V) or () } * V2 is V - 1 * assign(V2).
//! check <- cl1 * cl2 * … * clm.
//! clj <- { lit or lit or lit }.
//! ```
//!
//! `assign/1` iterates over the variables by tail recursion (the iterated-
//! protocol idiom of §3/\[26\]) and nondeterministically inserts assignment
//! tuples; `check` is a plain query conjunction. Executability of
//! `?- assign(n)` is exactly satisfiability — NP-hard, which locates the
//! fully bounded fragment *above* plain Datalog but far below the EXPTIME /
//! RE cliffs of the unrestricted languages; the decider's configuration
//! space stays singly exponential in the variable count and polynomial in
//! the database.
//!
//! A DPLL solver with unit propagation serves as the baseline.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::fmt::Write as _;
use td_workflow::Scenario;

/// A literal: 0-based variable index and polarity.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Lit {
    pub var: usize,
    pub positive: bool,
}

/// A CNF formula.
#[derive(Clone, Debug)]
pub struct Cnf {
    pub num_vars: usize,
    pub clauses: Vec<Vec<Lit>>,
}

impl Cnf {
    /// Random 3SAT at the given clause count.
    pub fn random_3sat(num_vars: usize, num_clauses: usize, seed: u64) -> Cnf {
        let mut rng = StdRng::seed_from_u64(seed);
        let clauses = (0..num_clauses)
            .map(|_| {
                (0..3)
                    .map(|_| Lit {
                        var: rng.random_range(0..num_vars),
                        positive: rng.random_bool(0.5),
                    })
                    .collect()
            })
            .collect();
        Cnf { num_vars, clauses }
    }

    /// DPLL with unit propagation (the baseline solver).
    pub fn dpll(&self) -> bool {
        let mut assignment: Vec<Option<bool>> = vec![None; self.num_vars];
        self.dpll_rec(&mut assignment)
    }

    fn dpll_rec(&self, assignment: &mut Vec<Option<bool>>) -> bool {
        // Unit propagation to a fixpoint.
        let mut trail: Vec<usize> = Vec::new();
        loop {
            let mut propagated = false;
            for clause in &self.clauses {
                let mut unassigned: Option<Lit> = None;
                let mut satisfied = false;
                let mut unassigned_count = 0;
                for l in clause {
                    match assignment[l.var] {
                        Some(v) if v == l.positive => {
                            satisfied = true;
                            break;
                        }
                        Some(_) => {}
                        None => {
                            unassigned_count += 1;
                            unassigned = Some(*l);
                        }
                    }
                }
                if satisfied {
                    continue;
                }
                match unassigned_count {
                    0 => {
                        // Conflict: undo and fail.
                        for v in trail {
                            assignment[v] = None;
                        }
                        return false;
                    }
                    1 => {
                        let l = unassigned.expect("one unassigned literal");
                        assignment[l.var] = Some(l.positive);
                        trail.push(l.var);
                        propagated = true;
                    }
                    _ => {}
                }
            }
            if !propagated {
                break;
            }
        }
        // Branch on the first unassigned variable.
        match assignment.iter().position(Option::is_none) {
            None => true, // all assigned, no conflict: satisfied
            Some(v) => {
                for value in [true, false] {
                    assignment[v] = Some(value);
                    if self.dpll_rec(assignment) {
                        return true;
                    }
                    assignment[v] = None;
                }
                for v in trail {
                    assignment[v] = None;
                }
                false
            }
        }
    }

    /// Brute-force evaluation (for cross-checking small instances).
    pub fn brute_force(&self) -> bool {
        if self.num_vars > 24 {
            panic!("brute force limited to 24 variables");
        }
        (0u64..(1 << self.num_vars)).any(|bits| {
            self.clauses.iter().all(|clause| {
                clause
                    .iter()
                    .any(|l| ((bits >> l.var) & 1 == 1) == l.positive)
            })
        })
    }

    /// Encode into fully bounded TD: `?- assign(n)` is executable iff the
    /// formula is satisfiable.
    pub fn to_td(&self) -> Scenario {
        let mut src = String::new();
        let _ = writeln!(
            src,
            "% 3SAT in fully bounded TD: {} vars / {} clauses",
            self.num_vars,
            self.clauses.len()
        );
        let _ = writeln!(src, "base tru/1.");
        let _ = writeln!(src, "assign(0) <- check.");
        let _ = writeln!(
            src,
            "assign(V) <- V > 0 * {{ ins.tru(V) or () }} * V2 is V - 1 * assign(V2)."
        );
        if self.clauses.is_empty() {
            let _ = writeln!(src, "check <- ().");
        } else {
            let names: Vec<String> = (0..self.clauses.len()).map(|j| format!("cl{j}")).collect();
            let _ = writeln!(src, "check <- {}.", names.join(" * "));
            for (j, clause) in self.clauses.iter().enumerate() {
                let lits: Vec<String> = clause
                    .iter()
                    .map(|l| {
                        // Variable v is TD constant v+1 (1-based, since
                        // assign counts down to 0).
                        let v = l.var + 1;
                        if l.positive {
                            format!("tru({v})")
                        } else {
                            format!("not tru({v})")
                        }
                    })
                    .collect();
                let _ = writeln!(src, "cl{j} <- {{ {} }}.", lits.join(" or "));
            }
        }
        let _ = writeln!(src, "?- assign({}).", self.num_vars);
        Scenario::from_source(src)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::FragmentReport;
    use td_engine::EngineConfig;

    fn lit(var: usize, positive: bool) -> Lit {
        Lit { var, positive }
    }

    #[test]
    fn dpll_on_tiny_instances() {
        let sat = Cnf {
            num_vars: 2,
            clauses: vec![vec![lit(0, true), lit(1, true)], vec![lit(0, false)]],
        };
        assert!(sat.dpll());
        let unsat = Cnf {
            num_vars: 1,
            clauses: vec![vec![lit(0, true)], vec![lit(0, false)]],
        };
        assert!(!unsat.dpll());
    }

    #[test]
    fn dpll_agrees_with_brute_force_on_random_instances() {
        for seed in 0..30 {
            let cnf = Cnf::random_3sat(6, 14, seed);
            assert_eq!(cnf.dpll(), cnf.brute_force(), "seed {seed}");
        }
    }

    #[test]
    fn td_encoding_agrees_with_dpll() {
        for seed in 0..10 {
            let cnf = Cnf::random_3sat(5, 12, seed);
            let out = cnf
                .to_td()
                .run_with(EngineConfig::default().with_max_steps(5_000_000))
                .unwrap();
            assert_eq!(out.is_success(), cnf.dpll(), "seed {seed}");
        }
    }

    #[test]
    fn unsatisfiable_formula_fails_in_td() {
        let unsat = Cnf {
            num_vars: 1,
            clauses: vec![vec![lit(0, true)], vec![lit(0, false)]],
        };
        assert!(!unsat.to_td().run().unwrap().is_success());
    }

    #[test]
    fn encoding_uses_only_tail_recursion() {
        let cnf = Cnf::random_3sat(4, 6, 1);
        let scenario = cnf.to_td();
        let rep = FragmentReport::classify(&scenario.program, &scenario.goal);
        assert!(rep.facts.tail_recursion_only);
        assert!(!rep.facts.recursion_through_par);
        assert!(rep.decidable());
    }

    #[test]
    fn empty_formula_is_satisfiable() {
        let cnf = Cnf {
            num_vars: 3,
            clauses: vec![],
        };
        assert!(cnf.dpll());
        assert!(cnf.to_td().run().unwrap().is_success());
    }
}
