//! Nonrecursive TD workloads (Theorem 4.7).
//!
//! "If we eliminate recursion altogether, then data complexity plummets
//! from RE to less than PTIME" (§4, Thm 4.7). These generators produce
//! nonrecursive-TD families whose *data* size scales while the program
//! stays fixed, so benchmarks can observe the polynomial growth:
//!
//! * [`khop`] — a k-hop join query over a random edge relation (pure
//!   queries);
//! * [`promote_pipeline`] — a nonrecursive *transaction*: test a tuple,
//!   derive a value, update two relations — run over every matching tuple
//!   by a fixed-width concurrent goal.

use rand::rngs::StdRng;
use rand::Rng;
use rand::SeedableRng;
use std::fmt::Write as _;
use td_workflow::Scenario;

/// A random directed graph on `nodes` vertices with `edges` edges,
/// as `init edge(ni, nj).` facts.
fn random_edges(nodes: usize, edges: usize, seed: u64, src: &mut String) {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut seen = std::collections::HashSet::new();
    let mut placed = 0;
    while placed < edges {
        let a = rng.random_range(0..nodes);
        let b = rng.random_range(0..nodes);
        if seen.insert((a, b)) {
            let _ = writeln!(src, "init edge(n{a}, n{b}).");
            placed += 1;
        }
        if seen.len() >= nodes * nodes {
            break;
        }
    }
}

/// A k-hop reachability query (`hop_k(X, Y)` = path of exactly k edges)
/// over a random graph. Nonrecursive: the program is a chain of k rules.
/// The goal asks for any k-hop pair and marks it.
pub fn khop(nodes: usize, edges: usize, k: usize, seed: u64) -> Scenario {
    assert!(k >= 1);
    let mut src = String::new();
    let _ = writeln!(
        src,
        "% nonrecursive k-hop query: k={k}, |V|={nodes}, |E|={edges}"
    );
    let _ = writeln!(src, "base edge/2.");
    let _ = writeln!(src, "base found/2.");
    random_edges(nodes, edges, seed, &mut src);
    let _ = writeln!(src, "hop1(X, Y) <- edge(X, Y).");
    for i in 2..=k {
        let prev = i - 1;
        let _ = writeln!(src, "hop{i}(X, Z) <- edge(X, Y) * hop{prev}(Y, Z).");
    }
    let _ = writeln!(src, "?- hop{k}(X, Y) * ins.found(X, Y).");
    Scenario::from_source(src)
}

/// A nonrecursive update transaction applied to `width` work tuples by a
/// fixed-width concurrent goal: each branch tests `pending(i, N)`, computes
/// `N+1`, deletes the pending tuple and inserts a processed one.
pub fn promote_pipeline(width: usize, seed: u64) -> Scenario {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut src = String::new();
    let _ = writeln!(src, "% nonrecursive update transaction, width {width}");
    let _ = writeln!(src, "base pending/2.");
    let _ = writeln!(src, "base processed/2.");
    for i in 0..width {
        let n: i64 = rng.random_range(0..1000);
        let _ = writeln!(src, "init pending(w{i}, {n}).");
    }
    let _ = writeln!(
        src,
        "promote(W) <- pending(W, N) * del.pending(W, N) * M is N + 1 * ins.processed(W, M)."
    );
    if width == 0 {
        let _ = writeln!(src, "?- ().");
    } else {
        let branches: Vec<String> = (0..width).map(|i| format!("promote(w{i})")).collect();
        let _ = writeln!(src, "?- {}.", branches.join(" | "));
    }
    Scenario::from_source(src)
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::{Fragment, FragmentReport, Pred};

    #[test]
    fn khop_finds_paths_on_a_dense_graph() {
        // Dense enough that a 3-hop path certainly exists.
        let scenario = khop(10, 60, 3, 7);
        let out = scenario.run().unwrap();
        let sol = out.solution().expect("some 3-hop path exists");
        assert_eq!(sol.db.relation(Pred::new("found", 2)).unwrap().len(), 1);
    }

    #[test]
    fn khop_fails_on_edgeless_graph() {
        let scenario = khop(5, 0, 2, 0);
        assert!(!scenario.run().unwrap().is_success());
    }

    #[test]
    fn khop_is_nonrecursive() {
        let scenario = khop(6, 10, 4, 1);
        let rep = FragmentReport::classify(&scenario.program, &scenario.goal);
        assert_eq!(rep.fragment, Fragment::Nonrecursive);
    }

    #[test]
    fn promote_processes_every_tuple() {
        let scenario = promote_pipeline(5, 3);
        let out = scenario.run().unwrap();
        let sol = out.solution().expect("all branches promote");
        assert!(sol.db.relation(Pred::new("pending", 2)).unwrap().is_empty());
        assert_eq!(sol.db.relation(Pred::new("processed", 2)).unwrap().len(), 5);
    }

    #[test]
    fn promote_increments_the_value() {
        let scenario = promote_pipeline(1, 11);
        // Find the initial value from the db.
        let pending = scenario
            .db
            .relation(Pred::new("pending", 2))
            .unwrap()
            .to_vec();
        let n = pending[0].values()[1].as_int().unwrap();
        let out = scenario.run().unwrap();
        let processed = out
            .solution()
            .unwrap()
            .db
            .relation(Pred::new("processed", 2))
            .unwrap()
            .to_vec();
        assert_eq!(processed[0].values()[1].as_int().unwrap(), n + 1);
    }

    #[test]
    fn promote_is_nonrecursive_despite_concurrency() {
        let scenario = promote_pipeline(3, 0);
        let rep = FragmentReport::classify(&scenario.program, &scenario.goal);
        assert_eq!(rep.fragment, Fragment::Nonrecursive);
        assert!(rep.facts.par_in_goal);
    }

    #[test]
    fn generators_are_deterministic_per_seed() {
        assert_eq!(khop(8, 20, 2, 5).source, khop(8, 20, 2, 5).source);
        assert_eq!(promote_pipeline(4, 9).source, promote_pipeline(4, 9).source);
    }
}
