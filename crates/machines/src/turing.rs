//! Single-tape Turing machines, compiled to 2-stack machines.
//!
//! §4's RE-completeness discussion is about encoding Turing machines:
//! "typically, to prove RE-completeness, the tape of a Turing machine is
//! encoded as a database … The result is that TD achieves RE-completeness
//! with a fixed data domain, and a fixed database schema" — via processes
//! instead. The classical bridge is that a tape is exactly two stacks
//! (left of the head, reversed; head symbol + right of the head), so a TM
//! compiles to a 2-stack machine (\[52\]), which [`crate::stack`] already
//! encodes as three concurrent TD processes.
//!
//! This module closes that chain: TM → 2-stack machine → TD, each stage
//! cross-validated against a direct simulator.
//!
//! Conventions: tape alphabet symbols are small integers; symbol 0 is the
//! blank. The head starts on the first input symbol. `s0` holds the tape
//! left of the head (top = nearest cell); `s1` holds the head cell and
//! everything to its right (top = head cell). Moving left pops `s0` onto
//! `s1`; moving right pops `s1` onto `s0`. Popping an empty stack reads a
//! blank.

use crate::stack::{Instr as SInstr, StackId, StackMachine, Sym};
use std::collections::HashMap;

/// Head movement.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Move {
    Left,
    Right,
    Stay,
}

/// A transition: in state `q` reading `sym`, write, move, go to state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Rule {
    pub state: usize,
    pub read: u8,
    pub write: u8,
    pub mv: Move,
    pub next: usize,
}

/// A deterministic single-tape Turing machine. State 0 is initial; states
/// in `accept` halt and accept; a missing transition rejects.
#[derive(Clone, Debug, Default)]
pub struct TuringMachine {
    pub rules: Vec<Rule>,
    pub accept: Vec<usize>,
    /// Largest tape symbol used (for the stack alphabet).
    pub max_symbol: u8,
}

/// Result of a direct TM run.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum TmRun {
    /// Accepted; final tape (blanks trimmed), head position.
    Accepted {
        steps: u64,
        tape: Vec<u8>,
    },
    Rejected {
        steps: u64,
    },
    OutOfFuel,
}

impl TuringMachine {
    fn transition(&self, state: usize, read: u8) -> Option<&Rule> {
        self.rules
            .iter()
            .find(|r| r.state == state && r.read == read)
    }

    /// Direct simulation on `input`.
    pub fn run(&self, input: &[u8], max_steps: u64) -> TmRun {
        let mut tape: HashMap<i64, u8> = input
            .iter()
            .enumerate()
            .map(|(i, s)| (i as i64, *s))
            .collect();
        let mut head: i64 = 0;
        let mut state = 0usize;
        let mut steps = 0u64;
        loop {
            if self.accept.contains(&state) {
                let mut cells: Vec<(i64, u8)> = tape.into_iter().filter(|(_, s)| *s != 0).collect();
                cells.sort_unstable();
                return TmRun::Accepted {
                    steps,
                    tape: cells.into_iter().map(|(_, s)| s).collect(),
                };
            }
            if steps >= max_steps {
                return TmRun::OutOfFuel;
            }
            steps += 1;
            let read = tape.get(&head).copied().unwrap_or(0);
            let Some(rule) = self.transition(state, read) else {
                return TmRun::Rejected { steps };
            };
            tape.insert(head, rule.write);
            match rule.mv {
                Move::Left => head -= 1,
                Move::Right => head += 1,
                Move::Stay => {}
            }
            state = rule.next;
        }
    }

    /// Compile to a 2-stack machine with `input` pre-loaded. TM states map
    /// to blocks of stack instructions; accept states map to `Halt`,
    /// missing transitions to `Reject`.
    pub fn to_stack_machine(&self, input: &[u8]) -> StackMachine {
        let nstates = self
            .rules
            .iter()
            .flat_map(|r| [r.state, r.next])
            .chain(self.accept.iter().copied())
            .max()
            .unwrap_or(0)
            + 1;
        let alphabet: Vec<u8> = (0..=self.max_symbol).collect();

        let mut instrs: Vec<SInstr> = Vec::new();

        // Prologue: push the input on s1 in reverse, so the first input
        // symbol ends on top (the head cell).
        for (i, sym) in input.iter().rev().enumerate() {
            instrs.push(SInstr::Push(StackId::S1, Sym(*sym), i + 1));
        }
        let prologue = input.len();

        // Layout: for each TM state q, a block:
        //   entry(q):   PopBranch(s1, sym -> dispatch(q, sym), empty -> dispatch(q, blank))
        //   dispatch(q, sym): Push(write) then move handling then jump entry(q').
        // We materialize addresses in two passes: reserve, then patch.
        // Block shape per state:
        //   [pop] [per-symbol: write-push, move-op*, ...]
        // For simplicity each (q, sym) handler is:
        //   accept state: Halt (handled at entry)
        //   no rule: Reject
        //   rule with Stay:  Push(s1, write, entry(next))
        //   rule with Right: Push(s0, write, entry(next))
        //   rule with Left:  Push(s1, write, t) ; t: PopBranch(s0, x -> push(s1, x, entry(next)), empty -> push(s1, blank, entry(next)))
        // Left moves need per-symbol re-push blocks.

        // First pass: compute entry addresses by emitting with placeholders.
        let mut entry: HashMap<usize, usize> = HashMap::new();
        // We emit states in order 0..nstates.
        // Use a worklist-free straightforward emission; addresses of later
        // states unknown during emission, so collect patches.
        #[derive(Clone, Copy)]
        enum Patch {
            Entry(usize), // replace placeholder address with entry(state)
        }
        let mut patches: Vec<(usize, Patch)> = Vec::new(); // (instr index, patch)
        let placeholder = usize::MAX - 1;

        let push_patched = |instrs: &mut Vec<SInstr>,
                            patches: &mut Vec<(usize, Patch)>,
                            sid: StackId,
                            sym: u8,
                            target_state: usize| {
            instrs.push(SInstr::Push(sid, Sym(sym), placeholder));
            patches.push((instrs.len() - 1, Patch::Entry(target_state)));
        };

        let _ = prologue;
        for q in 0..nstates {
            entry.insert(q, instrs.len());
            if self.accept.contains(&q) {
                instrs.push(SInstr::Halt);
                continue;
            }
            // entry(q): pop the head cell from s1 (empty = blank).
            let pop_at = instrs.len();
            instrs.push(SInstr::PopBranch(StackId::S1, Vec::new(), 0)); // patched below
            let mut branches: Vec<(Sym, usize)> = Vec::new();
            let mut blank_target = 0usize;
            for &sym in &alphabet {
                let handler_at = instrs.len();
                match self.transition(q, sym) {
                    None => instrs.push(SInstr::Reject),
                    Some(rule) => match rule.mv {
                        Move::Stay => {
                            push_patched(
                                &mut instrs,
                                &mut patches,
                                StackId::S1,
                                rule.write,
                                rule.next,
                            );
                        }
                        Move::Right => {
                            push_patched(
                                &mut instrs,
                                &mut patches,
                                StackId::S0,
                                rule.write,
                                rule.next,
                            );
                        }
                        Move::Left => {
                            // write under-the-head cell onto s1, then move
                            // one cell from s0 to s1.
                            let shift_at = instrs.len() + 1;
                            instrs.push(SInstr::Push(StackId::S1, Sym(rule.write), shift_at));
                            // shift: pop s0 (empty = blank) and push on s1.
                            let mut shift_branches = Vec::new();
                            let shift_pop_at = instrs.len();
                            instrs.push(SInstr::PopBranch(StackId::S0, Vec::new(), 0));
                            for &x in &alphabet {
                                shift_branches.push((Sym(x), instrs.len()));
                                push_patched(&mut instrs, &mut patches, StackId::S1, x, rule.next);
                            }
                            let blank_push = instrs.len();
                            push_patched(&mut instrs, &mut patches, StackId::S1, 0, rule.next);
                            instrs[shift_pop_at] =
                                SInstr::PopBranch(StackId::S0, shift_branches, blank_push);
                        }
                    },
                }
                if sym == 0 {
                    blank_target = handler_at;
                }
                branches.push((Sym(sym), handler_at));
            }
            instrs[pop_at] = SInstr::PopBranch(StackId::S1, branches, blank_target);
        }

        // Patch prologue jump: after pushing input, fall through to
        // entry(0). The prologue's last push targets `prologue` which is
        // entry(0)'s address only if nothing was inserted between — but
        // entry(0) is at `prologue` by construction (we emitted state 0
        // right after the prologue), so prologue targets are already
        // correct.
        debug_assert_eq!(entry[&0], prologue);

        // Apply patches.
        for (idx, Patch::Entry(q)) in patches {
            if let SInstr::Push(sid, sym, _) = instrs[idx] {
                instrs[idx] = SInstr::Push(sid, sym, entry[&q]);
            }
        }
        StackMachine { instrs }
    }
}

/// A TM that accepts iff the binary input (MSB first, 1-origin symbols:
/// 1 = zero-bit, 2 = one-bit) is a palindrome.
pub fn palindrome_tm() -> TuringMachine {
    // States: 0 = pick first symbol; 1/2 = scan right carrying 1-or-2;
    // 3/4 = at right end, check match for 1/2; 5 = scan left; 6 = accept.
    // Blank = 0.
    let r = |state, read, write, mv, next| Rule {
        state,
        read,
        write,
        mv,
        next,
    };
    TuringMachine {
        rules: vec![
            // state 0: read leftmost remaining symbol
            r(0, 0, 0, Move::Stay, 6), // empty: palindrome
            r(0, 1, 0, Move::Right, 1),
            r(0, 2, 0, Move::Right, 2),
            // state 1: carry "expect 1 at the end"; run right
            r(1, 1, 1, Move::Right, 1),
            r(1, 2, 2, Move::Right, 1),
            r(1, 0, 0, Move::Left, 3),
            // state 2: carry "expect 2"
            r(2, 1, 1, Move::Right, 2),
            r(2, 2, 2, Move::Right, 2),
            r(2, 0, 0, Move::Left, 4),
            // state 3: rightmost symbol must be 1 (or gone: odd length ok)
            r(3, 1, 0, Move::Left, 5),
            r(3, 0, 0, Move::Stay, 6), // consumed everything: ok
            // state 4: rightmost must be 2
            r(4, 2, 0, Move::Left, 5),
            r(4, 0, 0, Move::Stay, 6),
            // state 5: run left to the start
            r(5, 1, 1, Move::Left, 5),
            r(5, 2, 2, Move::Left, 5),
            r(5, 0, 0, Move::Right, 0),
        ],
        accept: vec![6],
        max_symbol: 2,
    }
}

/// A TM computing unary successor: input is a block of 1s; it appends one
/// more 1 and accepts.
pub fn successor_tm() -> TuringMachine {
    let r = |state, read, write, mv, next| Rule {
        state,
        read,
        write,
        mv,
        next,
    };
    TuringMachine {
        rules: vec![
            r(0, 1, 1, Move::Right, 0), // run right over the 1s
            r(0, 0, 1, Move::Stay, 1),  // write one more
        ],
        accept: vec![1],
        max_symbol: 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_engine::decider::{decide, DeciderConfig};
    use td_engine::EngineConfig;

    fn word(bits: &str) -> Vec<u8> {
        bits.bytes().map(|b| b - b'0' + 1).collect() // '0'→1, '1'→2
    }

    #[test]
    fn palindrome_tm_direct() {
        let tm = palindrome_tm();
        for (w, expect) in [
            ("", true),
            ("0", true),
            ("01", false),
            ("010", true),
            ("0110", true),
            ("0111", false),
            ("10101", true),
        ] {
            match tm.run(&word(w), 10_000) {
                TmRun::Accepted { .. } => assert!(expect, "{w} wrongly accepted"),
                TmRun::Rejected { .. } => assert!(!expect, "{w} wrongly rejected"),
                TmRun::OutOfFuel => panic!("{w}: out of fuel"),
            }
        }
    }

    #[test]
    fn successor_tm_appends_a_one() {
        let tm = successor_tm();
        match tm.run(&[1, 1, 1], 1000) {
            TmRun::Accepted { tape, .. } => assert_eq!(tape, vec![1, 1, 1, 1]),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn stack_compilation_agrees_with_tm() {
        let tm = palindrome_tm();
        for w in ["", "0", "01", "010", "0110", "100", "11"] {
            let input = word(w);
            let direct = matches!(tm.run(&input, 10_000), TmRun::Accepted { .. });
            let sm = tm.to_stack_machine(&input);
            assert_eq!(
                sm.accepts(100_000),
                Some(direct),
                "stack machine disagrees on {w:?}"
            );
        }
    }

    #[test]
    fn full_chain_tm_to_stack_to_td_accepting() {
        // Accepting inputs through the interpreter: TM → stacks → TD.
        let tm = palindrome_tm();
        for w in ["", "0", "11"] {
            let input = word(w);
            assert!(matches!(tm.run(&input, 10_000), TmRun::Accepted { .. }));
            let scenario = tm.to_stack_machine(&input).to_td();
            let out = scenario
                .run_with(EngineConfig::default().with_max_steps(10_000_000))
                .unwrap();
            assert!(out.is_success(), "TD rejects palindrome {w:?}");
        }
    }

    #[test]
    fn full_chain_rejecting_via_decider() {
        let tm = palindrome_tm();
        let input = word("01");
        assert!(matches!(tm.run(&input, 10_000), TmRun::Rejected { .. }));
        let scenario = tm.to_stack_machine(&input).to_td();
        let d = decide(
            &scenario.program,
            &scenario.goal,
            &scenario.db,
            DeciderConfig {
                max_configs: 2_000_000,
                exhaustive: false,
            },
        )
        .unwrap();
        assert!(!d.truncated, "explored {} configs", d.configs);
        assert!(!d.executable);
    }

    #[test]
    fn missing_transition_rejects() {
        let tm = TuringMachine {
            rules: vec![],
            accept: vec![],
            max_symbol: 1,
        };
        assert!(matches!(tm.run(&[1], 10), TmRun::Rejected { .. }));
        let sm = tm.to_stack_machine(&[1]);
        assert_eq!(sm.accepts(1000), Some(false));
    }

    #[test]
    fn left_moves_past_the_tape_edge_read_blanks() {
        // A TM that immediately moves left twice then accepts on blank.
        let r = |state, read, write, mv, next| Rule {
            state,
            read,
            write,
            mv,
            next,
        };
        let tm = TuringMachine {
            rules: vec![
                r(0, 1, 1, Move::Left, 1),
                r(1, 0, 0, Move::Left, 2),
                r(2, 0, 0, Move::Stay, 3),
            ],
            accept: vec![3],
            max_symbol: 1,
        };
        assert!(matches!(tm.run(&[1], 100), TmRun::Accepted { .. }));
        let sm = tm.to_stack_machine(&[1]);
        assert_eq!(sm.accepts(10_000), Some(true));
    }
}
