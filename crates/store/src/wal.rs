//! The logical write-ahead log (`wal.tdl`).
//!
//! One checksummed record per *committed* transaction: the record carries a
//! sequence number, the ordered `ins`/`del` delta the engine produced, and
//! the 128-bit content digest of the database *after* the delta. Appends are
//! `fsync`'d before the commit is acknowledged, so an acknowledged
//! transaction survives a crash.
//!
//! The log is *logical*: it replays elementary updates against the
//! snapshot, not file pages — the same shape as Wielemaker's transaction
//! journal for the logical update view, and exactly the delta objects the
//! engine's committed-path semantics already define.
//!
//! ## Torn-tail rule
//!
//! A crash can cut the last record anywhere, byte-granular. The reader
//! walks frames from the front; the first frame that is short, overruns the
//! file, or fails its checksum marks the **torn tail** — that record and
//! everything after it never happened. Because a record is only
//! acknowledged after `fsync`, the torn record is always an unacknowledged
//! one; dropping it is correct, not lossy.
//!
//! ## Group records
//!
//! [`Wal::append_group`] writes several commit records inside **one**
//! frame, fsync'd once — the group-commit discipline `td serve` uses to
//! amortize the fsync bound across concurrently-arriving transactions. A
//! group payload starts with the sentinel seq [`GROUP_SENTINEL`] (a value
//! no real record can carry: seqs are contiguous from 0, so reaching it
//! would take 2^64 − 1 commits), followed by a record count and the
//! records themselves. Single-record payloads are unchanged, so logs
//! written before group commit existed still parse. Because the frame
//! checksum covers the whole group, a crash mid-group tears the *entire*
//! group — recovery yields a prefix of whole groups, never a torn one,
//! and every record in the torn group was by construction unacknowledged.

use crate::codec::{
    self, check_header, file_header, frame, read_frame, Dec, Enc, FrameOutcome, KIND_WAL,
};
use crate::{io_err, Result, StoreError};
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use td_db::Delta;

/// File name of the WAL inside a store directory.
pub const WAL_FILE: &str = "wal.tdl";

/// Sentinel seq value opening a group-record payload (see module docs).
pub const GROUP_SENTINEL: u64 = u64::MAX;

/// One committed-transaction record.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WalRecord {
    /// Position in the commit sequence since the snapshot (0-based,
    /// contiguous).
    pub seq: u64,
    /// Content digest of the database after applying [`WalRecord::delta`].
    pub post_digest: u128,
    /// The committed elementary updates, in application order.
    pub delta: Delta,
}

/// What the reader found at the end of the log.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum WalTail {
    /// The log ends exactly on a record boundary.
    Clean,
    /// A torn or corrupt frame begins at this byte offset; `dropped` bytes
    /// follow it.
    Torn { at: u64, dropped: u64 },
}

/// A fully scanned log.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct WalContents {
    /// Digest of the snapshot state this log extends.
    pub base_digest: u128,
    /// Checksum-verified records before the tail, in order.
    pub records: Vec<WalRecord>,
    /// Record count of each verified frame, in file order: `1` for a
    /// single-record frame, `k >= 1` for a group. `groups.iter().sum()` ==
    /// `records.len()`. `td db log` and the serve stats read batching off
    /// this.
    pub groups: Vec<u64>,
    /// Tail state.
    pub tail: WalTail,
    /// Byte offset just past the last verified record (where an append
    /// after recovery must resume).
    pub valid_len: u64,
}

fn record_payload(seq: u64, post_digest: u128, delta: &Delta) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_varint(seq);
    enc.put_u128(post_digest);
    codec::put_delta(&mut enc, delta);
    enc.into_bytes()
}

/// Payload of a group frame: sentinel, count, then `count` records.
fn group_payload(first_seq: u64, entries: &[(Delta, u128)]) -> Vec<u8> {
    let mut enc = Enc::new();
    enc.put_varint(GROUP_SENTINEL);
    enc.put_varint(entries.len() as u64);
    for (i, (delta, post_digest)) in entries.iter().enumerate() {
        enc.put_varint(first_seq + i as u64);
        enc.put_u128(*post_digest);
        codec::put_delta(&mut enc, delta);
    }
    enc.into_bytes()
}

fn parse_one_record(dec: &mut Dec<'_>, seq: u64) -> Result<WalRecord> {
    let post_digest = dec.u128("record post-digest")?;
    let delta = codec::get_delta(dec)?;
    Ok(WalRecord {
        seq,
        post_digest,
        delta,
    })
}

/// Parse one frame payload: either a single record or a whole group.
fn parse_frame_records(payload: &[u8]) -> Result<Vec<WalRecord>> {
    let mut dec = Dec::new(payload);
    let first = dec.varint("record seq")?;
    let mut out = Vec::new();
    if first == GROUP_SENTINEL {
        let count = dec.varint("group count")?;
        if count == 0 {
            return Err(StoreError::Corrupt("empty wal record group".into()));
        }
        for _ in 0..count {
            let seq = dec.varint("group record seq")?;
            out.push(parse_one_record(&mut dec, seq)?);
        }
    } else {
        out.push(parse_one_record(&mut dec, first)?);
    }
    dec.finish()?;
    Ok(out)
}

/// The header + base-digest page a fresh WAL starts with.
pub fn wal_prefix(base_digest: u128) -> Vec<u8> {
    let mut out = file_header(KIND_WAL);
    let mut enc = Enc::new();
    enc.put_u128(base_digest);
    out.extend_from_slice(&frame(&enc.into_bytes()));
    out
}

/// Parse a WAL byte image. Structural damage to the header or base page is
/// a hard error (the file does not identify its base state); damage in the
/// record region is a torn tail, reported, never replayed past.
pub fn parse_wal(bytes: &[u8]) -> Result<WalContents> {
    let offset = check_header(bytes, KIND_WAL, "wal")?;
    let (base_digest, mut at) = match read_frame(bytes, offset) {
        FrameOutcome::Ok { payload, next } => {
            let mut dec = Dec::new(payload);
            let d = dec.u128("wal base digest")?;
            dec.finish()?;
            (d, next)
        }
        _ => {
            return Err(StoreError::Corrupt(
                "wal base-digest page missing or corrupt".into(),
            ))
        }
    };
    let mut records: Vec<WalRecord> = Vec::new();
    let mut groups = Vec::new();
    loop {
        match read_frame(bytes, at) {
            FrameOutcome::End => {
                return Ok(WalContents {
                    base_digest,
                    records,
                    groups,
                    tail: WalTail::Clean,
                    valid_len: at as u64,
                });
            }
            FrameOutcome::Torn { at: torn_at } => {
                return Ok(WalContents {
                    base_digest,
                    records,
                    groups,
                    tail: WalTail::Torn {
                        at: torn_at as u64,
                        dropped: (bytes.len() - torn_at) as u64,
                    },
                    valid_len: torn_at as u64,
                });
            }
            FrameOutcome::Ok { payload, next } => {
                let recs = parse_frame_records(payload)?;
                groups.push(recs.len() as u64);
                for rec in recs {
                    if rec.seq != records.len() as u64 {
                        return Err(StoreError::Corrupt(format!(
                            "wal record at byte {at} carries seq {} (expected {})",
                            rec.seq,
                            records.len()
                        )));
                    }
                    records.push(rec);
                }
                at = next;
            }
        }
    }
}

/// Read and parse the WAL at `path`.
pub fn read_wal(path: &Path) -> Result<WalContents> {
    let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
    parse_wal(&bytes)
}

/// An open, append-able WAL handle.
#[derive(Debug)]
pub struct Wal {
    path: PathBuf,
    file: fs::File,
    next_seq: u64,
}

impl Wal {
    /// Create a fresh WAL for a base state, atomically (temp + rename), and
    /// open it for appending.
    pub fn create(path: &Path, base_digest: u128) -> Result<Wal> {
        let tmp = path.with_extension("tdl.tmp");
        let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
        f.write_all(&wal_prefix(base_digest))
            .map_err(|e| io_err(&tmp, e))?;
        f.sync_all().map_err(|e| io_err(&tmp, e))?;
        drop(f);
        fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
        Wal::open_at(path, wal_prefix(base_digest).len() as u64, 0)
    }

    /// Open an existing WAL for appending after recovery scanned it:
    /// truncate away any torn tail at `valid_len`, resume at `next_seq`.
    pub fn open_at(path: &Path, valid_len: u64, next_seq: u64) -> Result<Wal> {
        let file = fs::OpenOptions::new()
            .write(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        file.set_len(valid_len).map_err(|e| io_err(path, e))?;
        file.sync_all().map_err(|e| io_err(path, e))?;
        let mut wal = Wal {
            path: path.to_owned(),
            file,
            next_seq,
        };
        use std::io::Seek;
        wal.file
            .seek(std::io::SeekFrom::End(0))
            .map_err(|e| io_err(&wal.path, e))?;
        Ok(wal)
    }

    /// Sequence number the next append will carry.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Append one committed transaction and `fsync` before returning — the
    /// fsync-on-commit discipline: when this returns `Ok`, the record
    /// survives any crash.
    pub fn append(&mut self, delta: &Delta, post_digest: u128) -> Result<u64> {
        let seq = self.next_seq;
        let page = frame(&record_payload(seq, post_digest, delta));
        self.file
            .write_all(&page)
            .map_err(|e| io_err(&self.path, e))?;
        self.file.sync_all().map_err(|e| io_err(&self.path, e))?;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Append a whole batch of committed transactions as **one** group
    /// frame with **one** `fsync` — group commit. Returns the seq of the
    /// first record in the group; the batch occupies contiguous seqs after
    /// it. All records in the group become durable together: a crash
    /// mid-write tears the single frame, dropping the whole (entirely
    /// unacknowledged) group.
    pub fn append_group(&mut self, entries: &[(Delta, u128)]) -> Result<u64> {
        assert!(!entries.is_empty(), "empty commit group");
        let first_seq = self.next_seq;
        // A group of one is written in the plain single-record framing, so
        // low-concurrency serve traffic produces logs byte-identical to the
        // per-commit path.
        let page = if entries.len() == 1 {
            frame(&record_payload(first_seq, entries[0].1, &entries[0].0))
        } else {
            frame(&group_payload(first_seq, entries))
        };
        self.file
            .write_all(&page)
            .map_err(|e| io_err(&self.path, e))?;
        self.file.sync_all().map_err(|e| io_err(&self.path, e))?;
        self.next_seq += entries.len() as u64;
        Ok(first_seq)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::Pred;
    use td_db::{tuple, Database, DeltaOp};

    fn temp_wal(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("td-store-wal-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn sample_delta(i: i64) -> Delta {
        let mut d = Delta::new();
        d.push(DeltaOp::Ins(Pred::new("t", 1), tuple!(i)));
        if i % 2 == 0 {
            d.push(DeltaOp::Del(Pred::new("t", 1), tuple!(i - 1)));
        }
        d
    }

    #[test]
    fn append_and_read_back() {
        let path = temp_wal("append_read.tdl");
        let mut wal = Wal::create(&path, 0xbeef).unwrap();
        let mut db = Database::new();
        for i in 0..5i64 {
            let delta = sample_delta(i);
            db = delta.replay(&db).unwrap();
            let seq = wal.append(&delta, db.digest()).unwrap();
            assert_eq!(seq, i as u64);
        }
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.base_digest, 0xbeef);
        assert_eq!(contents.records.len(), 5);
        assert_eq!(contents.tail, WalTail::Clean);
        assert_eq!(contents.records[3].delta, sample_delta(3));
        assert_eq!(contents.records[4].post_digest, db.digest());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_cut_at_every_truncation_point() {
        let path = temp_wal("torn.tdl");
        let mut wal = Wal::create(&path, 7).unwrap();
        let mut boundaries = vec![fs::metadata(&path).unwrap().len()];
        for i in 0..3i64 {
            wal.append(&sample_delta(i), i as u128).unwrap();
            boundaries.push(fs::metadata(&path).unwrap().len());
        }
        drop(wal);
        let full = fs::read(&path).unwrap();
        for cut in boundaries[0]..=*boundaries.last().unwrap() {
            let contents = parse_wal(&full[..cut as usize]).unwrap();
            // Number of complete records whose boundary is <= cut.
            let expect = boundaries.iter().filter(|b| **b <= cut).count() - 1;
            assert_eq!(contents.records.len(), expect, "cut at {cut}");
            if boundaries.contains(&cut) {
                assert_eq!(contents.tail, WalTail::Clean, "cut at {cut}");
            } else {
                assert!(
                    matches!(contents.tail, WalTail::Torn { .. }),
                    "cut at {cut}"
                );
            }
            assert_eq!(
                contents.valid_len,
                *boundaries.iter().filter(|b| **b <= cut).max().unwrap()
            );
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_resumes_after_torn_tail() {
        let path = temp_wal("resume.tdl");
        let mut wal = Wal::create(&path, 1).unwrap();
        wal.append(&sample_delta(0), 10).unwrap();
        wal.append(&sample_delta(1), 11).unwrap();
        drop(wal);
        // Tear the second record.
        let len = fs::metadata(&path).unwrap().len();
        let f = fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.records.len(), 1);
        let mut wal = Wal::open_at(&path, scan.valid_len, scan.records.len() as u64).unwrap();
        wal.append(&sample_delta(2), 12).unwrap();
        drop(wal);
        let scan = read_wal(&path).unwrap();
        assert_eq!(scan.tail, WalTail::Clean);
        let seqs: Vec<u64> = scan.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1]);
        assert_eq!(scan.records[1].post_digest, 12);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn out_of_order_seq_is_corruption_not_tail() {
        let mut bytes = wal_prefix(0);
        bytes.extend_from_slice(&frame(&record_payload(1, 0, &Delta::new())));
        match parse_wal(&bytes) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("seq"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn damaged_base_page_is_a_hard_error() {
        let mut bytes = wal_prefix(42);
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        assert!(matches!(parse_wal(&bytes), Err(StoreError::Corrupt(_))));
    }

    #[test]
    fn group_append_reads_back_as_contiguous_records() {
        let path = temp_wal("group_read.tdl");
        let mut wal = Wal::create(&path, 9).unwrap();
        wal.append(&sample_delta(0), 100).unwrap();
        let batch: Vec<(Delta, u128)> = (1..4i64)
            .map(|i| (sample_delta(i), 100 + i as u128))
            .collect();
        let first = wal.append_group(&batch).unwrap();
        assert_eq!(first, 1);
        assert_eq!(wal.next_seq(), 4);
        wal.append(&sample_delta(4), 104).unwrap();
        drop(wal);
        let contents = read_wal(&path).unwrap();
        assert_eq!(contents.tail, WalTail::Clean);
        let seqs: Vec<u64> = contents.records.iter().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3, 4]);
        assert_eq!(contents.groups, vec![1, 3, 1]);
        assert_eq!(contents.records[2].delta, sample_delta(2));
        assert_eq!(contents.records[3].post_digest, 103);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_of_one_is_byte_identical_to_single_record() {
        let a = temp_wal("group_one_a.tdl");
        let b = temp_wal("group_one_b.tdl");
        let mut wal_a = Wal::create(&a, 5).unwrap();
        let mut wal_b = Wal::create(&b, 5).unwrap();
        wal_a.append(&sample_delta(1), 77).unwrap();
        wal_b.append_group(&[(sample_delta(1), 77)]).unwrap();
        drop((wal_a, wal_b));
        assert_eq!(fs::read(&a).unwrap(), fs::read(&b).unwrap());
        fs::remove_file(&a).unwrap();
        fs::remove_file(&b).unwrap();
    }

    #[test]
    fn torn_group_is_dropped_whole() {
        let path = temp_wal("group_torn.tdl");
        let mut wal = Wal::create(&path, 3).unwrap();
        wal.append(&sample_delta(0), 10).unwrap();
        let solo_len = fs::metadata(&path).unwrap().len();
        let batch: Vec<(Delta, u128)> = (1..5i64)
            .map(|i| (sample_delta(i), 10 + i as u128))
            .collect();
        wal.append_group(&batch).unwrap();
        drop(wal);
        let full = fs::read(&path).unwrap();
        // A cut at the group boundary is a clean end; every cut strictly
        // inside the group frame drops the whole group — never a prefix of
        // its records.
        let boundary = parse_wal(&full[..solo_len as usize]).unwrap();
        assert_eq!(boundary.records.len(), 1);
        assert!(matches!(boundary.tail, WalTail::Clean));
        for cut in (solo_len + 1)..(full.len() as u64) {
            let contents = parse_wal(&full[..cut as usize]).unwrap();
            assert_eq!(contents.records.len(), 1, "cut at {cut}");
            assert_eq!(contents.groups, vec![1], "cut at {cut}");
            assert_eq!(contents.valid_len, solo_len, "cut at {cut}");
            assert!(
                matches!(contents.tail, WalTail::Torn { .. }),
                "cut at {cut}"
            );
        }
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn group_with_wrong_inner_seq_is_corruption() {
        let mut bytes = wal_prefix(0);
        // First record of the group claims seq 1 on an empty log.
        bytes.extend_from_slice(&frame(&group_payload(1, &[(Delta::new(), 0)])));
        match parse_wal(&bytes) {
            Err(StoreError::Corrupt(msg)) => assert!(msg.contains("seq"), "{msg}"),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn empty_group_payload_is_corruption() {
        let mut bytes = wal_prefix(0);
        let mut enc = crate::codec::Enc::new();
        enc.put_varint(GROUP_SENTINEL);
        enc.put_varint(0);
        bytes.extend_from_slice(&frame(&enc.into_bytes()));
        assert!(matches!(parse_wal(&bytes), Err(StoreError::Corrupt(_))));
    }
}
