//! The `td-store/v1` binary codec.
//!
//! Everything persisted goes through two layers:
//!
//! 1. **Payload encoding** — compact, deterministic serialization of values,
//!    tuples, relations and whole databases: LEB128 varints for lengths and
//!    counts, zigzag varints for integers, length-prefixed UTF-8 for
//!    symbols. Relations serialize their tuples in sorted order and the
//!    relation map is a `BTreeMap`, so encoding is a pure function of
//!    database *content* — content-equal databases encode byte-identically.
//! 2. **Page framing** — each payload is wrapped in a checksummed page:
//!    `[len: u32 LE][fnv64(payload): u64 LE][payload]`. A reader that finds
//!    a short header, a length running past end-of-file, or a checksum
//!    mismatch reports a *torn frame* rather than an error — the write was
//!    cut mid-flight and everything from that offset on is discarded.
//!
//! No external serialization dependency: like `td-bench`'s JSON writer, the
//! codec is hand-rolled and versioned by [`FORMAT_TAG`].

use std::fmt;
use td_core::{Pred, Value};
use td_db::{Database, Delta, DeltaOp, Tuple};

/// Format tag written at the head of every store file; bump on breaking
/// changes to either layer.
pub const FORMAT_TAG: &[u8; 12] = b"td-store/v1\n";

/// File-kind tag for snapshots (follows [`FORMAT_TAG`]).
pub const KIND_SNAPSHOT: &[u8; 4] = b"snap";
/// File-kind tag for write-ahead logs (follows [`FORMAT_TAG`]).
pub const KIND_WAL: &[u8; 4] = b"wal\n";

/// Bytes of the page frame header: `u32` length + `u64` checksum.
pub const FRAME_HEADER: usize = 4 + 8;

/// Decode-side failures. Torn frames are *not* errors (see
/// [`read_frame`]); these are structural violations inside a page whose
/// checksum verified, or a bad file header.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum CodecError {
    /// File does not start with `td-store/v1` + the expected kind tag.
    BadHeader { expected: &'static str },
    /// Ran out of bytes inside a checksum-verified payload.
    Truncated { context: &'static str },
    /// An unknown tag byte.
    BadTag { context: &'static str, tag: u8 },
    /// Symbol bytes were not UTF-8.
    BadUtf8,
    /// A declared length was absurd (guards against allocating on garbage).
    BadLength { context: &'static str, len: u64 },
    /// Payload had trailing bytes after a complete decode.
    TrailingBytes { extra: usize },
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::BadHeader { expected } => {
                write!(f, "missing `td-store/v1` {expected} header")
            }
            CodecError::Truncated { context } => write!(f, "payload truncated in {context}"),
            CodecError::BadTag { context, tag } => write!(f, "unknown tag {tag} in {context}"),
            CodecError::BadUtf8 => write!(f, "symbol is not valid UTF-8"),
            CodecError::BadLength { context, len } => {
                write!(f, "implausible length {len} in {context}")
            }
            CodecError::TrailingBytes { extra } => {
                write!(f, "{extra} trailing bytes after payload")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// FNV-1a over `bytes`, the page checksum. Not cryptographic — it defends
/// against torn writes and bit rot, not adversaries (the digest comparison
/// on load is the content-level check).
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in bytes {
        h ^= u64::from(*b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

// ---------------------------------------------------------------------------
// Primitive writers/readers
// ---------------------------------------------------------------------------

/// Append-only payload encoder.
#[derive(Default, Debug)]
pub struct Enc {
    buf: Vec<u8>,
}

impl Enc {
    /// Empty encoder.
    pub fn new() -> Enc {
        Enc::default()
    }

    /// The encoded payload.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// LEB128 unsigned varint.
    pub fn put_varint(&mut self, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                self.buf.push(byte);
                return;
            }
            self.buf.push(byte | 0x80);
        }
    }

    /// Zigzag-encoded signed varint.
    pub fn put_signed(&mut self, v: i64) {
        self.put_varint(((v << 1) ^ (v >> 63)) as u64);
    }

    /// Raw little-endian `u128` (used for digests; fixed width keeps them
    /// greppable in hexdumps).
    pub fn put_u128(&mut self, v: u128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed byte string.
    pub fn put_bytes(&mut self, b: &[u8]) {
        self.put_varint(b.len() as u64);
        self.buf.extend_from_slice(b);
    }
}

/// Cursor over a checksum-verified payload.
#[derive(Debug)]
pub struct Dec<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Dec<'a> {
    /// Cursor at the start of `buf`.
    pub fn new(buf: &'a [u8]) -> Dec<'a> {
        Dec { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Error unless the payload was consumed exactly.
    pub fn finish(self) -> Result<(), CodecError> {
        if self.remaining() == 0 {
            Ok(())
        } else {
            Err(CodecError::TrailingBytes {
                extra: self.remaining(),
            })
        }
    }

    fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// LEB128 unsigned varint.
    pub fn varint(&mut self, context: &'static str) -> Result<u64, CodecError> {
        let mut v: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = self.take(1, context)?[0];
            v |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Ok(v);
            }
        }
        Err(CodecError::BadLength {
            context,
            len: u64::MAX,
        })
    }

    /// Zigzag-encoded signed varint.
    pub fn signed(&mut self, context: &'static str) -> Result<i64, CodecError> {
        let z = self.varint(context)?;
        Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
    }

    /// Raw little-endian `u128`.
    pub fn u128(&mut self, context: &'static str) -> Result<u128, CodecError> {
        let b = self.take(16, context)?;
        Ok(u128::from_le_bytes(b.try_into().expect("16 bytes")))
    }

    /// Length-prefixed byte string. `max` bounds the declared length so a
    /// corrupt prefix cannot drive a giant allocation.
    pub fn bytes(&mut self, context: &'static str, max: u64) -> Result<&'a [u8], CodecError> {
        let len = self.varint(context)?;
        if len > max || len > self.remaining() as u64 {
            return Err(CodecError::BadLength { context, len });
        }
        self.take(len as usize, context)
    }
}

// ---------------------------------------------------------------------------
// Page framing
// ---------------------------------------------------------------------------

/// Wrap a payload in a checksummed page frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FRAME_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&fnv64(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Result of attempting to read one page frame at an offset.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum FrameOutcome<'a> {
    /// A complete, checksum-verified payload; `next` is the offset just
    /// past the frame.
    Ok { payload: &'a [u8], next: usize },
    /// Exactly at end of input — a clean end, not a torn write.
    End,
    /// The frame is incomplete or its checksum fails: a torn/corrupt tail
    /// starting at this offset. Nothing at or after it may be trusted.
    Torn { at: usize },
}

/// Read the frame starting at `offset` in `buf`.
pub fn read_frame(buf: &[u8], offset: usize) -> FrameOutcome<'_> {
    if offset == buf.len() {
        return FrameOutcome::End;
    }
    if buf.len() - offset < FRAME_HEADER {
        return FrameOutcome::Torn { at: offset };
    }
    let len = u32::from_le_bytes(buf[offset..offset + 4].try_into().expect("4 bytes")) as usize;
    let sum = u64::from_le_bytes(buf[offset + 4..offset + 12].try_into().expect("8 bytes"));
    let start = offset + FRAME_HEADER;
    if buf.len() - start < len {
        return FrameOutcome::Torn { at: offset };
    }
    let payload = &buf[start..start + len];
    if fnv64(payload) != sum {
        return FrameOutcome::Torn { at: offset };
    }
    FrameOutcome::Ok {
        payload,
        next: start + len,
    }
}

// ---------------------------------------------------------------------------
// Domain encoding
// ---------------------------------------------------------------------------

const TAG_INT: u8 = 0;
const TAG_SYM: u8 = 1;
const TAG_INS: u8 = 0;
const TAG_DEL: u8 = 1;

/// Longest symbol / tuple count the decoder will believe. Generous (the
/// engine never makes anything near this) while still rejecting garbage
/// lengths from corrupt bytes early.
const MAX_SYM_BYTES: u64 = 1 << 20;

/// Encode one value.
pub fn put_value(enc: &mut Enc, v: &Value) {
    match v {
        Value::Int(i) => {
            enc.buf.push(TAG_INT);
            enc.put_signed(*i);
        }
        Value::Sym(s) => {
            enc.buf.push(TAG_SYM);
            enc.put_bytes(s.as_str().as_bytes());
        }
    }
}

/// Decode one value.
pub fn get_value(dec: &mut Dec<'_>) -> Result<Value, CodecError> {
    let tag = dec.take(1, "value tag")?[0];
    match tag {
        TAG_INT => Ok(Value::Int(dec.signed("int value")?)),
        TAG_SYM => {
            let bytes = dec.bytes("symbol", MAX_SYM_BYTES)?;
            let s = std::str::from_utf8(bytes).map_err(|_| CodecError::BadUtf8)?;
            Ok(Value::sym(s))
        }
        tag => Err(CodecError::BadTag {
            context: "value",
            tag,
        }),
    }
}

/// Encode a tuple (arity + values).
pub fn put_tuple(enc: &mut Enc, t: &Tuple) {
    enc.put_varint(t.arity() as u64);
    for v in t.values() {
        put_value(enc, v);
    }
}

/// Decode a tuple.
pub fn get_tuple(dec: &mut Dec<'_>) -> Result<Tuple, CodecError> {
    let arity = dec.varint("tuple arity")?;
    if arity > MAX_SYM_BYTES {
        return Err(CodecError::BadLength {
            context: "tuple arity",
            len: arity,
        });
    }
    let mut values = Vec::with_capacity(arity as usize);
    for _ in 0..arity {
        values.push(get_value(dec)?);
    }
    Ok(Tuple::new(values))
}

/// Encode a predicate (name + arity).
pub fn put_pred(enc: &mut Enc, p: Pred) {
    enc.put_bytes(p.name.as_str().as_bytes());
    enc.put_varint(u64::from(p.arity));
}

/// Decode a predicate.
pub fn get_pred(dec: &mut Dec<'_>) -> Result<Pred, CodecError> {
    let bytes = dec.bytes("predicate name", MAX_SYM_BYTES)?;
    let name = std::str::from_utf8(bytes).map_err(|_| CodecError::BadUtf8)?;
    let arity = dec.varint("predicate arity")?;
    if arity > u64::from(u32::MAX) {
        return Err(CodecError::BadLength {
            context: "predicate arity",
            len: arity,
        });
    }
    Ok(Pred::new(name, arity as u32))
}

/// Encode a whole database: declared relation count, then per relation the
/// predicate, tuple count and tuples in sorted order, then the content
/// digest. Declared-but-empty relations are preserved (they carry schema),
/// and sorted tuple order makes the encoding content-deterministic.
pub fn put_database(enc: &mut Enc, db: &Database) {
    let preds: Vec<Pred> = db.preds().collect();
    enc.put_varint(preds.len() as u64);
    for p in preds {
        let rel = db.relation(p).expect("preds() yields declared relations");
        put_pred(enc, p);
        enc.put_varint(rel.len() as u64);
        for t in rel.to_sorted_vec() {
            put_tuple(enc, &t);
        }
    }
    enc.put_u128(db.digest());
}

/// Decode a database and verify the embedded digest against the digest the
/// rebuilt database computed incrementally during inserts. Returns the
/// database and that (verified) digest.
pub fn get_database(dec: &mut Dec<'_>) -> Result<(Database, u128), CodecError> {
    let nrels = dec.varint("relation count")?;
    let mut db = Database::new();
    for _ in 0..nrels {
        let pred = get_pred(dec)?;
        db = db.declare(pred);
        let ntuples = dec.varint("tuple count")?;
        for _ in 0..ntuples {
            let t = get_tuple(dec)?;
            db = db
                .insert(pred, &t)
                .map_err(|_| CodecError::BadLength {
                    context: "tuple arity vs relation arity",
                    len: t.arity() as u64,
                })?
                .0;
        }
    }
    let stored = dec.u128("database digest")?;
    Ok((db, stored))
}

/// Encode one elementary update.
pub fn put_delta_op(enc: &mut Enc, op: &DeltaOp) {
    match op {
        DeltaOp::Ins(p, t) => {
            enc.buf.push(TAG_INS);
            put_pred(enc, *p);
            put_tuple(enc, t);
        }
        DeltaOp::Del(p, t) => {
            enc.buf.push(TAG_DEL);
            put_pred(enc, *p);
            put_tuple(enc, t);
        }
    }
}

/// Decode one elementary update.
pub fn get_delta_op(dec: &mut Dec<'_>) -> Result<DeltaOp, CodecError> {
    let tag = dec.take(1, "delta op tag")?[0];
    let pred = get_pred(dec)?;
    let tuple = get_tuple(dec)?;
    match tag {
        TAG_INS => Ok(DeltaOp::Ins(pred, tuple)),
        TAG_DEL => Ok(DeltaOp::Del(pred, tuple)),
        tag => Err(CodecError::BadTag {
            context: "delta op",
            tag,
        }),
    }
}

/// Encode an ordered update log.
pub fn put_delta(enc: &mut Enc, delta: &Delta) {
    enc.put_varint(delta.len() as u64);
    for op in delta.ops() {
        put_delta_op(enc, op);
    }
}

/// Decode an ordered update log.
pub fn get_delta(dec: &mut Dec<'_>) -> Result<Delta, CodecError> {
    let n = dec.varint("delta length")?;
    let mut delta = Delta::new();
    for _ in 0..n {
        delta.push(get_delta_op(dec)?);
    }
    Ok(delta)
}

/// The `td-store/v1` + kind file header.
pub fn file_header(kind: &[u8; 4]) -> Vec<u8> {
    let mut out = Vec::with_capacity(FORMAT_TAG.len() + kind.len());
    out.extend_from_slice(FORMAT_TAG);
    out.extend_from_slice(kind);
    out
}

/// Check a file header; returns the offset just past it.
pub fn check_header(
    buf: &[u8],
    kind: &[u8; 4],
    expected: &'static str,
) -> Result<usize, CodecError> {
    let want = file_header(kind);
    if buf.len() < want.len() || &buf[..want.len()] != want.as_slice() {
        return Err(CodecError::BadHeader { expected });
    }
    Ok(want.len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_db::tuple;

    #[test]
    fn varint_round_trips_edge_values() {
        for v in [0u64, 1, 127, 128, 16383, 16384, u64::MAX] {
            let mut e = Enc::new();
            e.put_varint(v);
            let bytes = e.into_bytes();
            let mut d = Dec::new(&bytes);
            assert_eq!(d.varint("t").unwrap(), v);
            d.finish().unwrap();
        }
    }

    #[test]
    fn signed_round_trips_extremes() {
        for v in [0i64, -1, 1, i64::MIN, i64::MAX, -12345, 12345] {
            let mut e = Enc::new();
            e.put_signed(v);
            let bytes = e.into_bytes();
            assert_eq!(Dec::new(&bytes).signed("t").unwrap(), v);
        }
    }

    #[test]
    fn value_and_tuple_round_trip() {
        let t = tuple!("hello", -7, "uni·code");
        let mut e = Enc::new();
        put_tuple(&mut e, &t);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        assert_eq!(get_tuple(&mut d).unwrap(), t);
        d.finish().unwrap();
    }

    #[test]
    fn database_round_trips_with_digest() {
        let mut db = Database::new().declare(Pred::new("empty", 3));
        for i in 0..10i64 {
            db = db.insert(Pred::new("e", 2), &tuple!(i, i + 1)).unwrap().0;
        }
        db = db.insert(Pred::new("flag", 0), &Tuple::unit()).unwrap().0;
        let mut e = Enc::new();
        put_database(&mut e, &db);
        let bytes = e.into_bytes();
        let mut d = Dec::new(&bytes);
        let (back, stored) = get_database(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back, db);
        assert_eq!(stored, db.digest());
        assert_eq!(back.digest(), db.digest());
        // Declared empty relation survives.
        assert!(back.relation(Pred::new("empty", 3)).is_some());
    }

    #[test]
    fn encoding_is_content_deterministic() {
        let (a, _) = Database::new()
            .insert(Pred::new("q", 1), &tuple!(1))
            .unwrap();
        let (a, _) = a.insert(Pred::new("q", 1), &tuple!(2)).unwrap();
        let (b, _) = Database::new()
            .insert(Pred::new("q", 1), &tuple!(2))
            .unwrap();
        let (b, _) = b.insert(Pred::new("q", 1), &tuple!(1)).unwrap();
        let enc = |db: &Database| {
            let mut e = Enc::new();
            put_database(&mut e, db);
            e.into_bytes()
        };
        assert_eq!(enc(&a), enc(&b));
    }

    #[test]
    fn delta_round_trips() {
        let mut delta = Delta::new();
        delta.push(DeltaOp::Ins(Pred::new("a", 1), tuple!(1)));
        delta.push(DeltaOp::Del(Pred::new("b", 2), tuple!("x", -3)));
        let mut e = Enc::new();
        put_delta(&mut e, &delta);
        let bytes = e.into_bytes();
        assert_eq!(get_delta(&mut Dec::new(&bytes)).unwrap(), delta);
    }

    #[test]
    fn frame_detects_every_single_byte_corruption() {
        let payload = b"some page payload";
        let framed = frame(payload);
        assert!(matches!(
            read_frame(&framed, 0),
            FrameOutcome::Ok { payload: p, .. } if p == payload
        ));
        for i in 4..framed.len() {
            // Flipping any checksum or payload byte must be caught. (The
            // length field is exercised separately: shrinking it re-frames.)
            let mut bad = framed.clone();
            bad[i] ^= 0x40;
            assert!(
                matches!(read_frame(&bad, 0), FrameOutcome::Torn { at: 0 }),
                "byte {i} corruption undetected"
            );
        }
    }

    #[test]
    fn frame_detects_truncation_at_every_length() {
        let framed = frame(b"0123456789");
        for cut in 0..framed.len() {
            match read_frame(&framed[..cut], 0) {
                FrameOutcome::End => assert_eq!(cut, 0),
                FrameOutcome::Torn { at: 0 } => assert!(cut > 0),
                other => panic!("cut {cut}: unexpected {other:?}"),
            }
        }
        assert!(matches!(read_frame(&framed, 0), FrameOutcome::Ok { .. }));
    }

    #[test]
    fn header_checks_tag_and_kind() {
        let h = file_header(KIND_SNAPSHOT);
        assert!(check_header(&h, KIND_SNAPSHOT, "snapshot").is_ok());
        assert!(check_header(&h, KIND_WAL, "wal").is_err());
        assert!(check_header(b"garbage", KIND_SNAPSHOT, "snapshot").is_err());
    }

    #[test]
    fn decoder_rejects_garbage_lengths_without_allocating() {
        // A symbol claiming 2^40 bytes must fail cleanly.
        let mut e = Enc::new();
        e.buf.push(TAG_SYM);
        e.put_varint(1 << 40);
        let bytes = e.into_bytes();
        assert!(matches!(
            get_value(&mut Dec::new(&bytes)),
            Err(CodecError::BadLength { .. })
        ));
    }
}
