//! Full-database snapshot images (`snapshot.tds`).
//!
//! A snapshot is the file header (`td-store/v1` + `snap`) followed by one
//! checksummed page whose payload is the encoded database with its content
//! digest. Writing goes through a temp file + `fsync` + atomic rename, so a
//! crash mid-write leaves the previous image intact; loading re-derives the
//! digest from the decoded tuples and refuses the image unless it matches
//! the persisted one.

use crate::codec::{
    self, check_header, file_header, frame, read_frame, Dec, Enc, FrameOutcome, KIND_SNAPSHOT,
};
use crate::{io_err, Result, StoreError};
use std::fs;
use std::io::Write;
use std::path::Path;
use td_db::Database;

/// File name of the snapshot image inside a store directory.
pub const SNAPSHOT_FILE: &str = "snapshot.tds";

/// Serialize a database into snapshot file bytes.
pub fn snapshot_bytes(db: &Database) -> Vec<u8> {
    let mut enc = Enc::new();
    codec::put_database(&mut enc, db);
    let mut out = file_header(KIND_SNAPSHOT);
    out.extend_from_slice(&frame(&enc.into_bytes()));
    out
}

/// Write a snapshot atomically: temp file in the same directory, `fsync`,
/// rename over `path`, `fsync` the directory so the rename is durable.
pub fn write_snapshot(path: &Path, db: &Database) -> Result<()> {
    let dir = path.parent().unwrap_or_else(|| Path::new("."));
    let tmp = path.with_extension("tds.tmp");
    let bytes = snapshot_bytes(db);
    let mut f = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    f.write_all(&bytes).map_err(|e| io_err(&tmp, e))?;
    f.sync_all().map_err(|e| io_err(&tmp, e))?;
    drop(f);
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))?;
    if let Ok(d) = fs::File::open(dir) {
        // Directory fsync is advisory on some platforms; ignore failures.
        let _ = d.sync_all();
    }
    Ok(())
}

/// Decode snapshot bytes, verifying the page checksum and the content
/// digest. Returns the database and its verified digest.
pub fn parse_snapshot(bytes: &[u8]) -> Result<(Database, u128)> {
    let offset = check_header(bytes, KIND_SNAPSHOT, "snapshot")?;
    let payload = match read_frame(bytes, offset) {
        FrameOutcome::Ok { payload, next } => {
            if next != bytes.len() {
                return Err(StoreError::Corrupt(format!(
                    "snapshot has {} trailing bytes after its page",
                    bytes.len() - next
                )));
            }
            payload
        }
        FrameOutcome::End => {
            return Err(StoreError::Corrupt("snapshot has no database page".into()))
        }
        FrameOutcome::Torn { at } => {
            return Err(StoreError::Corrupt(format!(
                "snapshot page torn or corrupt at byte {at}"
            )))
        }
    };
    let mut dec = Dec::new(payload);
    let (db, stored) = codec::get_database(&mut dec)?;
    dec.finish()?;
    // The decoder rebuilt the database through `insert`, so `db.digest()` is
    // the incrementally recomputed content digest — compare, don't trust.
    if db.digest() != stored {
        return Err(StoreError::DigestMismatch {
            context: "snapshot".into(),
            stored,
            computed: db.digest(),
        });
    }
    Ok((db, stored))
}

/// Load and digest-verify the snapshot at `path`.
pub fn load_snapshot(path: &Path) -> Result<(Database, u128)> {
    let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
    parse_snapshot(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::Pred;
    use td_db::tuple;

    fn sample_db() -> Database {
        let mut db = Database::new().declare(Pred::new("schema_only", 2));
        for i in 0..50i64 {
            db = db
                .insert(Pred::new("edge", 2), &tuple!(i, (i * 7) % 50))
                .unwrap()
                .0;
        }
        db.insert(Pred::new("label", 1), &tuple!("root")).unwrap().0
    }

    #[test]
    fn write_load_round_trip() {
        let dir = std::env::temp_dir().join("td-store-snap-roundtrip");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let db = sample_db();
        write_snapshot(&path, &db).unwrap();
        let (back, digest) = load_snapshot(&path).unwrap();
        assert_eq!(back, db);
        assert_eq!(digest, db.digest());
        assert!(back.relation(Pred::new("schema_only", 2)).is_some());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupting_any_payload_byte_is_detected() {
        let db = sample_db();
        let bytes = snapshot_bytes(&db);
        let header = file_header(KIND_SNAPSHOT).len();
        // Corrupt a byte in the middle of the page payload.
        let mut bad = bytes.clone();
        let mid = header + codec::FRAME_HEADER + (bad.len() - header) / 2;
        bad[mid] ^= 0xff;
        assert!(matches!(parse_snapshot(&bad), Err(StoreError::Corrupt(_))));
        // Corrupt the header itself.
        let mut bad = bytes;
        bad[0] ^= 0xff;
        assert!(matches!(parse_snapshot(&bad), Err(StoreError::Codec(_))));
    }

    #[test]
    fn forged_digest_is_rejected() {
        // A snapshot whose page checksum verifies but whose persisted digest
        // disagrees with the content must be refused: rebuild the page with
        // a wrong digest.
        let db = sample_db();
        let mut enc = Enc::new();
        codec::put_database(&mut enc, &db);
        let mut payload = enc.into_bytes();
        let n = payload.len();
        payload[n - 1] ^= 0x01; // flip a digest bit, then re-checksum
        let mut bytes = file_header(KIND_SNAPSHOT);
        bytes.extend_from_slice(&frame(&payload));
        assert!(matches!(
            parse_snapshot(&bytes),
            Err(StoreError::DigestMismatch { .. })
        ));
    }

    #[test]
    fn empty_database_round_trips() {
        let dir = std::env::temp_dir().join("td-store-snap-empty");
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(SNAPSHOT_FILE);
        let db = Database::new();
        write_snapshot(&path, &db).unwrap();
        let (back, digest) = load_snapshot(&path).unwrap();
        assert!(back.same_content(&db));
        assert_eq!(digest, 0);
        fs::remove_dir_all(&dir).unwrap();
    }
}
