//! Concurrent transactions over one durable store: optimistic concurrency
//! control + group commit.
//!
//! [`ConcurrentStore`] admits many top-level transactions at once from
//! independent threads — the `td serve` workload. Each transaction runs
//! against an immutable **snapshot** of the database (cheap: the database
//! is a persistent structure), produces a delta plus the [`ReadSet`] of
//! relations it consulted, and validates at commit **per relation**: the
//! transaction commits only if every relation in its read set still has
//! the per-relation digest it had in the snapshot ([`Database::
//! relation_digest`]). Writes to relations the transaction never read
//! cannot invalidate it — disjoint workloads commit without retries.
//! First committer wins; losers retry against a fresh snapshot with
//! bounded, jittered exponential backoff.
//!
//! This is sound because digest-equal relations are content-equal, and the
//! engine's read sets are *monotone over the whole search* (failed branches
//! included — see `td_db::read_set`): if every relation a transaction read
//! is unchanged at the head, re-running it there would explore the same
//! branches and produce the same delta, and `ins`/`del` are pure writes
//! whose delta is independent of the target relation's content. So
//! serializing the commit at the head equals re-executing it there: the
//! concurrent history is equivalent to running the committed transactions
//! sequentially in WAL-seq order (the property
//! `tests/occ_serializability.rs` checks differentially, in both
//! validation modes).
//!
//! The pre-refactor whole-database rule — commit only if the full 128-bit
//! database digest is unchanged — remains available as
//! [`Validation::WholeDb`] (and is what a [`ReadSet::whole_db`] read set
//! degrades to under [`Validation::ReadSet`]), kept for differential
//! testing and as a belt-and-braces fallback.
//!
//! ## Group commit
//!
//! The fsync on the WAL append (~0.2 ms, `e16_store`) would serialize
//! commits at the device; instead commits are batched with the classic
//! leader/follower scheme. A validated transaction appends its delta to a
//! pending batch under the state mutex and then either (a) finds the
//! [`Store`] token free, takes it, and **becomes the leader**: it drains
//! the whole pending batch and writes it as one fsync'd WAL group record
//! ([`Store::commit_group`]); or (b) finds the token taken (a leader is
//! mid-fsync) and waits. While a leader fsyncs, later transactions keep
//! validating and enqueueing, so the next leader writes them all in one
//! group — batch size adapts to the arrival rate with no timers and no
//! background thread. A transaction is acknowledged only after the group
//! holding it is durable.
//!
//! The in-memory head state runs ahead of the durable WAL by at most the
//! pending batch; this is invisible to clients because acknowledgement
//! waits for durability, and WAL order equals validation order, so a
//! transaction's group always lands *after* every group it read from —
//! crash recovery (a prefix of whole groups) can never keep an
//! acknowledged transaction while dropping state it read.

use crate::{Result, Store, StoreError};
use std::collections::BTreeMap;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;
use td_core::Pred;
use td_db::{Database, Delta, ReadSet};

/// What a transaction closure decided, after running against its snapshot.
#[derive(Clone, Debug)]
pub enum TxDecision<T> {
    /// Commit this delta (produced against the snapshot); acknowledge after
    /// it is durable. `reads` is every relation the closure consulted while
    /// producing the delta — the set commit validation checks under
    /// [`Validation::ReadSet`]. An under-reported read set is unsound
    /// (commits that should have conflicted); when in doubt use
    /// [`TxDecision::commit_whole_db`], which validates against everything.
    Commit {
        /// Elementary updates, produced against the snapshot.
        delta: Delta,
        /// Relations read while producing `delta` (failed branches
        /// included).
        reads: ReadSet,
        /// Closure result handed back in the [`Committed`] receipt.
        value: T,
    },
    /// Success with nothing to write — no WAL record, no validation needed
    /// (a read's serialization point is its snapshot).
    ReadOnly(T),
    /// Logical failure (e.g. the goal is not executable); nothing to write.
    Abort(T),
}

impl<T> TxDecision<T> {
    /// Commit `delta` validated against the given read set.
    pub fn commit(delta: Delta, reads: ReadSet, value: T) -> TxDecision<T> {
        TxDecision::Commit {
            delta,
            reads,
            value,
        }
    }

    /// Commit `delta` validated against the whole database — the
    /// pre-read-set behaviour, correct for any closure.
    pub fn commit_whole_db(delta: Delta, value: T) -> TxDecision<T> {
        TxDecision::Commit {
            delta,
            reads: ReadSet::whole_db(),
            value,
        }
    }
}

/// Which conflict rule commit validation applies.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Validation {
    /// Per-relation: conflict only if a relation in the transaction's read
    /// set changed (its [`Database::relation_digest`] differs between the
    /// snapshot and the head). The default.
    #[default]
    ReadSet,
    /// Whole-database: conflict if *any* relation changed (the full
    /// database digest differs) — regardless of the declared read set.
    /// Strictly more conservative; kept for differential testing.
    WholeDb,
}

impl std::fmt::Display for Validation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Validation::ReadSet => "read-set",
            Validation::WholeDb => "whole-db",
        })
    }
}

impl std::str::FromStr for Validation {
    type Err = String;
    fn from_str(s: &str) -> std::result::Result<Validation, String> {
        match s {
            "read-set" => Ok(Validation::ReadSet),
            "whole-db" => Ok(Validation::WholeDb),
            other => Err(format!(
                "unknown OCC validation mode '{other}' (expected 'read-set' or 'whole-db')"
            )),
        }
    }
}

/// Retry policy for [`ConcurrentStore::transaction`].
#[derive(Clone, Copy, Debug)]
pub struct TxOptions {
    /// Give up with [`TxError::Conflict`] after this many attempts.
    pub max_attempts: u32,
    /// Base backoff slept after the first conflict; doubles per further
    /// conflict, capped at 64x. Each sleep is jittered per thread into
    /// `[d/2, d]` so colliding clients desynchronize instead of retrying
    /// in lockstep.
    pub backoff: Duration,
    /// The conflict rule (default [`Validation::ReadSet`]).
    pub validation: Validation,
}

impl Default for TxOptions {
    fn default() -> TxOptions {
        TxOptions {
            max_attempts: 16,
            backoff: Duration::from_micros(50),
            validation: Validation::ReadSet,
        }
    }
}

/// Why a transaction did not complete.
#[derive(Debug)]
pub enum TxError<E> {
    /// The digest validation failed `max_attempts` times in a row.
    Conflict {
        /// Attempts made (== `TxOptions::max_attempts`).
        attempts: u32,
    },
    /// The store failed underneath (WAL append error, replay fault). Once a
    /// group append fails the store is poisoned: every later transaction
    /// fails fast with this error rather than diverging from disk.
    Store(StoreError),
    /// The transaction closure itself failed; nothing was written.
    App(E),
}

impl<E: std::fmt::Display> std::fmt::Display for TxError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::Conflict { attempts } => {
                write!(f, "transaction conflicted {attempts} times; giving up")
            }
            TxError::Store(e) => write!(f, "store: {e}"),
            TxError::App(e) => write!(f, "{e}"),
        }
    }
}

/// Receipt for a finished transaction.
#[derive(Clone, Copy, Debug)]
pub struct Committed<T> {
    /// The closure's result value.
    pub value: T,
    /// WAL seq of the committed record (`None` for read-only/aborted
    /// transactions, which leave no record).
    pub seq: Option<u64>,
    /// Snapshot attempts taken (1 = no conflict).
    pub attempts: u32,
}

/// Lifetime counters of a [`ConcurrentStore`] (all monotone).
#[derive(Clone, Copy, Default, Debug)]
pub struct ConcurrentStats {
    /// Transactions committed through the WAL.
    pub commits: u64,
    /// Transactions that finished read-only.
    pub read_only: u64,
    /// Transactions that aborted logically.
    pub aborts: u64,
    /// Digest validations that failed (each causes one retry).
    pub conflicts: u64,
    /// Transactions that exhausted their retry budget.
    pub conflict_failures: u64,
    /// WAL group frames written (== fsyncs on the commit path).
    pub groups: u64,
    /// Commit records written inside those groups.
    pub grouped_records: u64,
    /// Largest single group.
    pub max_group: u64,
}

impl ConcurrentStats {
    /// Mean commit records per fsync — the group-commit amortization
    /// factor (1.0 = no batching ever happened).
    pub fn mean_group(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.grouped_records as f64 / self.groups as f64
        }
    }
}

struct State {
    /// Latest validated state — the head of the commit order. May run
    /// ahead of the durable WAL by the pending batch.
    db: Database,
    /// Seq the next validated commit receives (== WAL records once the
    /// pending batch drains).
    next_seq: u64,
    /// Every seq `< durable_seq` is fsync-acknowledged.
    durable_seq: u64,
    /// Validated commits not yet written: `(delta, post_digest)` in seq
    /// order.
    pending: Vec<(Delta, u128)>,
    /// The store token. `Some` = no leader is writing; a committer that
    /// takes it becomes the leader for everything currently pending.
    store: Option<Store>,
    /// Sticky failure: a leader's append failed, the store is poisoned.
    failed: Option<String>,
    /// Set by [`ConcurrentStore::close`]; new transactions are refused.
    closing: bool,
    stats: ConcurrentStats,
    /// Per-relation conflict attribution: how many validation failures each
    /// relation caused (a single failed validation may charge several
    /// relations). Sums to ≥ `stats.conflicts` entries-wise only loosely —
    /// it is a *where*, not a second counter.
    conflict_preds: BTreeMap<Pred, u64>,
}

struct Inner {
    state: Mutex<State>,
    /// Signalled whenever `durable_seq`/`failed`/`store` change.
    durable: Condvar,
}

/// A durable store shared by many concurrently-committing threads. Cheap
/// to clone (all clones share state); see the module docs for the
/// concurrency protocol.
#[derive(Clone)]
pub struct ConcurrentStore {
    inner: Arc<Inner>,
    opts: TxOptions,
}

impl ConcurrentStore {
    /// Wrap an open store for concurrent use.
    pub fn new(store: Store) -> ConcurrentStore {
        let next_seq = store.wal_records();
        ConcurrentStore {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    db: store.db().clone(),
                    next_seq,
                    durable_seq: next_seq,
                    pending: Vec::new(),
                    store: Some(store),
                    failed: None,
                    closing: false,
                    stats: ConcurrentStats::default(),
                    conflict_preds: BTreeMap::new(),
                }),
                durable: Condvar::new(),
            }),
            opts: TxOptions::default(),
        }
    }

    /// Open an existing store directory for concurrent use.
    pub fn open(dir: &std::path::Path) -> Result<ConcurrentStore> {
        Ok(ConcurrentStore::new(Store::open(dir)?))
    }

    /// Open or initialize, like [`Store::open_or_init`].
    pub fn open_or_init(dir: &std::path::Path, initial: &Database) -> Result<ConcurrentStore> {
        Ok(ConcurrentStore::new(Store::open_or_init(dir, initial)?))
    }

    /// Replace the default retry policy.
    pub fn with_options(mut self, opts: TxOptions) -> ConcurrentStore {
        self.opts = opts;
        self
    }

    /// A snapshot of the latest validated state. Reads against it are
    /// serialized at the moment it was taken.
    pub fn snapshot(&self) -> Database {
        self.lock().db.clone()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ConcurrentStats {
        self.lock().stats
    }

    /// Per-relation conflict attribution: for each relation, how many
    /// commit validations it caused to fail (under whole-db validation,
    /// every relation that had changed is charged).
    pub fn conflict_attribution(&self) -> BTreeMap<Pred, u64> {
        self.lock().conflict_preds.clone()
    }

    /// The retry/validation policy in force.
    pub fn options(&self) -> TxOptions {
        self.opts
    }

    /// WAL records acknowledged as durable so far.
    pub fn durable_records(&self) -> u64 {
        self.lock().durable_seq
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.inner
            .state
            .lock()
            .expect("concurrent store poisoned by panic")
    }

    /// Run one top-level transaction: take a snapshot, run `f` on it, and
    /// — if `f` decides to commit — validate the read set against the
    /// current head and append the delta through group commit. On
    /// validation conflict, `f` re-runs against a fresh snapshot (bounded
    /// by [`TxOptions`]). Returns after the commit is fsync-durable.
    ///
    /// `f` must be re-runnable: it may execute several times, and all but
    /// the last execution have no effect.
    pub fn transaction<T, E>(
        &self,
        mut f: impl FnMut(&Database) -> std::result::Result<TxDecision<T>, E>,
    ) -> std::result::Result<Committed<T>, TxError<E>> {
        for attempt in 1..=self.opts.max_attempts {
            let snapshot = {
                let st = self.lock();
                if let Some(msg) = &st.failed {
                    return Err(TxError::Store(StoreError::Corrupt(msg.clone())));
                }
                if st.closing {
                    return Err(TxError::Store(StoreError::Corrupt(
                        "store is shutting down".into(),
                    )));
                }
                st.db.clone()
            };
            let decision = f(&snapshot).map_err(TxError::App)?;
            let (delta, reads, value) = match decision {
                TxDecision::ReadOnly(value) => {
                    self.lock().stats.read_only += 1;
                    return Ok(Committed {
                        value,
                        seq: None,
                        attempts: attempt,
                    });
                }
                TxDecision::Abort(value) => {
                    self.lock().stats.aborts += 1;
                    return Ok(Committed {
                        value,
                        seq: None,
                        attempts: attempt,
                    });
                }
                TxDecision::Commit {
                    delta,
                    reads,
                    value,
                } => (delta, reads, value),
            };
            let mut st = self.lock();
            if let Some(msg) = &st.failed {
                return Err(TxError::Store(StoreError::Corrupt(msg.clone())));
            }
            let changed = changed_reads(&snapshot, &st.db, &reads, self.opts.validation);
            if let Some(changed) = changed {
                // First committer won; retry from a fresh snapshot.
                st.stats.conflicts += 1;
                for p in changed {
                    *st.conflict_preds.entry(p).or_insert(0) += 1;
                }
                drop(st);
                self.backoff(attempt);
                continue;
            }
            // Validated: serialize this commit at the head.
            let next_db = match delta.replay(&st.db) {
                Ok(db) => db,
                // The delta does not apply to the very state it was
                // produced against — an application bug, not a conflict.
                Err(e) => return Err(TxError::Store(StoreError::Db(e.to_string()))),
            };
            let seq = st.next_seq;
            st.next_seq += 1;
            st.pending.push((delta, next_db.digest()));
            st.db = next_db;
            self.await_durable(st, seq)?;
            self.lock().stats.commits += 1;
            return Ok(Committed {
                value,
                seq: Some(seq),
                attempts: attempt,
            });
        }
        let mut st = self.lock();
        st.stats.conflict_failures += 1;
        Err(TxError::Conflict {
            attempts: self.opts.max_attempts,
        })
    }

    /// Group-commit wait loop: either become the leader (store token free)
    /// and write everything pending as one fsync'd group, or wait for a
    /// leader to make `seq` durable.
    fn await_durable<'a, E>(
        &'a self,
        mut st: MutexGuard<'a, State>,
        seq: u64,
    ) -> std::result::Result<(), TxError<E>> {
        loop {
            if st.durable_seq > seq {
                return Ok(());
            }
            if let Some(msg) = &st.failed {
                return Err(TxError::Store(StoreError::Corrupt(msg.clone())));
            }
            if st.store.is_some() && !st.pending.is_empty() {
                // Become the leader for the current batch.
                let mut store = st.store.take().expect("checked above");
                let batch = std::mem::take(&mut st.pending);
                drop(st);
                let deltas: Vec<Delta> = batch.iter().map(|(d, _)| d.clone()).collect();
                let result = store.commit_group(&deltas);
                // The store's recomputed head digest must agree with the
                // validator's — both replayed the same deltas in the same
                // order from the same base.
                debug_assert!(
                    result.is_err() || store.db().digest() == batch.last().expect("nonempty").1
                );
                st = self.lock();
                match result {
                    Ok(first_seq) => {
                        st.durable_seq = first_seq + batch.len() as u64;
                        st.stats.groups += 1;
                        st.stats.grouped_records += batch.len() as u64;
                        st.stats.max_group = st.stats.max_group.max(batch.len() as u64);
                    }
                    Err(e) => {
                        st.failed = Some(e.to_string());
                    }
                }
                st.store = Some(store);
                self.inner.durable.notify_all();
            } else {
                st = self
                    .inner
                    .durable
                    .wait(st)
                    .expect("concurrent store poisoned by panic");
            }
        }
    }

    /// Jittered exponential backoff after a conflict: the exponential
    /// envelope doubles per attempt (capped at 64x the base), and the
    /// actual sleep lands in `[envelope/2, envelope]` at a per-thread,
    /// per-attempt offset, so clients that conflicted on the same commit
    /// do not all retry at the same instant and re-collide indefinitely.
    fn backoff(&self, attempt: u32) {
        let factor = 1u32 << attempt.saturating_sub(1).min(6);
        std::thread::sleep(jittered(self.opts.backoff * factor, attempt));
    }

    /// Shut down: refuse new transactions, wait for the pending batch to
    /// drain, and hand the underlying [`Store`] back (e.g. to rotate a
    /// final snapshot or read recovery info). Fails if the store poisoned.
    pub fn close(self) -> Result<Store> {
        let mut st = self.lock();
        st.closing = true;
        loop {
            if let Some(msg) = &st.failed {
                // The store token is back (a leader always restores it);
                // surface the poisoning instead of the handle.
                return Err(StoreError::Corrupt(msg.clone()));
            }
            if st.pending.is_empty() {
                if let Some(store) = st.store.take() {
                    return Ok(store);
                }
            }
            st = self
                .inner
                .durable
                .wait(st)
                .expect("concurrent store poisoned by panic");
        }
    }
}

/// Commit-time validation: which relations the transaction depends on
/// changed between its snapshot and the head? `None` = valid. `Some(v)` =
/// conflict; `v` lists the changed relations for attribution (it can be
/// empty only in the astronomically-unlikely case of a whole-digest
/// mismatch with no per-relation witness).
///
/// Under [`Validation::ReadSet`] only the relations in `reads` are
/// compared (by [`Database::relation_digest`], so a writer that restored
/// identical content does not conflict). A [`ReadSet::whole_db`] read set,
/// or [`Validation::WholeDb`] mode, degrades to full-digest equality with
/// attribution computed by diffing every declared relation.
fn changed_reads(
    snapshot: &Database,
    head: &Database,
    reads: &ReadSet,
    mode: Validation,
) -> Option<Vec<Pred>> {
    if mode == Validation::WholeDb || reads.is_whole_db() {
        if head.digest() == snapshot.digest() {
            return None;
        }
        let mut preds: Vec<Pred> = snapshot.preds().chain(head.preds()).collect();
        preds.sort_unstable();
        preds.dedup();
        preds.retain(|p| head.relation_digest(*p) != snapshot.relation_digest(*p));
        return Some(preds);
    }
    let changed: Vec<Pred> = reads
        .preds()
        .filter(|p| head.relation_digest(*p) != snapshot.relation_digest(*p))
        .collect();
    if changed.is_empty() {
        None
    } else {
        Some(changed)
    }
}

/// Deterministic per-thread jitter: map `d` into `[d/2, d]` at an offset
/// hashed from the calling thread's id and the attempt number. No RNG —
/// distinct threads (and successive attempts of one thread) land at
/// distinct points of the envelope, which is all desynchronization needs.
fn jittered(d: Duration, attempt: u32) -> Duration {
    use std::hash::{Hash, Hasher};
    let nanos = d.as_nanos() as u64;
    let half = nanos / 2;
    if half == 0 {
        return d;
    }
    let mut h = std::collections::hash_map::DefaultHasher::new();
    std::thread::current().id().hash(&mut h);
    attempt.hash(&mut h);
    Duration::from_nanos(nanos - h.finish() % (half + 1))
}

impl Store {
    /// Run one transaction through a single-owner store handle — the same
    /// closure surface as [`ConcurrentStore::transaction`] without the OCC
    /// machinery (one owner means no conflicts: the closure runs once and
    /// its read set is irrelevant).
    pub fn transaction<T, E>(
        &mut self,
        f: impl FnOnce(&Database) -> std::result::Result<TxDecision<T>, E>,
    ) -> std::result::Result<Committed<T>, TxError<E>> {
        match f(self.db()).map_err(TxError::App)? {
            TxDecision::ReadOnly(value) | TxDecision::Abort(value) => Ok(Committed {
                value,
                seq: None,
                attempts: 1,
            }),
            TxDecision::Commit { delta, value, .. } => {
                let seq = self.commit(&delta).map_err(TxError::Store)?;
                Ok(Committed {
                    value,
                    seq: Some(seq),
                    attempts: 1,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use td_core::Pred;
    use td_db::{tuple, DeltaOp};

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("td-store-concurrent-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.parent().unwrap()).unwrap();
        dir
    }

    fn ins(i: i64) -> Delta {
        ins_into("n", i)
    }

    fn ins_into(pred: &str, i: i64) -> Delta {
        let mut d = Delta::new();
        d.push(DeltaOp::Ins(Pred::new(pred, 1), tuple!(i)));
        d
    }

    fn reading(pred: &str) -> ReadSet {
        let mut rs = ReadSet::new();
        rs.record(Pred::new(pred, 1));
        rs
    }

    #[test]
    fn sequential_transactions_commit_and_close_round_trips() {
        let dir = temp_dir("seq");
        let cs = ConcurrentStore::open_or_init(&dir, &Database::new()).unwrap();
        for i in 0..5i64 {
            let r = cs
                .transaction(|_db| {
                    Ok::<_, std::convert::Infallible>(TxDecision::commit(ins(i), ReadSet::new(), i))
                })
                .unwrap();
            assert_eq!(r.seq, Some(i as u64));
            assert_eq!(r.attempts, 1);
        }
        let stats = cs.stats();
        assert_eq!(stats.commits, 5);
        assert_eq!(stats.conflicts, 0);
        assert_eq!(stats.grouped_records, 5);
        let store = cs.close().unwrap();
        assert_eq!(store.db().total_tuples(), 5);
        drop(store);
        let report = Store::verify(&dir).unwrap();
        assert_eq!(report.wal_records, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_only_and_abort_leave_no_record() {
        let dir = temp_dir("readonly");
        let cs = ConcurrentStore::open_or_init(&dir, &Database::new()).unwrap();
        let r = cs
            .transaction(|db| {
                Ok::<_, std::convert::Infallible>(TxDecision::ReadOnly(db.total_tuples()))
            })
            .unwrap();
        assert_eq!((r.value, r.seq), (0, None));
        let r = cs
            .transaction(|_db| Ok::<_, std::convert::Infallible>(TxDecision::Abort("no")))
            .unwrap();
        assert_eq!(r.seq, None);
        let stats = cs.stats();
        assert_eq!((stats.read_only, stats.aborts, stats.commits), (1, 1, 0));
        let store = cs.close().unwrap();
        assert_eq!(store.wal_records(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_counter_increments_all_serialize() {
        // N threads each increment a unique tuple id derived from what they
        // read — heavy conflicts, but every transaction eventually lands.
        let dir = temp_dir("race");
        let cs = ConcurrentStore::open_or_init(&dir, &Database::new()).unwrap();
        let threads = 8;
        let per = 5;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cs = cs.clone();
                std::thread::spawn(move || {
                    for _ in 0..per {
                        cs.transaction(|db| {
                            // Claim the next free integer — conflicts with
                            // every concurrent claimer by construction.
                            let next = db.total_tuples() as i64;
                            Ok::<_, std::convert::Infallible>(TxDecision::commit_whole_db(
                                ins(next),
                                (),
                            ))
                        })
                        .expect("transaction eventually commits");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = cs.stats();
        assert_eq!(stats.commits, (threads * per) as u64);
        let store = cs.close().unwrap();
        assert_eq!(store.db().total_tuples(), threads * per);
        // All claimed integers are distinct and contiguous: serialized.
        for i in 0..(threads * per) as i64 {
            assert!(store.db().contains(Pred::new("n", 1), &tuple!(i)), "{i}");
        }
        drop(store);
        assert!(Store::verify(&dir).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn closing_store_refuses_new_transactions() {
        let dir = temp_dir("closing");
        let cs = ConcurrentStore::open_or_init(&dir, &Database::new()).unwrap();
        let cs2 = cs.clone();
        let store = cs.close().unwrap();
        let err = cs2
            .transaction(|_db| {
                Ok::<_, std::convert::Infallible>(TxDecision::commit_whole_db(ins(0), ()))
            })
            .unwrap_err();
        assert!(matches!(err, TxError::Store(_)));
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn conflict_budget_exhaustion_reports_conflict() {
        let dir = temp_dir("budget");
        let cs = ConcurrentStore::open_or_init(&dir, &Database::new())
            .unwrap()
            .with_options(TxOptions {
                max_attempts: 3,
                backoff: Duration::from_micros(1),
                ..TxOptions::default()
            });
        // Sabotage every attempt by committing between snapshot and commit.
        let saboteur = cs.clone();
        let mut i = 100i64;
        let err = cs
            .transaction(|_db| {
                i += 1;
                saboteur
                    .transaction(|_d| {
                        Ok::<_, std::convert::Infallible>(TxDecision::commit_whole_db(ins(i), ()))
                    })
                    .unwrap();
                Ok::<_, std::convert::Infallible>(TxDecision::commit(ins(0), reading("n"), ()))
            })
            .unwrap_err();
        match err {
            TxError::Conflict { attempts } => assert_eq!(attempts, 3),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(cs.stats().conflicts, 3);
        assert_eq!(cs.stats().conflict_failures, 1);
        // Every failed validation was the saboteur changing `n`.
        let attr = cs.conflict_attribution();
        assert_eq!(attr.get(&Pred::new("n", 1)), Some(&3));
        drop(cs.close().unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn disjoint_read_set_ignores_unrelated_writes() {
        // A transaction that read only `n` is not invalidated by a commit
        // to `m` that lands between its snapshot and its validation.
        let dir = temp_dir("disjoint");
        let cs = ConcurrentStore::open_or_init(&dir, &Database::new()).unwrap();
        let saboteur = cs.clone();
        let mut i = 0i64;
        let r = cs
            .transaction(|_db| {
                i += 1;
                saboteur
                    .transaction(|_d| {
                        Ok::<_, std::convert::Infallible>(TxDecision::commit_whole_db(
                            ins_into("m", i),
                            (),
                        ))
                    })
                    .unwrap();
                Ok::<_, std::convert::Infallible>(TxDecision::commit(ins(0), reading("n"), ()))
            })
            .unwrap();
        assert_eq!(r.attempts, 1, "unrelated write must not force a retry");
        assert_eq!(cs.stats().conflicts, 0);
        assert!(cs.conflict_attribution().is_empty());
        drop(cs.close().unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn whole_db_mode_conflicts_on_unrelated_writes() {
        // Same schedule as above, but under the fallback whole-database
        // rule the unrelated write *does* invalidate the first attempt.
        let dir = temp_dir("wholedb");
        let cs = ConcurrentStore::open_or_init(&dir, &Database::new())
            .unwrap()
            .with_options(TxOptions {
                backoff: Duration::from_micros(1),
                validation: Validation::WholeDb,
                ..TxOptions::default()
            });
        let saboteur = cs.clone();
        let mut calls = 0i64;
        let r = cs
            .transaction(|_db| {
                calls += 1;
                if calls == 1 {
                    saboteur
                        .transaction(|_d| {
                            Ok::<_, std::convert::Infallible>(TxDecision::commit_whole_db(
                                ins_into("m", 7),
                                (),
                            ))
                        })
                        .unwrap();
                }
                Ok::<_, std::convert::Infallible>(TxDecision::commit(ins(0), reading("n"), ()))
            })
            .unwrap();
        assert_eq!(r.attempts, 2, "whole-db validation sees every write");
        assert_eq!(cs.stats().conflicts, 1);
        let attr = cs.conflict_attribution();
        assert_eq!(attr.get(&Pred::new("m", 1)), Some(&1));
        assert_eq!(attr.get(&Pred::new("n", 1)), None);
        drop(cs.close().unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn aba_restore_of_read_relation_does_not_conflict() {
        // An intervening writer that puts the read relation back to exactly
        // its snapshot content is invisible: relation digests are content
        // digests, not version counters.
        let dir = temp_dir("aba");
        let cs = ConcurrentStore::open_or_init(&dir, &Database::new()).unwrap();
        let saboteur = cs.clone();
        let mut first = true;
        let r = cs
            .transaction(|_db| {
                if first {
                    first = false;
                    // Insert then delete n(42): net content unchanged.
                    let mut d = Delta::new();
                    d.push(DeltaOp::Ins(Pred::new("n", 1), tuple!(42)));
                    d.push(DeltaOp::Del(Pred::new("n", 1), tuple!(42)));
                    saboteur
                        .transaction(move |_d| {
                            Ok::<_, std::convert::Infallible>(TxDecision::commit_whole_db(
                                d.clone(),
                                (),
                            ))
                        })
                        .unwrap();
                }
                Ok::<_, std::convert::Infallible>(TxDecision::commit(ins(0), reading("n"), ()))
            })
            .unwrap();
        assert_eq!(r.attempts, 1);
        assert_eq!(cs.stats().conflicts, 0);
        drop(cs.close().unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn jitter_stays_inside_the_envelope() {
        for attempt in 1..=10 {
            let d = Duration::from_micros(800);
            let j = jittered(d, attempt);
            assert!(j <= d, "attempt {attempt}: {j:?} above envelope");
            assert!(j >= d / 2, "attempt {attempt}: {j:?} below half-envelope");
        }
        // Degenerate base: too small to jitter, passed through unchanged.
        assert_eq!(
            jittered(Duration::from_nanos(1), 3),
            Duration::from_nanos(1)
        );
    }

    #[test]
    fn validation_mode_parses_and_displays() {
        assert_eq!(
            "read-set".parse::<Validation>().unwrap(),
            Validation::ReadSet
        );
        assert_eq!(
            "whole-db".parse::<Validation>().unwrap(),
            Validation::WholeDb
        );
        assert!("eager".parse::<Validation>().is_err());
        assert_eq!(Validation::ReadSet.to_string(), "read-set");
        assert_eq!(Validation::WholeDb.to_string(), "whole-db");
        assert_eq!(TxOptions::default().validation, Validation::ReadSet);
    }
}
