//! Concurrent transactions over one durable store: optimistic concurrency
//! control + group commit.
//!
//! [`ConcurrentStore`] admits many top-level transactions at once from
//! independent threads — the `td serve` workload. Each transaction runs
//! against an immutable **snapshot** of the database (cheap: the database
//! is a persistent structure), produces a delta, and validates at commit
//! with the O(1) 128-bit content digest: the transaction commits only if
//! the database digest is still the digest it read — first committer wins,
//! losers retry against a fresh snapshot with bounded exponential backoff.
//! Every committed transaction therefore saw *exactly* the state left by
//! its predecessor in commit order, which makes the history trivially
//! serializable: the concurrent execution is equivalent to running the
//! committed transactions sequentially in WAL-seq order (the property
//! `tests/occ_serializability.rs` checks differentially).
//!
//! ## Group commit
//!
//! The fsync on the WAL append (~0.2 ms, `e16_store`) would serialize
//! commits at the device; instead commits are batched with the classic
//! leader/follower scheme. A validated transaction appends its delta to a
//! pending batch under the state mutex and then either (a) finds the
//! [`Store`] token free, takes it, and **becomes the leader**: it drains
//! the whole pending batch and writes it as one fsync'd WAL group record
//! ([`Store::commit_group`]); or (b) finds the token taken (a leader is
//! mid-fsync) and waits. While a leader fsyncs, later transactions keep
//! validating and enqueueing, so the next leader writes them all in one
//! group — batch size adapts to the arrival rate with no timers and no
//! background thread. A transaction is acknowledged only after the group
//! holding it is durable.
//!
//! The in-memory head state runs ahead of the durable WAL by at most the
//! pending batch; this is invisible to clients because acknowledgement
//! waits for durability, and WAL order equals validation order, so a
//! transaction's group always lands *after* every group it read from —
//! crash recovery (a prefix of whole groups) can never keep an
//! acknowledged transaction while dropping state it read.

use crate::{Result, Store, StoreError};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Duration;
use td_db::{Database, Delta};

/// What a transaction closure decided, after running against its snapshot.
#[derive(Clone, Debug)]
pub enum TxDecision<T> {
    /// Commit this delta (produced against the snapshot); acknowledge after
    /// it is durable.
    Commit(Delta, T),
    /// Success with nothing to write — no WAL record, no validation needed
    /// (a read's serialization point is its snapshot).
    ReadOnly(T),
    /// Logical failure (e.g. the goal is not executable); nothing to write.
    Abort(T),
}

/// Retry policy for [`ConcurrentStore::transaction`].
#[derive(Clone, Copy, Debug)]
pub struct TxOptions {
    /// Give up with [`TxError::Conflict`] after this many attempts.
    pub max_attempts: u32,
    /// Base backoff slept after the first conflict; doubles per further
    /// conflict, capped at 64x.
    pub backoff: Duration,
}

impl Default for TxOptions {
    fn default() -> TxOptions {
        TxOptions {
            max_attempts: 16,
            backoff: Duration::from_micros(50),
        }
    }
}

/// Why a transaction did not complete.
#[derive(Debug)]
pub enum TxError<E> {
    /// The digest validation failed `max_attempts` times in a row.
    Conflict {
        /// Attempts made (== `TxOptions::max_attempts`).
        attempts: u32,
    },
    /// The store failed underneath (WAL append error, replay fault). Once a
    /// group append fails the store is poisoned: every later transaction
    /// fails fast with this error rather than diverging from disk.
    Store(StoreError),
    /// The transaction closure itself failed; nothing was written.
    App(E),
}

impl<E: std::fmt::Display> std::fmt::Display for TxError<E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TxError::Conflict { attempts } => {
                write!(f, "transaction conflicted {attempts} times; giving up")
            }
            TxError::Store(e) => write!(f, "store: {e}"),
            TxError::App(e) => write!(f, "{e}"),
        }
    }
}

/// Receipt for a finished transaction.
#[derive(Clone, Copy, Debug)]
pub struct Committed<T> {
    /// The closure's result value.
    pub value: T,
    /// WAL seq of the committed record (`None` for read-only/aborted
    /// transactions, which leave no record).
    pub seq: Option<u64>,
    /// Snapshot attempts taken (1 = no conflict).
    pub attempts: u32,
}

/// Lifetime counters of a [`ConcurrentStore`] (all monotone).
#[derive(Clone, Copy, Default, Debug)]
pub struct ConcurrentStats {
    /// Transactions committed through the WAL.
    pub commits: u64,
    /// Transactions that finished read-only.
    pub read_only: u64,
    /// Transactions that aborted logically.
    pub aborts: u64,
    /// Digest validations that failed (each causes one retry).
    pub conflicts: u64,
    /// Transactions that exhausted their retry budget.
    pub conflict_failures: u64,
    /// WAL group frames written (== fsyncs on the commit path).
    pub groups: u64,
    /// Commit records written inside those groups.
    pub grouped_records: u64,
    /// Largest single group.
    pub max_group: u64,
}

impl ConcurrentStats {
    /// Mean commit records per fsync — the group-commit amortization
    /// factor (1.0 = no batching ever happened).
    pub fn mean_group(&self) -> f64 {
        if self.groups == 0 {
            0.0
        } else {
            self.grouped_records as f64 / self.groups as f64
        }
    }
}

struct State {
    /// Latest validated state — the head of the commit order. May run
    /// ahead of the durable WAL by the pending batch.
    db: Database,
    /// Seq the next validated commit receives (== WAL records once the
    /// pending batch drains).
    next_seq: u64,
    /// Every seq `< durable_seq` is fsync-acknowledged.
    durable_seq: u64,
    /// Validated commits not yet written: `(delta, post_digest)` in seq
    /// order.
    pending: Vec<(Delta, u128)>,
    /// The store token. `Some` = no leader is writing; a committer that
    /// takes it becomes the leader for everything currently pending.
    store: Option<Store>,
    /// Sticky failure: a leader's append failed, the store is poisoned.
    failed: Option<String>,
    /// Set by [`ConcurrentStore::close`]; new transactions are refused.
    closing: bool,
    stats: ConcurrentStats,
}

struct Inner {
    state: Mutex<State>,
    /// Signalled whenever `durable_seq`/`failed`/`store` change.
    durable: Condvar,
}

/// A durable store shared by many concurrently-committing threads. Cheap
/// to clone (all clones share state); see the module docs for the
/// concurrency protocol.
#[derive(Clone)]
pub struct ConcurrentStore {
    inner: Arc<Inner>,
    opts: TxOptions,
}

impl ConcurrentStore {
    /// Wrap an open store for concurrent use.
    pub fn new(store: Store) -> ConcurrentStore {
        let next_seq = store.wal_records();
        ConcurrentStore {
            inner: Arc::new(Inner {
                state: Mutex::new(State {
                    db: store.db().clone(),
                    next_seq,
                    durable_seq: next_seq,
                    pending: Vec::new(),
                    store: Some(store),
                    failed: None,
                    closing: false,
                    stats: ConcurrentStats::default(),
                }),
                durable: Condvar::new(),
            }),
            opts: TxOptions::default(),
        }
    }

    /// Open an existing store directory for concurrent use.
    pub fn open(dir: &std::path::Path) -> Result<ConcurrentStore> {
        Ok(ConcurrentStore::new(Store::open(dir)?))
    }

    /// Open or initialize, like [`Store::open_or_init`].
    pub fn open_or_init(dir: &std::path::Path, initial: &Database) -> Result<ConcurrentStore> {
        Ok(ConcurrentStore::new(Store::open_or_init(dir, initial)?))
    }

    /// Replace the default retry policy.
    pub fn with_options(mut self, opts: TxOptions) -> ConcurrentStore {
        self.opts = opts;
        self
    }

    /// A snapshot of the latest validated state. Reads against it are
    /// serialized at the moment it was taken.
    pub fn snapshot(&self) -> Database {
        self.lock().db.clone()
    }

    /// Lifetime counters.
    pub fn stats(&self) -> ConcurrentStats {
        self.lock().stats
    }

    /// WAL records acknowledged as durable so far.
    pub fn durable_records(&self) -> u64 {
        self.lock().durable_seq
    }

    fn lock(&self) -> MutexGuard<'_, State> {
        self.inner
            .state
            .lock()
            .expect("concurrent store poisoned by panic")
    }

    /// Run one top-level transaction: take a snapshot, run `f` on it, and
    /// — if `f` decides to commit — validate the snapshot's digest against
    /// the current head and append the delta through group commit. On
    /// validation conflict, `f` re-runs against a fresh snapshot (bounded
    /// by [`TxOptions`]). Returns after the commit is fsync-durable.
    ///
    /// `f` must be re-runnable: it may execute several times, and all but
    /// the last execution have no effect.
    pub fn transaction<T, E>(
        &self,
        mut f: impl FnMut(&Database) -> std::result::Result<TxDecision<T>, E>,
    ) -> std::result::Result<Committed<T>, TxError<E>> {
        for attempt in 1..=self.opts.max_attempts {
            let (snapshot, base_digest) = {
                let st = self.lock();
                if let Some(msg) = &st.failed {
                    return Err(TxError::Store(StoreError::Corrupt(msg.clone())));
                }
                if st.closing {
                    return Err(TxError::Store(StoreError::Corrupt(
                        "store is shutting down".into(),
                    )));
                }
                (st.db.clone(), st.db.digest())
            };
            let decision = f(&snapshot).map_err(TxError::App)?;
            let (delta, value) = match decision {
                TxDecision::ReadOnly(value) => {
                    self.lock().stats.read_only += 1;
                    return Ok(Committed {
                        value,
                        seq: None,
                        attempts: attempt,
                    });
                }
                TxDecision::Abort(value) => {
                    self.lock().stats.aborts += 1;
                    return Ok(Committed {
                        value,
                        seq: None,
                        attempts: attempt,
                    });
                }
                TxDecision::Commit(delta, value) => (delta, value),
            };
            let mut st = self.lock();
            if let Some(msg) = &st.failed {
                return Err(TxError::Store(StoreError::Corrupt(msg.clone())));
            }
            if st.db.digest() != base_digest {
                // First committer won; retry from a fresh snapshot.
                st.stats.conflicts += 1;
                drop(st);
                self.backoff(attempt);
                continue;
            }
            // Validated: serialize this commit at the head.
            let next_db = match delta.replay(&st.db) {
                Ok(db) => db,
                // The delta does not apply to the very state it was
                // produced against — an application bug, not a conflict.
                Err(e) => return Err(TxError::Store(StoreError::Db(e.to_string()))),
            };
            let seq = st.next_seq;
            st.next_seq += 1;
            st.pending.push((delta, next_db.digest()));
            st.db = next_db;
            self.await_durable(st, seq)?;
            self.lock().stats.commits += 1;
            return Ok(Committed {
                value,
                seq: Some(seq),
                attempts: attempt,
            });
        }
        let mut st = self.lock();
        st.stats.conflict_failures += 1;
        Err(TxError::Conflict {
            attempts: self.opts.max_attempts,
        })
    }

    /// Group-commit wait loop: either become the leader (store token free)
    /// and write everything pending as one fsync'd group, or wait for a
    /// leader to make `seq` durable.
    fn await_durable<'a, E>(
        &'a self,
        mut st: MutexGuard<'a, State>,
        seq: u64,
    ) -> std::result::Result<(), TxError<E>> {
        loop {
            if st.durable_seq > seq {
                return Ok(());
            }
            if let Some(msg) = &st.failed {
                return Err(TxError::Store(StoreError::Corrupt(msg.clone())));
            }
            if st.store.is_some() && !st.pending.is_empty() {
                // Become the leader for the current batch.
                let mut store = st.store.take().expect("checked above");
                let batch = std::mem::take(&mut st.pending);
                drop(st);
                let deltas: Vec<Delta> = batch.iter().map(|(d, _)| d.clone()).collect();
                let result = store.commit_group(&deltas);
                // The store's recomputed head digest must agree with the
                // validator's — both replayed the same deltas in the same
                // order from the same base.
                debug_assert!(
                    result.is_err() || store.db().digest() == batch.last().expect("nonempty").1
                );
                st = self.lock();
                match result {
                    Ok(first_seq) => {
                        st.durable_seq = first_seq + batch.len() as u64;
                        st.stats.groups += 1;
                        st.stats.grouped_records += batch.len() as u64;
                        st.stats.max_group = st.stats.max_group.max(batch.len() as u64);
                    }
                    Err(e) => {
                        st.failed = Some(e.to_string());
                    }
                }
                st.store = Some(store);
                self.inner.durable.notify_all();
            } else {
                st = self
                    .inner
                    .durable
                    .wait(st)
                    .expect("concurrent store poisoned by panic");
            }
        }
    }

    /// Exponential backoff after a conflict, capped at 64x the base.
    fn backoff(&self, attempt: u32) {
        let factor = 1u32 << attempt.saturating_sub(1).min(6);
        std::thread::sleep(self.opts.backoff * factor);
    }

    /// Shut down: refuse new transactions, wait for the pending batch to
    /// drain, and hand the underlying [`Store`] back (e.g. to rotate a
    /// final snapshot or read recovery info). Fails if the store poisoned.
    pub fn close(self) -> Result<Store> {
        let mut st = self.lock();
        st.closing = true;
        loop {
            if let Some(msg) = &st.failed {
                // The store token is back (a leader always restores it);
                // surface the poisoning instead of the handle.
                return Err(StoreError::Corrupt(msg.clone()));
            }
            if st.pending.is_empty() {
                if let Some(store) = st.store.take() {
                    return Ok(store);
                }
            }
            st = self
                .inner
                .durable
                .wait(st)
                .expect("concurrent store poisoned by panic");
        }
    }
}

impl Store {
    /// Run one transaction through a single-owner store handle — the same
    /// closure surface as [`ConcurrentStore::transaction`] without the OCC
    /// machinery (one owner means no conflicts: the closure runs once).
    pub fn transaction<T, E>(
        &mut self,
        f: impl FnOnce(&Database) -> std::result::Result<TxDecision<T>, E>,
    ) -> std::result::Result<Committed<T>, TxError<E>> {
        match f(self.db()).map_err(TxError::App)? {
            TxDecision::ReadOnly(value) | TxDecision::Abort(value) => Ok(Committed {
                value,
                seq: None,
                attempts: 1,
            }),
            TxDecision::Commit(delta, value) => {
                let seq = self.commit(&delta).map_err(TxError::Store)?;
                Ok(Committed {
                    value,
                    seq: Some(seq),
                    attempts: 1,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;
    use td_core::Pred;
    use td_db::{tuple, DeltaOp};

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join("td-store-concurrent-tests")
            .join(name);
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.parent().unwrap()).unwrap();
        dir
    }

    fn ins(i: i64) -> Delta {
        let mut d = Delta::new();
        d.push(DeltaOp::Ins(Pred::new("n", 1), tuple!(i)));
        d
    }

    #[test]
    fn sequential_transactions_commit_and_close_round_trips() {
        let dir = temp_dir("seq");
        let cs = ConcurrentStore::open_or_init(&dir, &Database::new()).unwrap();
        for i in 0..5i64 {
            let r = cs
                .transaction(|_db| Ok::<_, std::convert::Infallible>(TxDecision::Commit(ins(i), i)))
                .unwrap();
            assert_eq!(r.seq, Some(i as u64));
            assert_eq!(r.attempts, 1);
        }
        let stats = cs.stats();
        assert_eq!(stats.commits, 5);
        assert_eq!(stats.conflicts, 0);
        assert_eq!(stats.grouped_records, 5);
        let store = cs.close().unwrap();
        assert_eq!(store.db().total_tuples(), 5);
        drop(store);
        let report = Store::verify(&dir).unwrap();
        assert_eq!(report.wal_records, 5);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn read_only_and_abort_leave_no_record() {
        let dir = temp_dir("readonly");
        let cs = ConcurrentStore::open_or_init(&dir, &Database::new()).unwrap();
        let r = cs
            .transaction(|db| {
                Ok::<_, std::convert::Infallible>(TxDecision::ReadOnly(db.total_tuples()))
            })
            .unwrap();
        assert_eq!((r.value, r.seq), (0, None));
        let r = cs
            .transaction(|_db| Ok::<_, std::convert::Infallible>(TxDecision::Abort("no")))
            .unwrap();
        assert_eq!(r.seq, None);
        let stats = cs.stats();
        assert_eq!((stats.read_only, stats.aborts, stats.commits), (1, 1, 0));
        let store = cs.close().unwrap();
        assert_eq!(store.wal_records(), 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_counter_increments_all_serialize() {
        // N threads each increment a unique tuple id derived from what they
        // read — heavy conflicts, but every transaction eventually lands.
        let dir = temp_dir("race");
        let cs = ConcurrentStore::open_or_init(&dir, &Database::new()).unwrap();
        let threads = 8;
        let per = 5;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let cs = cs.clone();
                std::thread::spawn(move || {
                    for _ in 0..per {
                        cs.transaction(|db| {
                            // Claim the next free integer — conflicts with
                            // every concurrent claimer by construction.
                            let next = db.total_tuples() as i64;
                            Ok::<_, std::convert::Infallible>(TxDecision::Commit(ins(next), ()))
                        })
                        .expect("transaction eventually commits");
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let stats = cs.stats();
        assert_eq!(stats.commits, (threads * per) as u64);
        let store = cs.close().unwrap();
        assert_eq!(store.db().total_tuples(), threads * per);
        // All claimed integers are distinct and contiguous: serialized.
        for i in 0..(threads * per) as i64 {
            assert!(store.db().contains(Pred::new("n", 1), &tuple!(i)), "{i}");
        }
        drop(store);
        assert!(Store::verify(&dir).is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn closing_store_refuses_new_transactions() {
        let dir = temp_dir("closing");
        let cs = ConcurrentStore::open_or_init(&dir, &Database::new()).unwrap();
        let cs2 = cs.clone();
        let store = cs.close().unwrap();
        let err = cs2
            .transaction(|_db| Ok::<_, std::convert::Infallible>(TxDecision::Commit(ins(0), ())))
            .unwrap_err();
        assert!(matches!(err, TxError::Store(_)));
        drop(store);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn conflict_budget_exhaustion_reports_conflict() {
        let dir = temp_dir("budget");
        let cs = ConcurrentStore::open_or_init(&dir, &Database::new())
            .unwrap()
            .with_options(TxOptions {
                max_attempts: 3,
                backoff: Duration::from_micros(1),
            });
        // Sabotage every attempt by committing between snapshot and commit.
        let saboteur = cs.clone();
        let mut i = 100i64;
        let err = cs
            .transaction(|_db| {
                i += 1;
                saboteur
                    .transaction(|_d| {
                        Ok::<_, std::convert::Infallible>(TxDecision::Commit(ins(i), ()))
                    })
                    .unwrap();
                Ok::<_, std::convert::Infallible>(TxDecision::Commit(ins(0), ()))
            })
            .unwrap_err();
        match err {
            TxError::Conflict { attempts } => assert_eq!(attempts, 3),
            other => panic!("unexpected {other:?}"),
        }
        assert_eq!(cs.stats().conflicts, 3);
        assert_eq!(cs.stats().conflict_failures, 1);
        drop(cs.close().unwrap());
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
