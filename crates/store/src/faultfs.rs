//! Deterministic byte-granular fault injection for crash tests.
//!
//! Crash recovery is only as trustworthy as the failures it was tested
//! against. This module provides the three primitives the recovery tests
//! drive, all deterministic (no randomness, no timing): truncate a file to
//! an exact byte length (a torn write), flip bits at an exact offset
//! (media corruption), and snapshot/restore whole directories (so one
//! committed corpus can be re-damaged many ways).
//!
//! These operate on plain paths, not through the store API, precisely so
//! tests damage files the way a crash would: underneath the abstraction.

use crate::{io_err, Result};
use std::fs;
use std::path::Path;

/// Truncate the file at `path` to exactly `len` bytes — the state a torn
/// write leaves behind.
pub fn truncate_to(path: &Path, len: u64) -> Result<()> {
    let f = fs::OpenOptions::new()
        .write(true)
        .open(path)
        .map_err(|e| io_err(path, e))?;
    f.set_len(len).map_err(|e| io_err(path, e))?;
    f.sync_all().map_err(|e| io_err(path, e))?;
    Ok(())
}

/// XOR the byte at `offset` with `mask` (`mask != 0` guarantees a change).
pub fn flip_byte(path: &Path, offset: u64, mask: u8) -> Result<()> {
    assert!(mask != 0, "flipping with mask 0 is a no-op");
    let mut bytes = fs::read(path).map_err(|e| io_err(path, e))?;
    let i = offset as usize;
    assert!(i < bytes.len(), "offset {offset} beyond file length");
    bytes[i] ^= mask;
    fs::write(path, bytes).map_err(|e| io_err(path, e))?;
    Ok(())
}

/// File length in bytes.
pub fn file_len(path: &Path) -> Result<u64> {
    Ok(fs::metadata(path).map_err(|e| io_err(path, e))?.len())
}

/// Copy every regular file of `src` into `dst` (created if missing,
/// emptied first) — checkpoint a store directory before damaging it.
pub fn copy_dir(src: &Path, dst: &Path) -> Result<()> {
    if dst.exists() {
        fs::remove_dir_all(dst).map_err(|e| io_err(dst, e))?;
    }
    fs::create_dir_all(dst).map_err(|e| io_err(dst, e))?;
    for entry in fs::read_dir(src).map_err(|e| io_err(src, e))? {
        let entry = entry.map_err(|e| io_err(src, e))?;
        let from = entry.path();
        if from.is_file() {
            let to = dst.join(entry.file_name());
            fs::copy(&from, &to).map_err(|e| io_err(&to, e))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("td-store-faultfs-tests");
        fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    #[test]
    fn truncate_is_exact() {
        let p = temp("trunc.bin");
        fs::write(&p, [0u8; 100]).unwrap();
        truncate_to(&p, 37).unwrap();
        assert_eq!(file_len(&p).unwrap(), 37);
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn flip_changes_exactly_one_byte() {
        let p = temp("flip.bin");
        fs::write(&p, [7u8; 16]).unwrap();
        flip_byte(&p, 5, 0xff).unwrap();
        let bytes = fs::read(&p).unwrap();
        assert_eq!(bytes[5], 7 ^ 0xff);
        assert!(bytes.iter().enumerate().all(|(i, b)| (i == 5) ^ (*b == 7)));
        fs::remove_file(&p).unwrap();
    }

    #[test]
    fn copy_dir_checkpoints_and_restores() {
        let src = temp("copy-src");
        let dst = temp("copy-dst");
        let _ = fs::remove_dir_all(&src);
        fs::create_dir_all(&src).unwrap();
        fs::write(src.join("a.bin"), b"alpha").unwrap();
        fs::write(src.join("b.bin"), b"beta").unwrap();
        copy_dir(&src, &dst).unwrap();
        fs::write(src.join("a.bin"), b"damaged").unwrap();
        copy_dir(&dst, &src).unwrap();
        assert_eq!(fs::read(src.join("a.bin")).unwrap(), b"alpha");
        assert_eq!(fs::read(src.join("b.bin")).unwrap(), b"beta");
        fs::remove_dir_all(&src).unwrap();
        fs::remove_dir_all(&dst).unwrap();
    }
}
