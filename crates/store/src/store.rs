//! The durable store: a directory pairing one snapshot with one WAL.
//!
//! ## Recovery invariant
//!
//! `Store::open` = load the snapshot (checksum + digest verified), replay
//! every WAL record whose checksum verifies, stop at the first torn or
//! truncated record, and verify after each record that the database digest
//! equals the digest the record promised. The recovered state is therefore
//! always the snapshot plus a **prefix of the committed transaction
//! sequence** — never a partial delta, never an unverified byte.
//!
//! ## Rotation ordering
//!
//! `Store::rotate_snapshot` writes the new snapshot *first* (temp + fsync +
//! rename), then resets the WAL. If a crash lands between the two, the
//! store holds a new snapshot plus the old WAL: its base digest no longer
//! matches, but every record in it is already *contained in* the snapshot
//! (the snapshot was taken at or after the last record). `open` detects the
//! mismatch and discards the stale WAL. The reverse ordering would lose
//! committed records; this ordering only ever drops redundant ones.

use crate::snapshot::{load_snapshot, write_snapshot, SNAPSHOT_FILE};
use crate::wal::{read_wal, Wal, WalContents, WalRecord, WalTail, WAL_FILE};
use crate::{io_err, Result, StoreError};
use std::fs;
use std::path::{Path, PathBuf};
use td_db::{Database, Delta};

/// File name of the advisory lock inside a store directory.
pub const LOCK_FILE: &str = "lock";

/// Take the store's advisory lock (flock-style, via the std file-locking
/// API). A second `Store::open`/`init` on the same directory — from another
/// process or this one — fails with [`StoreError::Locked`] instead of
/// silently double-appending to `wal.tdl` and corrupting the commit
/// sequence. Released automatically when the returned handle (held inside
/// [`Store`]) drops — including on crash, since the OS releases it with the
/// process; a stale lockfile left on disk is harmless.
fn acquire_lock(dir: &Path) -> Result<fs::File> {
    let path = dir.join(LOCK_FILE);
    let file = fs::OpenOptions::new()
        .create(true)
        .write(true)
        .truncate(false)
        .open(&path)
        .map_err(|e| io_err(&path, e))?;
    match file.try_lock() {
        Ok(()) => Ok(file),
        Err(fs::TryLockError::WouldBlock) => Err(StoreError::Locked(dir.display().to_string())),
        Err(fs::TryLockError::Error(e)) => Err(io_err(&path, e)),
    }
}

/// How `Store::open*` arrived at the recovered state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RecoveryOutcome {
    /// The store was created by this call (no prior state).
    Fresh,
    /// Snapshot + clean WAL replayed fully.
    Recovered,
    /// Snapshot + WAL replayed up to a torn tail, which was cut.
    RecoveredTorn,
    /// Snapshot recovered; a stale WAL from an interrupted rotation was
    /// discarded (its content is contained in the snapshot).
    RecoveredStaleWal,
}

impl RecoveryOutcome {
    /// Stable lowercase label (used in run reports and `td db` output).
    pub fn as_str(self) -> &'static str {
        match self {
            RecoveryOutcome::Fresh => "fresh",
            RecoveryOutcome::Recovered => "recovered",
            RecoveryOutcome::RecoveredTorn => "recovered-torn-tail",
            RecoveryOutcome::RecoveredStaleWal => "recovered-stale-wal",
        }
    }
}

/// What recovery did, for reports and logs.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct RecoveryInfo {
    /// Path taken.
    pub outcome: RecoveryOutcome,
    /// WAL records replayed onto the snapshot.
    pub replayed: u64,
    /// Bytes dropped from a torn tail (0 on clean recovery).
    pub torn_bytes: u64,
    /// Tuples in the snapshot image itself.
    pub snapshot_tuples: u64,
    /// Age of the snapshot, measured in committed transactions since it was
    /// taken (== `replayed` at open time).
    pub snapshot_age: u64,
}

/// Result of a cold integrity pass (`Store::verify`).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VerifyReport {
    /// Digest of the snapshot image.
    pub snapshot_digest: u128,
    /// Tuples in the snapshot image.
    pub snapshot_tuples: u64,
    /// WAL records verified and replayed.
    pub wal_records: u64,
    /// Digest after replaying the full WAL.
    pub final_digest: u128,
    /// Tuples after replaying the full WAL.
    pub final_tuples: u64,
}

/// An open durable database: recovered in-memory state plus an append
/// handle on the WAL. All mutation goes through [`Store::commit`], which is
/// atomic and durable per transaction.
#[derive(Debug)]
pub struct Store {
    dir: PathBuf,
    db: Database,
    wal: Wal,
    recovery: RecoveryInfo,
    committed_this_session: u64,
    /// Advisory inter-process lock on the directory; held for the life of
    /// the handle, released by the OS on drop or crash.
    _lock: fs::File,
}

impl Store {
    /// Does `dir` hold an initialized store?
    pub fn is_initialized(dir: &Path) -> bool {
        dir.join(SNAPSHOT_FILE).is_file()
    }

    /// Create a store at `dir` holding `initial` (usually an empty database
    /// carrying the program schema). `dir` itself is created if missing;
    /// its parent must exist. Refuses a directory that already holds a
    /// store.
    pub fn init(dir: &Path, initial: &Database) -> Result<Store> {
        if Store::is_initialized(dir) {
            return Err(StoreError::AlreadyInitialized(dir.display().to_string()));
        }
        if !dir.exists() {
            fs::create_dir(dir).map_err(|e| io_err(dir, e))?;
        }
        let lock = acquire_lock(dir)?;
        write_snapshot(&dir.join(SNAPSHOT_FILE), initial)?;
        let wal = Wal::create(&dir.join(WAL_FILE), initial.digest())?;
        Ok(Store {
            dir: dir.to_owned(),
            db: initial.clone(),
            wal,
            recovery: RecoveryInfo {
                outcome: RecoveryOutcome::Fresh,
                replayed: 0,
                torn_bytes: 0,
                snapshot_tuples: initial.total_tuples() as u64,
                snapshot_age: 0,
            },
            committed_this_session: 0,
            _lock: lock,
        })
    }

    /// Open an existing store, running crash recovery (see the module docs
    /// for the invariant). Any torn WAL tail is cut so subsequent commits
    /// append after the last verified record.
    pub fn open(dir: &Path) -> Result<Store> {
        if !Store::is_initialized(dir) {
            return Err(StoreError::NotInitialized(dir.display().to_string()));
        }
        let lock = acquire_lock(dir)?;
        let (mut db, snap_digest) = load_snapshot(&dir.join(SNAPSHOT_FILE))?;
        let snapshot_tuples = db.total_tuples() as u64;
        let wal_path = dir.join(WAL_FILE);
        let mut outcome = RecoveryOutcome::Recovered;
        let mut replayed = 0u64;
        let mut torn_bytes = 0u64;
        let wal = if wal_path.is_file() {
            let contents = read_wal(&wal_path)?;
            if contents.base_digest != snap_digest {
                // Interrupted rotation: the snapshot post-dates the WAL and
                // contains everything in it (rotation writes the snapshot
                // first). Discard the stale log.
                outcome = RecoveryOutcome::RecoveredStaleWal;
                Wal::create(&wal_path, snap_digest)?
            } else {
                for rec in &contents.records {
                    db = rec
                        .delta
                        .replay(&db)
                        .map_err(|e| StoreError::Db(e.to_string()))?;
                    if db.digest() != rec.post_digest {
                        return Err(StoreError::DigestMismatch {
                            context: format!("wal record {}", rec.seq),
                            stored: rec.post_digest,
                            computed: db.digest(),
                        });
                    }
                    replayed += 1;
                }
                if let WalTail::Torn { dropped, .. } = contents.tail {
                    outcome = RecoveryOutcome::RecoveredTorn;
                    torn_bytes = dropped;
                }
                Wal::open_at(&wal_path, contents.valid_len, replayed)?
            }
        } else {
            // A store with a snapshot but no WAL (deleted out-of-band):
            // start a fresh log from the snapshot state.
            Wal::create(&wal_path, snap_digest)?
        };
        Ok(Store {
            dir: dir.to_owned(),
            db,
            wal,
            recovery: RecoveryInfo {
                outcome,
                replayed,
                torn_bytes,
                snapshot_tuples,
                snapshot_age: replayed,
            },
            committed_this_session: 0,
            _lock: lock,
        })
    }

    /// Open `dir` if it is a store, otherwise initialize it with `initial`.
    pub fn open_or_init(dir: &Path, initial: &Database) -> Result<Store> {
        if Store::is_initialized(dir) {
            Store::open(dir)
        } else {
            Store::init(dir, initial)
        }
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The current (recovered + committed) database.
    pub fn db(&self) -> &Database {
        &self.db
    }

    /// How recovery went at open time.
    pub fn recovery(&self) -> &RecoveryInfo {
        &self.recovery
    }

    /// Transactions committed through this handle since open.
    pub fn committed_this_session(&self) -> u64 {
        self.committed_this_session
    }

    /// WAL records since the snapshot (replayed + session commits) — the
    /// snapshot's current age in transactions.
    pub fn wal_records(&self) -> u64 {
        self.recovery.replayed + self.committed_this_session
    }

    /// Commit one transaction: apply its delta to the in-memory state,
    /// append the record, `fsync`. Returns the record's sequence number.
    ///
    /// The delta must have been produced against this store's current
    /// state (the engine guarantees this when the run started from
    /// [`Store::db`]); the post-state digest recorded — and verified on
    /// every future recovery — is recomputed here, not taken on trust.
    pub fn commit(&mut self, delta: &Delta) -> Result<u64> {
        let next = delta
            .replay(&self.db)
            .map_err(|e| StoreError::Db(e.to_string()))?;
        let seq = self.wal.append(delta, next.digest())?;
        self.db = next;
        self.committed_this_session += 1;
        Ok(seq)
    }

    /// Commit a whole batch of transactions as one WAL group with **one**
    /// `fsync` (group commit; see [`Wal::append_group`]). The deltas apply
    /// in order, each against the state the previous one left — exactly the
    /// order the OCC validator serialized them in. Returns the seq of the
    /// first record; the batch occupies contiguous seqs. Like
    /// [`Store::commit`], every post-state digest is recomputed here, not
    /// taken on trust, so recovery can verify each record individually.
    pub fn commit_group(&mut self, deltas: &[Delta]) -> Result<u64> {
        assert!(!deltas.is_empty(), "empty commit group");
        let mut cur = self.db.clone();
        let mut entries = Vec::with_capacity(deltas.len());
        for delta in deltas {
            cur = delta
                .replay(&cur)
                .map_err(|e| StoreError::Db(e.to_string()))?;
            entries.push((delta.clone(), cur.digest()));
        }
        let first_seq = self.wal.append_group(&entries)?;
        self.db = cur;
        self.committed_this_session += deltas.len() as u64;
        Ok(first_seq)
    }

    /// Rotate: write a fresh snapshot of the current state, then reset the
    /// WAL to empty on that base. See the module docs for why this order is
    /// crash-safe.
    pub fn rotate_snapshot(&mut self) -> Result<()> {
        write_snapshot(&self.dir.join(SNAPSHOT_FILE), &self.db)?;
        self.wal = Wal::create(&self.dir.join(WAL_FILE), self.db.digest())?;
        self.recovery.replayed = 0;
        self.recovery.snapshot_tuples = self.db.total_tuples() as u64;
        self.recovery.snapshot_age = 0;
        self.committed_this_session = 0;
        Ok(())
    }

    /// Cold integrity pass over a store directory, strict where recovery
    /// is lenient: a torn tail, a checksum failure, a digest mismatch or a
    /// stale WAL all *fail* verification. A store that just closed cleanly
    /// always passes.
    pub fn verify(dir: &Path) -> Result<VerifyReport> {
        if !Store::is_initialized(dir) {
            return Err(StoreError::NotInitialized(dir.display().to_string()));
        }
        let (mut db, snapshot_digest) = load_snapshot(&dir.join(SNAPSHOT_FILE))?;
        let snapshot_tuples = db.total_tuples() as u64;
        let contents = read_wal(&dir.join(WAL_FILE))?;
        if contents.base_digest != snapshot_digest {
            return Err(StoreError::Corrupt(format!(
                "wal base digest 0x{:032x} does not match snapshot digest 0x{snapshot_digest:032x}",
                contents.base_digest
            )));
        }
        if let WalTail::Torn { at, dropped } = contents.tail {
            return Err(StoreError::Corrupt(format!(
                "wal has a torn tail at byte {at} ({dropped} bytes)"
            )));
        }
        for rec in &contents.records {
            db = rec
                .delta
                .replay(&db)
                .map_err(|e| StoreError::Db(e.to_string()))?;
            if db.digest() != rec.post_digest {
                return Err(StoreError::DigestMismatch {
                    context: format!("wal record {}", rec.seq),
                    stored: rec.post_digest,
                    computed: db.digest(),
                });
            }
        }
        // Belt and braces: the incremental digest must agree with a full
        // recomputation of the final state.
        let computed = db.digest_from_scratch();
        if computed != db.digest() {
            return Err(StoreError::DigestMismatch {
                context: "final state".into(),
                stored: db.digest(),
                computed,
            });
        }
        Ok(VerifyReport {
            snapshot_digest,
            snapshot_tuples,
            wal_records: contents.records.len() as u64,
            final_digest: db.digest(),
            final_tuples: db.total_tuples() as u64,
        })
    }

    /// The WAL records currently on disk (for `td db log`). Lenient about a
    /// torn tail, like recovery; returns the records plus the tail state.
    pub fn log(dir: &Path) -> Result<(Vec<WalRecord>, WalTail)> {
        if !Store::is_initialized(dir) {
            return Err(StoreError::NotInitialized(dir.display().to_string()));
        }
        let contents: WalContents = read_wal(&dir.join(WAL_FILE))?;
        Ok((contents.records, contents.tail))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use td_core::Pred;
    use td_db::{tuple, DeltaOp};

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("td-store-store-tests").join(name);
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(dir.parent().unwrap()).unwrap();
        dir
    }

    fn ins(i: i64) -> Delta {
        let mut d = Delta::new();
        d.push(DeltaOp::Ins(Pred::new("n", 1), tuple!(i)));
        d
    }

    #[test]
    fn init_commit_reopen_round_trip() {
        let dir = temp_dir("roundtrip");
        let mut store = Store::init(&dir, &Database::new()).unwrap();
        assert_eq!(store.recovery().outcome, RecoveryOutcome::Fresh);
        for i in 0..10 {
            store.commit(&ins(i)).unwrap();
        }
        let digest = store.db().digest();
        drop(store);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.recovery().outcome, RecoveryOutcome::Recovered);
        assert_eq!(store.recovery().replayed, 10);
        assert_eq!(store.db().digest(), digest);
        assert_eq!(store.db().total_tuples(), 10);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn rotation_compacts_and_survives_reopen() {
        let dir = temp_dir("rotate");
        let mut store = Store::init(&dir, &Database::new()).unwrap();
        for i in 0..5 {
            store.commit(&ins(i)).unwrap();
        }
        store.rotate_snapshot().unwrap();
        assert_eq!(store.wal_records(), 0);
        store.commit(&ins(100)).unwrap();
        let digest = store.db().digest();
        drop(store);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.recovery().replayed, 1);
        assert_eq!(store.recovery().snapshot_tuples, 5);
        assert_eq!(store.db().digest(), digest);
        let report = Store::verify(&dir).unwrap();
        assert_eq!(report.wal_records, 1);
        assert_eq!(report.final_digest, digest);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn open_refuses_uninitialized_and_init_refuses_initialized() {
        let dir = temp_dir("guards");
        assert!(matches!(
            Store::open(&dir),
            Err(StoreError::NotInitialized(_))
        ));
        fs::create_dir(&dir).unwrap();
        assert!(matches!(
            Store::open(&dir),
            Err(StoreError::NotInitialized(_))
        ));
        let store = Store::init(&dir, &Database::new()).unwrap();
        drop(store);
        assert!(matches!(
            Store::init(&dir, &Database::new()),
            Err(StoreError::AlreadyInitialized(_))
        ));
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn stale_wal_after_interrupted_rotation_is_discarded() {
        let dir = temp_dir("stale-wal");
        let mut store = Store::init(&dir, &Database::new()).unwrap();
        for i in 0..3 {
            store.commit(&ins(i)).unwrap();
        }
        let digest = store.db().digest();
        // Simulate the crash window: snapshot rewritten, WAL not yet reset.
        write_snapshot(&dir.join(SNAPSHOT_FILE), store.db()).unwrap();
        drop(store);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.recovery().outcome, RecoveryOutcome::RecoveredStaleWal);
        assert_eq!(store.db().digest(), digest);
        assert_eq!(store.db().total_tuples(), 3);
        drop(store);
        assert!(Store::verify(&dir).is_ok());
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn second_opener_is_rejected_while_lock_held() {
        let dir = temp_dir("locked");
        let store = Store::init(&dir, &Database::new()).unwrap();
        // Same directory, lock still held: both open and re-init refuse.
        assert!(matches!(Store::open(&dir), Err(StoreError::Locked(_))));
        drop(store);
        // Lock released with the handle: reopening succeeds.
        let store = Store::open(&dir).unwrap();
        assert!(matches!(Store::open(&dir), Err(StoreError::Locked(_))));
        drop(store);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_group_round_trips_and_recovers() {
        let dir = temp_dir("group-commit");
        let mut store = Store::init(&dir, &Database::new()).unwrap();
        store.commit(&ins(0)).unwrap();
        let first = store.commit_group(&[ins(1), ins(2), ins(3)]).unwrap();
        assert_eq!(first, 1);
        assert_eq!(store.committed_this_session(), 4);
        assert_eq!(store.wal_records(), 4);
        let digest = store.db().digest();
        drop(store);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.recovery().replayed, 4);
        assert_eq!(store.db().digest(), digest);
        assert_eq!(store.db().total_tuples(), 4);
        drop(store);
        let report = Store::verify(&dir).unwrap();
        assert_eq!(report.wal_records, 4);
        assert_eq!(report.final_digest, digest);
        fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn commit_records_survive_without_rotation() {
        // fsync-on-commit: no snapshot was ever rotated, the WAL alone
        // carries all state.
        let dir = temp_dir("wal-only");
        let mut store = Store::init(&dir, &Database::new()).unwrap();
        let mut d = Delta::new();
        d.push(DeltaOp::Ins(Pred::new("a", 2), tuple!("x", 1)));
        d.push(DeltaOp::Ins(Pred::new("a", 2), tuple!("y", 2)));
        d.push(DeltaOp::Del(Pred::new("a", 2), tuple!("x", 1)));
        store.commit(&d).unwrap();
        drop(store);
        let store = Store::open(&dir).unwrap();
        assert_eq!(store.db().total_tuples(), 1);
        assert!(store.db().contains(Pred::new("a", 2), &tuple!("y", 2)));
        fs::remove_dir_all(&dir).unwrap();
    }
}
