//! # td-store — durability beneath [`td_db::Database`]
//!
//! The paper's semantics commit a transaction's delta atomically (the
//! isolation operator `⊙a` and the committed-path model of §2–§3), but the
//! engine alone only ever commits to an in-memory snapshot value. This crate
//! adds the missing layer for long-lived workloads, in the tradition of
//! Wielemaker's *Extending the logical update view with transaction
//! support*: durable, atomically visible updates layered *under* the logical
//! semantics, invisible to them except for where the initial database comes
//! from.
//!
//! Layout of a store directory:
//!
//! ```text
//! <dir>/snapshot.tds   full database image  (format tag td-store/v1, kind "snap")
//! <dir>/wal.tdl        logical write-ahead log since that snapshot ("wal\n")
//! ```
//!
//! * [`codec`] — the versioned binary codec: length-prefixed values, tuples
//!   and relations inside checksummed pages.
//! * [`snapshot`] — full-database image writer/loader; the persisted 128-bit
//!   content digest is re-derived on load and must match.
//! * [`wal`] — one checksummed record per *committed* transaction delta
//!   (the `ins`/`del` sets the engine already produces), fsync'd on commit;
//!   a torn or corrupt tail is detected and cut, never replayed.
//! * [`store`] — [`Store`]: open-or-recover, commit, rotate, verify.
//! * [`faultfs`] — deterministic byte-granular truncation/corruption
//!   helpers for crash tests.
//!
//! The recovery invariant (docs/PERSISTENCE.md): after any crash, recovery
//! yields a digest-verified database equal to the snapshot plus a *prefix*
//! of the committed transaction sequence — a partial transaction delta is
//! never made visible.

pub mod codec;
pub mod concurrent;
pub mod faultfs;
pub mod snapshot;
pub mod store;
pub mod wal;

pub use codec::{CodecError, FORMAT_TAG};
pub use concurrent::{
    Committed, ConcurrentStats, ConcurrentStore, TxDecision, TxError, TxOptions, Validation,
};
pub use snapshot::{load_snapshot, write_snapshot};
pub use store::{RecoveryInfo, RecoveryOutcome, Store, VerifyReport};
pub use wal::{Wal, WalRecord, WalTail};

use std::fmt;

/// Everything that can go wrong when persisting or recovering a database.
#[derive(Debug)]
pub enum StoreError {
    /// Filesystem failure, with the path it concerned.
    Io(String, std::io::Error),
    /// A frame or payload failed to decode.
    Codec(CodecError),
    /// A persisted digest did not match the recomputed one.
    DigestMismatch {
        context: String,
        stored: u128,
        computed: u128,
    },
    /// The directory does not hold an initialized store.
    NotInitialized(String),
    /// Another process holds the store's advisory lock.
    Locked(String),
    /// The directory already holds a store (`init` refused).
    AlreadyInitialized(String),
    /// Snapshot/WAL pair is inconsistent beyond repair.
    Corrupt(String),
    /// A replayed update faulted against the database (arity drift).
    Db(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::Io(path, e) => write!(f, "{path}: {e}"),
            StoreError::Codec(e) => write!(f, "codec: {e}"),
            StoreError::DigestMismatch {
                context,
                stored,
                computed,
            } => write!(
                f,
                "{context}: stored digest 0x{stored:032x} does not match recomputed 0x{computed:032x}"
            ),
            StoreError::NotInitialized(p) => {
                write!(f, "`{p}` is not an initialized store (run `td db init`)")
            }
            StoreError::Locked(p) => write!(
                f,
                "`{p}` is locked by another process (two writers on one \
                 store would corrupt the commit sequence; use `td serve` \
                 for concurrent access)"
            ),
            StoreError::AlreadyInitialized(p) => write!(f, "`{p}` already holds a store"),
            StoreError::Corrupt(msg) => write!(f, "store corrupt: {msg}"),
            StoreError::Db(msg) => write!(f, "replay fault: {msg}"),
        }
    }
}

impl std::error::Error for StoreError {}

impl From<CodecError> for StoreError {
    fn from(e: CodecError) -> StoreError {
        StoreError::Codec(e)
    }
}

/// Shorthand used across the crate.
pub type Result<T> = std::result::Result<T, StoreError>;

pub(crate) fn io_err(path: &std::path::Path, e: std::io::Error) -> StoreError {
    StoreError::Io(path.display().to_string(), e)
}
