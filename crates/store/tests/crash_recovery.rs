//! Crash-recovery fault injection: the recovery invariant, exhaustively.
//!
//! A multi-transaction corpus scenario (the iterated laboratory protocol)
//! is committed through a store. Then, for **every byte-length prefix** of
//! the WAL — every point a crash could have cut a write — the store is
//! recovered and the result must be a digest-verified *prefix* of the
//! committed transaction sequence. A partial transaction delta never
//! becomes visible; a committed (fsync-acknowledged) transaction before
//! the cut is never lost.
//!
//! A second pass flips individual bytes instead of truncating: corruption
//! inside a record must surface either as a cut tail (checksum catches it)
//! or as a hard error — never as a silently different database.

use std::fs;
use std::path::{Path, PathBuf};
use td_db::Database;
use td_engine::{load_init, Engine, EngineConfig, Outcome};
use td_parser::{parse_goal, parse_program};
use td_store::wal::WAL_FILE;
use td_store::{faultfs, RecoveryOutcome, Store, StoreError};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("td-store-crash-tests").join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

/// Build a store from the iterated-protocol corpus file and commit a
/// sequence of transactions: the init facts (genesis), the file's own goal,
/// then two reset-and-rerun transactions so the WAL holds several real
/// deltas. Returns the store dir and the expected digest after each prefix
/// of the commit sequence (index 0 = empty store).
fn committed_corpus_store(dir: &Path) -> Vec<u128> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../corpus/iterated_protocol.td");
    let src = fs::read_to_string(&root).expect("corpus file readable");
    let parsed = parse_program(&src).expect("corpus parses");
    let schema = Database::with_schema_of(&parsed.program);

    let mut store = Store::init(dir, &schema).expect("store init");
    let mut digests = vec![store.db().digest()];

    // Genesis transaction: the init facts as one committed delta.
    let with_init = load_init(&schema, &parsed.init).expect("init loads");
    let mut genesis = td_db::Delta::new();
    for p in with_init.preds() {
        if let Some(rel) = with_init.relation(p) {
            for t in rel.to_sorted_vec() {
                genesis.push(td_db::DeltaOp::Ins(p, t));
            }
        }
    }
    store.commit(&genesis).expect("genesis commit");
    digests.push(store.db().digest());

    // The file's goal, then two reset-and-rerun protocols — each a
    // transaction with a real ins/del delta.
    let engine = Engine::with_config(parsed.program.clone(), EngineConfig::default());
    let goals = [
        parsed.goals[0].goal.clone(),
        parse_goal(
            "del.mapped(s1) * del.quality(s1, 3) * ins.quality(s1, 0) * protocol(s1).",
            &parsed.program,
        )
        .expect("reset goal parses")
        .goal,
        parse_goal(
            "del.mapped(s2) * del.quality(s2, 3) * ins.quality(s2, 1) * protocol(s2).",
            &parsed.program,
        )
        .expect("reset goal parses")
        .goal,
    ];
    for goal in &goals {
        match engine
            .solve(goal, store.db())
            .expect("corpus run cannot fault")
        {
            Outcome::Success(sol) => {
                assert!(
                    !sol.delta.is_empty(),
                    "scenario transactions have real deltas"
                );
                store.commit(&sol.delta).expect("commit");
                assert_eq!(
                    store.db().digest(),
                    sol.db.digest(),
                    "store replay == engine state"
                );
                digests.push(store.db().digest());
            }
            Outcome::Failure { .. } => panic!("corpus scenario must be executable"),
        }
    }
    digests
}

#[test]
fn every_wal_prefix_recovers_to_a_committed_prefix() {
    let base = temp_dir("prefix-base");
    let digests = committed_corpus_store(&base);
    assert!(digests.len() >= 5, "multi-transaction scenario");

    let wal_bytes = fs::read(base.join(WAL_FILE)).unwrap();
    // Record boundaries: re-scan the finished WAL; a prefix cut exactly at
    // a boundary is a clean log, anywhere else is a torn tail.
    let (records, _) = Store::log(&base).unwrap();
    assert_eq!(records.len() + 1, digests.len());
    let mut boundaries = Vec::new();
    {
        // Reconstruct each record's end offset by re-framing: walk frames.
        use td_store::codec::{read_frame, FrameOutcome};
        let mut at = {
            // skip file header + base page
            match read_frame(&wal_bytes, td_store::codec::FORMAT_TAG.len() + 4) {
                FrameOutcome::Ok { next, .. } => next,
                other => panic!("unexpected {other:?}"),
            }
        };
        boundaries.push(at);
        loop {
            match read_frame(&wal_bytes, at) {
                FrameOutcome::Ok { next, .. } => {
                    boundaries.push(next);
                    at = next;
                }
                FrameOutcome::End => break,
                other => panic!("unexpected {other:?}"),
            }
        }
    }
    assert_eq!(boundaries.len(), digests.len());

    let work = temp_dir("prefix-work");
    fs::copy(base.join("snapshot.tds"), work.join("snapshot.tds")).unwrap();
    // Every byte-length prefix from the freshly-created WAL (header + base
    // page — `Wal::create` is atomic, so shorter prefixes cannot occur
    // from a crash; they are covered by the hard-error test below).
    for cut in boundaries[0]..=*boundaries.last().unwrap() {
        fs::write(work.join(WAL_FILE), &wal_bytes[..cut]).unwrap();
        let store = Store::open(&work).unwrap_or_else(|e| panic!("cut {cut}: {e}"));
        let k = boundaries.iter().filter(|b| **b <= cut).count() - 1;
        assert_eq!(
            store.db().digest(),
            digests[k],
            "cut {cut}: recovered state must be the digest of commit prefix {k}"
        );
        assert_eq!(store.recovery().replayed, k as u64, "cut {cut}");
        if boundaries.contains(&cut) {
            assert_eq!(
                store.recovery().outcome,
                RecoveryOutcome::Recovered,
                "cut {cut}"
            );
        } else {
            assert_eq!(
                store.recovery().outcome,
                RecoveryOutcome::RecoveredTorn,
                "cut {cut}"
            );
            assert!(store.recovery().torn_bytes > 0, "cut {cut}");
        }
        drop(store);
        // Recovery repaired the file: it must now verify clean with
        // exactly the prefix's records.
        let report = Store::verify(&work).unwrap_or_else(|e| panic!("cut {cut}: verify: {e}"));
        assert_eq!(report.wal_records, k as u64, "cut {cut}");
        assert_eq!(report.final_digest, digests[k], "cut {cut}");
    }

    fs::remove_dir_all(&base).unwrap();
    fs::remove_dir_all(&work).unwrap();
}

#[test]
fn truncation_inside_the_wal_base_page_is_a_hard_error_not_silent_state() {
    let base = temp_dir("basepage-base");
    let _ = committed_corpus_store(&base);
    let wal_bytes = fs::read(base.join(WAL_FILE)).unwrap();
    let work = temp_dir("basepage-work");
    fs::copy(base.join("snapshot.tds"), work.join("snapshot.tds")).unwrap();
    let prefix_len = td_store::wal::wal_prefix(0).len();
    for cut in 0..prefix_len {
        fs::write(work.join(WAL_FILE), &wal_bytes[..cut]).unwrap();
        match Store::open(&work) {
            Err(StoreError::Corrupt(_)) | Err(StoreError::Codec(_)) => {}
            other => panic!("cut {cut}: expected hard error, got {other:?}"),
        }
    }
    fs::remove_dir_all(&base).unwrap();
    fs::remove_dir_all(&work).unwrap();
}

#[test]
fn flipping_any_wal_record_byte_never_yields_a_non_prefix_state() {
    let base = temp_dir("flip-base");
    let digests = committed_corpus_store(&base);
    let wal_bytes = fs::read(base.join(WAL_FILE)).unwrap();
    let work = temp_dir("flip-work");
    fs::copy(base.join("snapshot.tds"), work.join("snapshot.tds")).unwrap();
    let record_region = td_store::wal::wal_prefix(0).len();
    // Step through the record region (every 7th byte keeps the test quick
    // while hitting every frame field across records).
    for offset in (record_region..wal_bytes.len()).step_by(7) {
        fs::write(work.join(WAL_FILE), &wal_bytes).unwrap();
        faultfs::flip_byte(&work.join(WAL_FILE), offset as u64, 0x20).unwrap();
        match Store::open(&work) {
            Ok(store) => {
                // Checksum cut the tail at the damaged record: state must
                // be a commit-prefix digest, reached in order.
                let k = store.recovery().replayed as usize;
                assert!(k < digests.len(), "offset {offset}");
                assert_eq!(
                    store.db().digest(),
                    digests[k],
                    "offset {offset}: corruption leaked a non-prefix state"
                );
            }
            // A flip that garbles frame *lengths* into overlapping-but-
            // checksummed nonsense surfaces as corruption — also safe.
            Err(StoreError::Corrupt(_)) | Err(StoreError::Codec(_)) => {}
            Err(e) => panic!("offset {offset}: unexpected error {e}"),
        }
    }
    fs::remove_dir_all(&base).unwrap();
    fs::remove_dir_all(&work).unwrap();
}
