//! Group-commit crash injection: the recovery invariant, extended to
//! grouped WAL records.
//!
//! A WAL holding a mix of single-record frames and multi-commit group
//! frames (the shape `td serve` writes under load) is cut at **every byte
//! length** — every point a crash could tear the file. Recovery must yield
//! a digest-verified *prefix of whole groups*: a group is either wholly
//! present or wholly gone, never torn into a prefix of its member records.
//! This is exactly what makes group commit safe: members of a group are
//! acknowledged to clients only after the group's one fsync, so dropping a
//! whole unacknowledged group loses nothing a client was promised.
//!
//! A second pass flips individual bytes: corruption inside a group frame
//! must surface as a cut tail or a hard error — never as a different
//! database.

use std::fs;
use std::path::{Path, PathBuf};
use td_core::Pred;
use td_db::{tuple, Delta, DeltaOp};
use td_store::wal::WAL_FILE;
use td_store::{faultfs, Store};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("td-store-group-crash").join(name);
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn ins(i: i64) -> Delta {
    let mut d = Delta::new();
    d.push(DeltaOp::Ins(Pred::new("n", 1), tuple!(i)));
    d
}

/// One durable state the WAL can legally recover to: how many records, the
/// database digest, and the WAL byte length at that boundary.
struct Boundary {
    records: u64,
    digest: u128,
    wal_len: u64,
}

/// Build a store whose WAL holds groups of sizes [1, 3, 2, 4, 1] (single
/// records and true groups interleaved) and record every group boundary.
fn grouped_store(dir: &Path) -> Vec<Boundary> {
    let schema = td_db::Database::new().declare(Pred::new("n", 1));
    let mut store = Store::init(dir, &schema).unwrap();
    let wal = dir.join(WAL_FILE);
    let mut boundaries = vec![Boundary {
        records: 0,
        digest: store.db().digest(),
        wal_len: faultfs::file_len(&wal).unwrap(),
    }];
    let mut next = 0i64;
    for size in [1usize, 3, 2, 4, 1] {
        let deltas: Vec<Delta> = (0..size)
            .map(|_| {
                next += 1;
                ins(next)
            })
            .collect();
        store.commit_group(&deltas).unwrap();
        boundaries.push(Boundary {
            records: store.wal_records(),
            digest: store.db().digest(),
            wal_len: faultfs::file_len(&wal).unwrap(),
        });
    }
    boundaries
}

/// An event append as the serve layer commits it: one `Ins` on the event's
/// stored relation, value plus trailing timestamp column.
fn event_ins(i: i64, ts: i64) -> Delta {
    let mut d = Delta::new();
    d.push(DeltaOp::Ins(Pred::new("ev", 2), tuple!(i, ts)));
    d
}

/// The WAL shape of a reactive server under load: single-record event
/// appends interleaved with multi-commit group frames (client transactions
/// batched by the group committer). Every boundary — after each event
/// record and after each whole group — is a legal recovery point.
fn reactive_store(dir: &Path) -> Vec<Boundary> {
    let schema = td_db::Database::new()
        .declare(Pred::new("n", 1))
        .declare(Pred::new("ev", 2));
    let mut store = Store::init(dir, &schema).unwrap();
    let wal = dir.join(WAL_FILE);
    let mut boundaries = vec![Boundary {
        records: 0,
        digest: store.db().digest(),
        wal_len: faultfs::file_len(&wal).unwrap(),
    }];
    let push = |store: &Store, boundaries: &mut Vec<Boundary>| {
        boundaries.push(Boundary {
            records: store.wal_records(),
            digest: store.db().digest(),
            wal_len: faultfs::file_len(&wal).unwrap(),
        });
    };
    let mut next = 0i64;
    let mut ts = 100i64;
    for size in [2usize, 1, 3, 2] {
        // One event append, then a group of client commits, then another
        // event append — the interleaving a burst of ingestion produces.
        ts += 7;
        store.commit(&event_ins(ts, ts)).unwrap();
        push(&store, &mut boundaries);
        let deltas: Vec<Delta> = (0..size)
            .map(|_| {
                next += 1;
                ins(next)
            })
            .collect();
        store.commit_group(&deltas).unwrap();
        push(&store, &mut boundaries);
        ts += 7;
        store.commit(&event_ins(ts, ts)).unwrap();
        push(&store, &mut boundaries);
    }
    boundaries
}

#[test]
fn every_byte_cut_recovers_a_prefix_of_whole_groups() {
    let base = temp_dir("cut_base");
    let boundaries = grouped_store(&base);
    let full_len = boundaries.last().unwrap().wal_len;
    assert_eq!(boundaries.last().unwrap().records, 11);
    let scratch = temp_dir("cut_scratch");
    // Cuts inside the WAL file header are hard structural errors, covered
    // by the base crash suite; the group sweep starts at the first record
    // boundary (the freshly-initialized WAL).
    for cut in boundaries[0].wal_len..=full_len {
        let _ = fs::remove_dir_all(&scratch);
        faultfs::copy_dir(&base, &scratch).unwrap();
        faultfs::truncate_to(&scratch.join(WAL_FILE), cut).unwrap();
        let store = Store::open(&scratch).unwrap();
        // The recovered state must be the *largest whole-group prefix*
        // that fits in `cut` — groups are all-or-nothing, so a cut inside
        // group k recovers exactly groups 0..k, not a partial k.
        let expected = boundaries
            .iter()
            .rev()
            .find(|b| b.wal_len <= cut)
            .expect("boundary 0 is always <= cut");
        assert_eq!(
            store.recovery().replayed,
            expected.records,
            "cut at {cut}: replayed a non-boundary record count"
        );
        assert_eq!(
            store.db().digest(),
            expected.digest,
            "cut at {cut}: recovered state is not a group-boundary state"
        );
        let torn = cut - expected.wal_len;
        assert_eq!(store.recovery().torn_bytes, torn, "cut at {cut}");
        drop(store);
        // Recovery is idempotent: a second open is clean, same state.
        let again = Store::open(&scratch).unwrap();
        assert_eq!(again.db().digest(), expected.digest, "cut at {cut}");
        assert_eq!(again.recovery().torn_bytes, 0, "cut at {cut}");
    }
    fs::remove_dir_all(&base).unwrap();
    fs::remove_dir_all(&scratch).unwrap();
}

#[test]
fn byte_corruption_inside_groups_never_yields_a_new_state() {
    let base = temp_dir("flip_base");
    let boundaries = grouped_store(&base);
    let full_len = boundaries.last().unwrap().wal_len;
    let scratch = temp_dir("flip_scratch");
    for offset in 0..full_len {
        let _ = fs::remove_dir_all(&scratch);
        faultfs::copy_dir(&base, &scratch).unwrap();
        faultfs::flip_byte(&scratch.join(WAL_FILE), offset, 0x40).unwrap();
        // A flip either surfaces as a hard open error (acceptable, never
        // silent) or the checksum / group framing caught it and some
        // boundary prefix survives — nothing else.
        if let Ok(store) = Store::open(&scratch) {
            assert!(
                boundaries
                    .iter()
                    .any(|b| b.digest == store.db().digest()
                        && b.records == store.recovery().replayed),
                "flip at {offset}: recovered records={} digest={:032x} \
                 is not a group boundary",
                store.recovery().replayed,
                store.db().digest()
            );
        }
    }
    fs::remove_dir_all(&base).unwrap();
    fs::remove_dir_all(&scratch).unwrap();
}

#[test]
fn every_byte_cut_over_interleaved_event_appends_recovers_a_boundary() {
    let base = temp_dir("event_cut_base");
    let boundaries = reactive_store(&base);
    let full_len = boundaries.last().unwrap().wal_len;
    // 4 rounds × (event + group + event) = 8 event records + 8 grouped.
    assert_eq!(boundaries.last().unwrap().records, 16);
    let scratch = temp_dir("event_cut_scratch");
    for cut in boundaries[0].wal_len..=full_len {
        let _ = fs::remove_dir_all(&scratch);
        faultfs::copy_dir(&base, &scratch).unwrap();
        faultfs::truncate_to(&scratch.join(WAL_FILE), cut).unwrap();
        let store = Store::open(&scratch).unwrap();
        // All-or-nothing at every grain: a cut inside an event record
        // drops that whole record, a cut inside a group drops the whole
        // group — recovery lands exactly on the largest boundary ≤ cut.
        let expected = boundaries
            .iter()
            .rev()
            .find(|b| b.wal_len <= cut)
            .expect("boundary 0 is always <= cut");
        assert_eq!(
            store.recovery().replayed,
            expected.records,
            "cut at {cut}: replayed a non-boundary record count"
        );
        assert_eq!(
            store.db().digest(),
            expected.digest,
            "cut at {cut}: recovered state is not a commit-boundary state"
        );
        assert_eq!(
            store.recovery().torn_bytes,
            cut - expected.wal_len,
            "cut at {cut}"
        );
    }
    fs::remove_dir_all(&base).unwrap();
    fs::remove_dir_all(&scratch).unwrap();
}

#[test]
fn byte_corruption_over_interleaved_event_appends_never_yields_a_new_state() {
    let base = temp_dir("event_flip_base");
    let boundaries = reactive_store(&base);
    let full_len = boundaries.last().unwrap().wal_len;
    let scratch = temp_dir("event_flip_scratch");
    for offset in 0..full_len {
        let _ = fs::remove_dir_all(&scratch);
        faultfs::copy_dir(&base, &scratch).unwrap();
        faultfs::flip_byte(&scratch.join(WAL_FILE), offset, 0x40).unwrap();
        if let Ok(store) = Store::open(&scratch) {
            assert!(
                boundaries
                    .iter()
                    .any(|b| b.digest == store.db().digest()
                        && b.records == store.recovery().replayed),
                "flip at {offset}: recovered records={} digest={:032x} \
                 is not a commit boundary",
                store.recovery().replayed,
                store.db().digest()
            );
        }
    }
    fs::remove_dir_all(&base).unwrap();
    fs::remove_dir_all(&scratch).unwrap();
}
