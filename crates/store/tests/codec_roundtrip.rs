//! Property suite for the `td-store/v1` codec: arbitrary databases encode →
//! decode to an identical database with an identical 128-bit digest,
//! through both the raw payload codec and the full snapshot file format.

use proptest::prelude::*;
use td_core::{Pred, Value};
use td_db::{Database, Delta, DeltaOp, Tuple};
use td_store::codec::{self, Dec, Enc};
use td_store::snapshot;

/// The widest tuple the generator produces (exercises the max-arity path;
/// the codec itself has no arity ceiling below its anti-garbage guards).
const MAX_ARITY: usize = 8;

fn arb_value() -> impl Strategy<Value = Value> {
    prop_oneof![
        any::<i64>().prop_map(Value::Int),
        Just(Value::Int(i64::MIN)),
        Just(Value::Int(i64::MAX)),
        (0u8..24).prop_map(|i| Value::sym(&format!("sym_{i}"))),
        Just(Value::sym("")),
        Just(Value::sym("non-ascii·π")),
    ]
}

/// An arbitrary database: each generated row is a tuple whose *length*
/// doubles as its relation's arity (`p0/0` … `p8/8`), so arities always
/// agree; plus a couple of declared-but-empty relations so the schema-only
/// case is always present.
fn arb_db() -> impl Strategy<Value = Database> {
    proptest::collection::vec(
        proptest::collection::vec(arb_value(), 0..(MAX_ARITY + 1)),
        0..60,
    )
    .prop_map(|rows| {
        let mut db = Database::new()
            .declare(Pred::new("declared_empty", 2))
            .declare(Pred::new("declared_empty_wide", MAX_ARITY as u32));
        for vals in rows {
            let pred = Pred::new(&format!("p{}", vals.len()), vals.len() as u32);
            db = db.insert(pred, &Tuple::new(vals)).expect("arity agrees").0;
        }
        db
    })
}

fn encode_db(db: &Database) -> Vec<u8> {
    let mut enc = Enc::new();
    codec::put_database(&mut enc, db);
    enc.into_bytes()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn payload_codec_round_trips_identically(db in arb_db()) {
        let bytes = encode_db(&db);
        let mut dec = Dec::new(&bytes);
        let (back, stored) = codec::get_database(&mut dec).expect("decodes");
        dec.finish().expect("no trailing bytes");
        prop_assert_eq!(&back, &db);
        prop_assert_eq!(stored, db.digest());
        prop_assert_eq!(back.digest(), db.digest());
        prop_assert_eq!(back.digest_from_scratch(), db.digest());
    }

    #[test]
    fn snapshot_file_round_trips_identically(db in arb_db()) {
        let bytes = snapshot::snapshot_bytes(&db);
        let (back, digest) = snapshot::parse_snapshot(&bytes).expect("loads");
        prop_assert_eq!(&back, &db);
        prop_assert_eq!(digest, db.digest());
        // Declared empty relations are schema, and schema survives.
        prop_assert_eq!(
            back.preds().collect::<Vec<_>>(),
            db.preds().collect::<Vec<_>>()
        );
    }

    #[test]
    fn encoding_is_a_function_of_content(db in arb_db()) {
        // Re-encoding a decoded database is byte-identical: no hidden
        // history or iteration-order dependence anywhere in the format.
        let bytes = encode_db(&db);
        let (back, _) = codec::get_database(&mut Dec::new(&bytes)).expect("decodes");
        prop_assert_eq!(encode_db(&back), bytes);
    }

    #[test]
    fn deltas_round_trip(ops in proptest::collection::vec(
        (any::<bool>(), 0u8..5, proptest::collection::vec(arb_value(), 0..(MAX_ARITY + 1))),
        0..40
    )) {
        let mut delta = Delta::new();
        for (is_ins, p, vals) in ops {
            let pred = Pred::new(&format!("q{p}_{}", vals.len()), vals.len() as u32);
            let t = Tuple::new(vals);
            delta.push(if is_ins {
                DeltaOp::Ins(pred, t)
            } else {
                DeltaOp::Del(pred, t)
            });
        }
        let mut enc = Enc::new();
        codec::put_delta(&mut enc, &delta);
        let bytes = enc.into_bytes();
        let mut dec = Dec::new(&bytes);
        let back = codec::get_delta(&mut dec).expect("decodes");
        dec.finish().expect("no trailing bytes");
        prop_assert_eq!(back, delta);
    }
}

#[test]
fn empty_database_and_max_arity_round_trip() {
    // The two edges called out explicitly: a fully empty database, and a
    // relation at the generator's max arity filled with extreme values.
    let empty = Database::new();
    let (back, digest) = snapshot::parse_snapshot(&snapshot::snapshot_bytes(&empty)).unwrap();
    assert!(back.same_content(&empty));
    assert_eq!(digest, 0);

    let wide = Pred::new("wide", MAX_ARITY as u32);
    let tuple = Tuple::new(
        (0..MAX_ARITY)
            .map(|i| {
                if i % 2 == 0 {
                    Value::Int(i64::MIN + i as i64)
                } else {
                    Value::sym(&format!("v{i}"))
                }
            })
            .collect(),
    );
    let db = Database::new().insert(wide, &tuple).unwrap().0;
    let (back, digest) = snapshot::parse_snapshot(&snapshot::snapshot_bytes(&db)).unwrap();
    assert_eq!(back, db);
    assert_eq!(digest, db.digest());
    assert!(back.contains(wide, &tuple));
}
