//! OCC serializability differential: N concurrent conflicting clients
//! against one [`ConcurrentStore`] must produce a final state reachable by
//! *some* sequential order of the committed transactions — under both
//! validation modes (per-relation read-set, the default, and the
//! whole-database fallback).
//!
//! The differential is direct: every commit's WAL seq is its claimed
//! serialization position, so we replay the committed operations in seq
//! order through a sequential model (a plain map of balances, no store, no
//! threads) and require (1) every committed transfer was valid *at its
//! position in that order* — the funds it withdrew were really there —
//! and (2) the model's final state equals the store's, digest included,
//! after a cold recovery. Under OCC churn (every client hits the same few
//! accounts) any lost update, write skew, or torn validation shows up as
//! either an overdraft in the replay or a diverging final state.
//!
//! Two further suites pin what the read-set refactor changed:
//! clients over **disjoint** relations commit with zero conflict retries
//! (the point of per-relation validation), and a commuting workload runs
//! to the **same final digest** under both validation modes.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use td_core::{Pred, Value};
use td_db::{Database, Delta, DeltaOp, ReadSet, Tuple};
use td_store::{ConcurrentStore, Store, TxDecision, TxOptions, Validation};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("td-store-occ").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const BALANCE: &str = "balance";
const OPENING: i64 = 100;

fn pred() -> Pred {
    Pred::new(BALANCE, 2)
}

fn acct(i: usize) -> Value {
    Value::sym(&format!("acct{i}"))
}

fn row(i: usize, bal: i64) -> Tuple {
    Tuple::new(vec![acct(i), Value::Int(bal)])
}

fn genesis(accounts: usize) -> Database {
    let mut db = Database::new().declare(pred());
    for i in 0..accounts {
        db = db.insert(pred(), &row(i, OPENING)).unwrap().0;
    }
    db
}

/// Read one balance out of a snapshot.
fn balance_of(db: &Database, i: usize) -> i64 {
    let rel = db.relation(pred()).expect("declared");
    let name = acct(i);
    rel.to_sorted_vec()
        .iter()
        .find_map(|t| {
            let v = t.values();
            if v[0] == name {
                match v[1] {
                    Value::Int(b) => Some(b),
                    _ => None,
                }
            } else {
                None
            }
        })
        .expect("every account has exactly one balance row")
}

/// The transfer delta a banking client produces against its snapshot.
fn transfer_delta(db: &Database, from: usize, to: usize, amt: i64) -> Option<Delta> {
    let bf = balance_of(db, from);
    if bf < amt {
        return None;
    }
    let bt = balance_of(db, to);
    let mut d = Delta::new();
    d.push(DeltaOp::Del(pred(), row(from, bf)));
    d.push(DeltaOp::Ins(pred(), row(from, bf - amt)));
    d.push(DeltaOp::Del(pred(), row(to, bt)));
    d.push(DeltaOp::Ins(pred(), row(to, bt + amt)));
    Some(d)
}

/// The read set of [`transfer_delta`]: it consults only the balance
/// relation (both the overdraft test and the two current-balance reads).
fn transfer_reads() -> ReadSet {
    let mut rs = ReadSet::new();
    rs.record(pred());
    rs
}

/// One client's scripted operation.
#[derive(Clone, Copy, Debug)]
struct Op {
    from: usize,
    to: usize,
    amt: i64,
}

fn arb_ops(accounts: usize) -> impl Strategy<Value = Vec<Vec<Op>>> {
    // 2–4 clients × 1–6 ops over few accounts: heavy deliberate conflict.
    proptest::collection::vec(
        proptest::collection::vec(
            (0..accounts, 0..accounts, 1i64..60).prop_map(|(from, to, amt)| Op { from, to, amt }),
            1..7,
        ),
        2..5,
    )
}

/// Run the scripted clients concurrently under `validation`, then check
/// the WAL-order serializability differential end-to-end (dense seqs, no
/// overdraft in replay, conservation, cold-recovery digest equality).
/// Panics on any violation; returns the recovered final digest.
fn run_and_check_banking(ops: &[Vec<Op>], dir: &std::path::Path, validation: Validation) -> u128 {
    let accounts = 3;
    let cs = ConcurrentStore::open_or_init(dir, &genesis(accounts))
        .unwrap()
        .with_options(TxOptions {
            max_attempts: 200,
            backoff: std::time::Duration::from_micros(10),
            validation,
        });
    // Run every client concurrently; collect (seq, op) for commits.
    let workers: Vec<_> = ops
        .iter()
        .cloned()
        .map(|script| {
            let cs = cs.clone();
            std::thread::spawn(move || {
                let mut committed = Vec::new();
                for op in script {
                    let r = cs
                        .transaction(|db| {
                            if op.from == op.to {
                                return Ok::<_, String>(TxDecision::Abort(()));
                            }
                            match transfer_delta(db, op.from, op.to, op.amt) {
                                Some(d) => Ok(TxDecision::commit(d, transfer_reads(), ())),
                                None => Ok(TxDecision::Abort(())),
                            }
                        })
                        .expect("transaction never errors under a 200-retry budget");
                    if let Some(seq) = r.seq {
                        committed.push((seq, op));
                    }
                }
                committed
            })
        })
        .collect();
    let mut committed: Vec<(u64, Op)> = Vec::new();
    for w in workers {
        committed.extend(w.join().unwrap());
    }
    committed.sort_by_key(|(seq, _)| *seq);
    // Seqs are the claimed serial order: dense and unique from 0 (the
    // opening balances live in the snapshot, not the WAL).
    for (i, (seq, _)) in committed.iter().enumerate() {
        assert_eq!(*seq, i as u64, "commit seqs must be dense");
    }
    // Differential replay: the committed ops, in WAL order, through a
    // sequential model. Every op must be valid at its position.
    let mut model: BTreeMap<usize, i64> = (0..accounts).map(|i| (i, OPENING)).collect();
    for (seq, op) in &committed {
        let bf = model[&op.from];
        assert!(
            bf >= op.amt,
            "seq {seq}: committed transfer of {} from acct{} holding {bf} — \
             not serializable in WAL order [{validation}]",
            op.amt,
            op.from
        );
        *model.get_mut(&op.from).unwrap() -= op.amt;
        *model.get_mut(&op.to).unwrap() += op.amt;
    }
    // Conservation, then exact state equality against a cold recovery.
    assert_eq!(model.values().sum::<i64>(), accounts as i64 * OPENING);
    let head_digest = cs.snapshot().digest();
    let store = cs.close().unwrap();
    drop(store);
    let recovered = Store::open(dir).unwrap();
    assert_eq!(recovered.db().digest(), head_digest);
    let mut expected = Database::new().declare(pred());
    for (i, bal) in &model {
        expected = expected.insert(pred(), &row(*i, *bal)).unwrap().0;
    }
    assert_eq!(
        recovered.db().digest(),
        expected.digest(),
        "recovered state diverges from the sequential replay [{validation}]"
    );
    drop(recovered);
    head_digest
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// The full differential, in both validation modes: the contended
    /// banking history serializes to its WAL order whether validation is
    /// per-relation (every client reads `balance`, so this exercises real
    /// read-set conflicts) or whole-database.
    #[test]
    fn concurrent_clients_serialize_to_their_wal_order(
        ops in arb_ops(3),
        case in 0u64..1_000_000,
    ) {
        for validation in [Validation::ReadSet, Validation::WholeDb] {
            let dir = temp_dir(&format!(
                "case_{case}_{validation}_{}",
                std::process::id()
            ));
            run_and_check_banking(&ops, &dir, validation);
            std::fs::remove_dir_all(&dir).unwrap();
        }
    }
}

/// Clients over **disjoint** relations: with per-relation validation their
/// commits cannot invalidate each other, so every transaction lands on its
/// first attempt — zero conflicts, zero retries. (Under whole-db
/// validation this same workload conflicts constantly; `e21_occ` measures
/// that gap, this test pins the zero.)
#[test]
fn disjoint_relation_clients_commit_without_retries() {
    let clients = 4;
    let per = 25;
    let dir = temp_dir(&format!("disjoint_{}", std::process::id()));
    let mut db = Database::new();
    for c in 0..clients {
        db = db.declare(Pred::new(&format!("rel{c}"), 1));
    }
    let cs = ConcurrentStore::open_or_init(&dir, &db).unwrap();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let cs = cs.clone();
            std::thread::spawn(move || {
                let p = Pred::new(&format!("rel{c}"), 1);
                for i in 0..per {
                    let r = cs
                        .transaction(|snap| {
                            // Read-modify-write confined to this client's
                            // own relation.
                            let n = snap.relation(p).map_or(0, |r| r.len()) as i64;
                            let mut d = Delta::new();
                            d.push(DeltaOp::Ins(p, Tuple::new(vec![Value::Int(n)])));
                            let mut reads = ReadSet::new();
                            reads.record(p);
                            Ok::<_, String>(TxDecision::commit(d, reads, ()))
                        })
                        .expect("no retry budget needed");
                    assert_eq!(r.attempts, 1, "client {c} op {i} was forced to retry");
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
    let stats = cs.stats();
    assert_eq!(stats.conflicts, 0, "disjoint relations cannot conflict");
    assert_eq!(stats.commits, (clients * per) as u64);
    assert!(cs.conflict_attribution().is_empty());
    let store = cs.close().unwrap();
    assert_eq!(store.db().total_tuples(), clients * per);
    drop(store);
    std::fs::remove_dir_all(&dir).unwrap();
}

/// Differential between the two validation modes on a commuting workload:
/// transfers small enough that no interleaving can overdraw always commit,
/// and their effects commute (each is a ±amt on two accounts' running
/// balances), so the final database is schedule-independent — read-set and
/// whole-db validation must reach the identical digest.
#[test]
fn read_set_and_whole_db_validation_agree_on_commuting_history() {
    // 3 clients × 10 ops, amt 1, opening 100: max drain per account is 30.
    let ops: Vec<Vec<Op>> = (0..3)
        .map(|c| {
            (0..10)
                .map(|i| Op {
                    from: (c + i) % 3,
                    to: (c + i + 1) % 3,
                    amt: 1,
                })
                .collect()
        })
        .collect();
    let mut digests = Vec::new();
    for validation in [Validation::ReadSet, Validation::WholeDb] {
        let dir = temp_dir(&format!("differential_{validation}_{}", std::process::id()));
        digests.push(run_and_check_banking(&ops, &dir, validation));
        std::fs::remove_dir_all(&dir).unwrap();
    }
    assert_eq!(
        digests[0], digests[1],
        "validation modes disagree on a schedule-independent history"
    );
}
