//! OCC serializability differential: N concurrent conflicting clients
//! against one [`ConcurrentStore`] must produce a final state reachable by
//! *some* sequential order of the committed transactions.
//!
//! The differential is direct: every commit's WAL seq is its claimed
//! serialization position, so we replay the committed operations in seq
//! order through a sequential model (a plain map of balances, no store, no
//! threads) and require (1) every committed transfer was valid *at its
//! position in that order* — the funds it withdrew were really there —
//! and (2) the model's final state equals the store's, digest included,
//! after a cold recovery. Under OCC churn (every client hits the same few
//! accounts) any lost update, write skew, or torn validation shows up as
//! either an overdraft in the replay or a diverging final state.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;
use td_core::{Pred, Value};
use td_db::{Database, Delta, DeltaOp, Tuple};
use td_store::{ConcurrentStore, Store, TxDecision, TxOptions};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("td-store-occ").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

const BALANCE: &str = "balance";
const OPENING: i64 = 100;

fn pred() -> Pred {
    Pred::new(BALANCE, 2)
}

fn acct(i: usize) -> Value {
    Value::sym(&format!("acct{i}"))
}

fn row(i: usize, bal: i64) -> Tuple {
    Tuple::new(vec![acct(i), Value::Int(bal)])
}

fn genesis(accounts: usize) -> Database {
    let mut db = Database::new().declare(pred());
    for i in 0..accounts {
        db = db.insert(pred(), &row(i, OPENING)).unwrap().0;
    }
    db
}

/// Read one balance out of a snapshot.
fn balance_of(db: &Database, i: usize) -> i64 {
    let rel = db.relation(pred()).expect("declared");
    let name = acct(i);
    rel.to_sorted_vec()
        .iter()
        .find_map(|t| {
            let v = t.values();
            if v[0] == name {
                match v[1] {
                    Value::Int(b) => Some(b),
                    _ => None,
                }
            } else {
                None
            }
        })
        .expect("every account has exactly one balance row")
}

/// The transfer delta a banking client produces against its snapshot.
fn transfer_delta(db: &Database, from: usize, to: usize, amt: i64) -> Option<Delta> {
    let bf = balance_of(db, from);
    if bf < amt {
        return None;
    }
    let bt = balance_of(db, to);
    let mut d = Delta::new();
    d.push(DeltaOp::Del(pred(), row(from, bf)));
    d.push(DeltaOp::Ins(pred(), row(from, bf - amt)));
    d.push(DeltaOp::Del(pred(), row(to, bt)));
    d.push(DeltaOp::Ins(pred(), row(to, bt + amt)));
    Some(d)
}

/// One client's scripted operation.
#[derive(Clone, Copy, Debug)]
struct Op {
    from: usize,
    to: usize,
    amt: i64,
}

fn arb_ops(accounts: usize) -> impl Strategy<Value = Vec<Vec<Op>>> {
    // 2–4 clients × 1–6 ops over few accounts: heavy deliberate conflict.
    proptest::collection::vec(
        proptest::collection::vec(
            (0..accounts, 0..accounts, 1i64..60).prop_map(|(from, to, amt)| Op { from, to, amt }),
            1..7,
        ),
        2..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn concurrent_clients_serialize_to_their_wal_order(
        ops in arb_ops(3),
        case in 0u64..1_000_000,
    ) {
        let accounts = 3;
        let dir = temp_dir(&format!("case_{case}_{}", std::process::id()));
        let cs = ConcurrentStore::open_or_init(&dir, &genesis(accounts))
            .unwrap()
            .with_options(TxOptions {
                max_attempts: 200,
                backoff: std::time::Duration::from_micros(10),
            });
        // Run every client concurrently; collect (seq, op) for commits.
        let workers: Vec<_> = ops
            .iter()
            .cloned()
            .map(|script| {
                let cs = cs.clone();
                std::thread::spawn(move || {
                    let mut committed = Vec::new();
                    for op in script {
                        let r = cs
                            .transaction(|db| {
                                if op.from == op.to {
                                    return Ok::<_, String>(TxDecision::Abort(()));
                                }
                                match transfer_delta(db, op.from, op.to, op.amt) {
                                    Some(d) => Ok(TxDecision::Commit(d, ())),
                                    None => Ok(TxDecision::Abort(())),
                                }
                            })
                            .expect("transaction never errors under a 200-retry budget");
                        if let Some(seq) = r.seq {
                            committed.push((seq, op));
                        }
                    }
                    committed
                })
            })
            .collect();
        let mut committed: Vec<(u64, Op)> = Vec::new();
        for w in workers {
            committed.extend(w.join().unwrap());
        }
        committed.sort_by_key(|(seq, _)| *seq);
        // Seqs are the claimed serial order: dense and unique from 0 (the
        // opening balances live in the snapshot, not the WAL).
        for (i, (seq, _)) in committed.iter().enumerate() {
            prop_assert_eq!(*seq, i as u64, "commit seqs must be dense");
        }
        // Differential replay: the committed ops, in WAL order, through a
        // sequential model. Every op must be valid at its position.
        let mut model: BTreeMap<usize, i64> = (0..accounts).map(|i| (i, OPENING)).collect();
        for (seq, op) in &committed {
            let bf = model[&op.from];
            prop_assert!(
                bf >= op.amt,
                "seq {seq}: committed transfer of {} from acct{} holding {bf} — \
                 not serializable in WAL order",
                op.amt,
                op.from
            );
            *model.get_mut(&op.from).unwrap() -= op.amt;
            *model.get_mut(&op.to).unwrap() += op.amt;
        }
        // Conservation, then exact state equality against a cold recovery.
        prop_assert_eq!(model.values().sum::<i64>(), accounts as i64 * OPENING);
        let head_digest = cs.snapshot().digest();
        let store = cs.close().unwrap();
        drop(store);
        let recovered = Store::open(&dir).unwrap();
        prop_assert_eq!(recovered.db().digest(), head_digest);
        let mut expected = Database::new().declare(pred());
        for (i, bal) in &model {
            expected = expected.insert(pred(), &row(*i, *bal)).unwrap().0;
        }
        prop_assert_eq!(
            recovered.db().digest(),
            expected.digest(),
            "recovered state diverges from the sequential replay"
        );
        drop(recovered);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
