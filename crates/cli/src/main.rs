//! `td` — command-line runner for Transaction Datalog programs.
//!
//! ```text
//! td run <file.td>        execute each ?- goal in the file, print outcomes
//! td trace <file.td>      like run, but print the committed execution trace
//! td fragment <file.td>   classify the program into the paper's sublanguages
//! td decide <file.td>     decide executability with the memoizing decider
//! td repl <file.td>       load the file, read goals interactively
//!
//! td serve <file.td> --db=DIR [--socket=PATH]
//!                         long-running multi-client transaction server:
//!                         the file's rules define the transactions, state
//!                         lives in the store, clients connect over a Unix
//!                         socket (see docs/SERVE.md)
//! td client <request...> --socket=PATH
//!                         send one protocol request (`run <goal>`, `stats`,
//!                         `ping`, `stop`) to a running server
//!
//! td db init <DIR> [file.td]   create a durable store (schema + init facts
//!                              from the program file, when given)
//! td db snapshot <DIR>         compact: fold the WAL into a fresh snapshot
//! td db verify <DIR>           cold integrity pass (checksums + digests)
//! td db log <DIR>              list the committed WAL records
//!
//! options (before the file):
//!   --strategy=exhaustive|random|round-robin|leftmost
//!   --seed=N               seed for --strategy=random (rejected otherwise)
//!   --max-steps=N          step budget (default 10000000)
//!   --threads=N            parallel search with N workers (exhaustive
//!                          strategy only; N<=1 keeps the sequential engine).
//!                          Incompatible with `td decide` (rejected: the
//!                          decider is a sequential explicit-state search)
//!   --deterministic        with --threads: report the same witness as the
//!                          sequential engine
//!   --subgoal-cache        memoize isolated blocks and sole-frontier ground
//!                          calls as replayable answer sets (exhaustive
//!                          strategy, tracing off; see docs/CACHING.md).
//!                          Incompatible with `td trace` (rejected).
//!   --cache-capacity=N     subgoal-cache entry bound (default 65536;
//!                          requires --subgoal-cache)
//!   --materialize          maintain the program's Datalog-evaluable derived
//!                          predicates as materialized views updated
//!                          incrementally from committed deltas; ground
//!                          sole-frontier calls on them become indexed
//!                          probes (see docs/INCREMENTAL.md). Incompatible
//!                          with `td trace` (rejected), and rejected when
//!                          the program has no materializable predicate
//!   --report=PATH          write a JSON run report (outcome, wall time,
//!                          metrics registry snapshot, requested+effective
//!                          config, final-state digest) — run/trace/decide
//!   --log-json=PATH        write the structured event stream as JSON Lines
//!                          (span enter/exit, cache probes, worker steals) —
//!                          run/trace/decide
//!   --db=DIR               back the run with a durable store: open (crash-
//!                          recovering) or create DIR, run goals from the
//!                          recovered state, commit each successful goal
//!                          through the WAL with fsync — run/repl; `decide`
//!                          reads the store without committing. Incompatible
//!                          with `td trace` (rejected: the committed-path
//!                          trace replays from a fixed initial state).
//!
//! See docs/OBSERVABILITY.md for the report schema and event vocabulary,
//! docs/PERSISTENCE.md for the on-disk store format and recovery rules.
//! ```

use std::io::{BufRead, Write};
use std::path::Path;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use td_core::{FragmentReport, Goal, Program};
use td_db::{Database, Delta, DeltaOp};
use td_engine::obs::{
    stats_counters, CacheReport, GoalReport, MatReport, RunReport, ServeReport, StoreReport,
};
use td_engine::{
    decider, load_init, Engine, EngineConfig, Materializer, Observer, Outcome, SearchBackend,
    Strategy, SubgoalCache,
};
use td_parser::{parse_goal, parse_program};
use td_store::{Store, WalTail};

/// Everything the command line resolved to: the engine configuration plus
/// the CLI-level output options.
#[derive(Debug)]
struct CliOptions {
    config: EngineConfig,
    /// `--log-json=PATH`: structured event stream destination.
    log_json: Option<String>,
    /// `--report=PATH`: JSON run report destination.
    report: Option<String>,
    /// `--db=DIR`: durable store backing the run.
    db: Option<String>,
    /// `--socket=PATH`: Unix socket for `serve`/`client`.
    socket: Option<String>,
    /// `--occ=read-set|whole-db`: commit-validation rule for `serve`.
    occ: Option<td_store::Validation>,
    /// Names of the options present on the command line, for per-command
    /// incompatibility checks (`serve`/`client` reject most engine flags
    /// loudly instead of ignoring them — the PR-3/PR-5 fail-fast rule).
    seen: Vec<&'static str>,
}

fn parse_options(args: &[String]) -> Result<(CliOptions, Vec<&String>), String> {
    let mut config = EngineConfig::default();
    let mut seed: Option<u64> = None;
    let mut strategy: Option<&str> = None;
    let mut threads: usize = 1;
    let mut deterministic = false;
    let mut cache_capacity: Option<usize> = None;
    let mut log_json = None;
    let mut report = None;
    let mut db = None;
    let mut socket = None;
    let mut occ = None;
    let mut seen = Vec::new();
    let mut rest = Vec::new();
    for a in args {
        if let Some(v) = a.strip_prefix("--strategy=") {
            seen.push("--strategy");
            strategy = Some(match v {
                "exhaustive" | "random" | "round-robin" | "leftmost" => v,
                other => return Err(format!("unknown strategy `{other}`")),
            });
        } else if let Some(v) = a.strip_prefix("--seed=") {
            seen.push("--seed");
            seed = Some(v.parse().map_err(|_| format!("bad seed `{v}`"))?);
        } else if let Some(v) = a.strip_prefix("--max-steps=") {
            seen.push("--max-steps");
            config.max_steps = v.parse().map_err(|_| format!("bad step budget `{v}`"))?;
        } else if let Some(v) = a.strip_prefix("--threads=") {
            seen.push("--threads");
            threads = v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
        } else if a == "--deterministic" {
            seen.push("--deterministic");
            deterministic = true;
        } else if a == "--subgoal-cache" {
            seen.push("--subgoal-cache");
            config.subgoal_cache = true;
        } else if a == "--materialize" {
            seen.push("--materialize");
            config.materialize = true;
        } else if let Some(v) = a.strip_prefix("--cache-capacity=") {
            seen.push("--cache-capacity");
            cache_capacity = Some(
                v.parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("bad cache capacity `{v}`"))?,
            );
        } else if let Some(v) = a.strip_prefix("--log-json=") {
            seen.push("--log-json");
            log_json = Some(v.to_owned());
        } else if let Some(v) = a.strip_prefix("--report=") {
            seen.push("--report");
            report = Some(v.to_owned());
        } else if let Some(v) = a.strip_prefix("--db=") {
            seen.push("--db");
            db = Some(validate_db_path(v)?);
        } else if let Some(v) = a.strip_prefix("--socket=") {
            seen.push("--socket");
            if v.is_empty() {
                return Err("--socket needs a path".into());
            }
            socket = Some(v.to_owned());
        } else if let Some(v) = a.strip_prefix("--occ=") {
            seen.push("--occ");
            occ = Some(v.parse::<td_store::Validation>()?);
        } else if a.starts_with("--") {
            return Err(format!("unknown option `{a}`"));
        } else {
            rest.push(a);
        }
    }
    config.strategy = match strategy {
        None | Some("exhaustive") => Strategy::Exhaustive,
        Some("random") => Strategy::ExhaustiveRandom(seed.unwrap_or(0)),
        Some("round-robin") => Strategy::RoundRobin,
        Some("leftmost") => Strategy::Leftmost,
        Some(_) => unreachable!("validated above"),
    };
    // A seed without the random strategy used to be read and then silently
    // ignored; reject it so the run the user asked for is the run they get.
    if seed.is_some() && !matches!(config.strategy, Strategy::ExhaustiveRandom(_)) {
        return Err("--seed only applies with --strategy=random".into());
    }
    // Same for a capacity bound without the cache it would bound.
    match cache_capacity {
        Some(n) if config.subgoal_cache => config.cache_capacity = n,
        Some(_) => return Err("--cache-capacity requires --subgoal-cache".into()),
        None => {}
    }
    if threads > 1 {
        if config.strategy != Strategy::Exhaustive {
            return Err("--threads requires --strategy=exhaustive".into());
        }
        config.backend = SearchBackend::Parallel {
            threads,
            deterministic,
        };
    } else if deterministic {
        return Err("--deterministic only applies with --threads=N (N > 1)".into());
    }
    Ok((
        CliOptions {
            config,
            log_json,
            report,
            db,
            socket,
            occ,
            seen,
        },
        rest,
    ))
}

/// Fail-fast validation of a `--db=DIR` / `td db … DIR` store path: a typo'd
/// path should exit 2 before any search runs, not strand a WAL nowhere. The
/// directory itself may not exist yet (first run creates it), but its parent
/// must, and an existing path must be a directory.
fn validate_db_path(v: &str) -> Result<String, String> {
    if v.is_empty() {
        return Err("--db needs a directory path".into());
    }
    let p = Path::new(v);
    if p.exists() {
        if !p.is_dir() {
            return Err(format!("store path `{v}` exists and is not a directory"));
        }
    } else {
        let parent = match p.parent() {
            Some(q) if !q.as_os_str().is_empty() => q,
            _ => Path::new("."),
        };
        if !parent.is_dir() {
            return Err(format!(
                "store path `{v}`: parent directory `{}` does not exist",
                parent.display()
            ));
        }
    }
    Ok(v.to_owned())
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, positional) = match parse_options(&args) {
        Ok(x) => x,
        Err(msg) => {
            eprintln!("td: {msg}");
            return ExitCode::from(2);
        }
    };
    if positional.first().map(|s| s.as_str()) == Some("db") {
        return db_command(&positional[1..]);
    }
    if positional.first().map(|s| s.as_str()) == Some("client") {
        return client_command(&positional[1..], &opts);
    }
    // Events only exist inside a running server: there is no store-side
    // event queue a standalone command could append to. Point at the one
    // verb that works instead of inventing a second, subtly different path.
    if positional.first().map(|s| s.as_str()) == Some("event") {
        eprintln!(
            "td: `event` is a server request, not a top-level command; \
             ingest with `td client event '<atom>' --socket=PATH` against a \
             running `td serve` (see docs/EVENTS.md)"
        );
        return ExitCode::from(2);
    }
    let (cmd, file) = match positional.as_slice() {
        [cmd, file] => (cmd.as_str(), file.as_str()),
        _ => {
            eprintln!(
                "usage: td [--strategy=S] [--seed=N] [--max-steps=N] [--threads=N] \
       [--deterministic] [--subgoal-cache] [--cache-capacity=N] \
       [--report=PATH] [--log-json=PATH] [--db=DIR] \
       <run|trace|fragment|decide|repl> <file.td>\n\
       td serve <file.td> --db=DIR [--socket=PATH] [--occ=read-set|whole-db] [--report=PATH]\n\
       td client <request...> --socket=PATH\n\
       td db <init|snapshot|verify|log> <DIR> [file.td]"
            );
            return ExitCode::from(2);
        }
    };
    // `serve` admits concurrent clients over one store; most per-run flags
    // are meaningless or misleading there, and the PR-3/PR-5 precedent is
    // to refuse loudly rather than silently ignore. The full matrix:
    //   --db        required (the server exists to share the durable store)
    //   --socket    optional (defaults to <db-dir>/td.sock)
    //   --occ       optional (read-set default; whole-db = the fallback
    //               validation rule, for differential runs)
    //   --report    allowed (written at shutdown, `serve` section filled)
    //   --strategy=random / --seed   rejected: retries under OCC re-run a
    //               goal at unpredictable times; a seed cannot make the
    //               server reproducible, so accepting one would lie
    //   --log-json  rejected: the event stream is a per-run artifact with
    //               one timeline; concurrent connections interleave
    //   --materialize  rejected: view maintenance assumes the run's own
    //               commits are the only writers; other connections'
    //               deltas would silently go unmaintained
    // (everything engine-local — --max-steps, --subgoal-cache,
    // --cache-capacity, --threads, --deterministic — applies per
    // connection and stays accepted.)
    if cmd == "serve" {
        if opts.db.is_none() {
            eprintln!("td: serve requires --db=DIR (the store the server shares)");
            return ExitCode::from(2);
        }
        if matches!(opts.config.strategy, Strategy::ExhaustiveRandom(_)) {
            eprintln!(
                "td: --strategy=random cannot be combined with `serve`: OCC \
                 retries re-run goals at unpredictable times, so a seed \
                 cannot make the server reproducible; drop the flag"
            );
            return ExitCode::from(2);
        }
        if opts.log_json.is_some() {
            eprintln!(
                "td: --log-json cannot be combined with `serve`: the event \
                 stream is a single-run timeline and concurrent connections \
                 interleave; use --report for aggregate counters"
            );
            return ExitCode::from(2);
        }
        if opts.config.materialize {
            eprintln!(
                "td: --materialize cannot be combined with `serve`: view \
                 maintenance assumes one writer, but a server's connections \
                 commit concurrently (see docs/INCREMENTAL.md); drop the flag"
            );
            return ExitCode::from(2);
        }
    } else if opts.socket.is_some() {
        eprintln!("td: --socket only applies to `serve` and `client`");
        return ExitCode::from(2);
    }
    // The validation rule is a property of the *store's* commit path; only
    // the server owns one. Everywhere else the flag would be a silent no-op.
    if opts.occ.is_some() && cmd != "serve" {
        eprintln!(
            "td: --occ only applies to `serve` (it selects the server's \
             commit-validation rule; see docs/SERVE.md)"
        );
        return ExitCode::from(2);
    }
    // Tracing and the subgoal cache are semantically incompatible (a
    // replayed answer set is one macro-step with no elementary events to
    // record). The engine used to gate the cache off silently; refuse the
    // combination instead of quietly changing what runs.
    if cmd == "trace" && opts.config.subgoal_cache {
        eprintln!(
            "td: --subgoal-cache cannot be combined with `trace`: tracing \
             disables the cache (see docs/CACHING.md); drop one of the two"
        );
        return ExitCode::from(2);
    }
    // Same incompatibility for materialized probes: a probe is one
    // macro-step with no elementary events for the trace to record, so
    // tracing turns the flag into a silent no-op. Refuse the combination.
    if cmd == "trace" && opts.config.materialize {
        eprintln!(
            "td: --materialize cannot be combined with `trace`: tracing \
             disables materialized probes (see docs/INCREMENTAL.md); drop \
             one of the two"
        );
        return ExitCode::from(2);
    }
    // `--threads` selects the parallel *interpreter* backend, which the
    // memoizing decider never consults — it is a sequential explicit-state
    // search. The flag used to be silently ignored for `td decide`; refuse
    // the combination instead of quietly running something else.
    if cmd == "decide" && matches!(opts.config.backend, SearchBackend::Parallel { .. }) {
        eprintln!(
            "td: --threads does not apply to `decide`: the decider is a \
             sequential explicit-state search (see docs/PARALLELISM.md); \
             drop --threads or use `td run`"
        );
        return ExitCode::from(2);
    }
    if (opts.report.is_some() || opts.log_json.is_some())
        && !matches!(cmd, "run" | "trace" | "decide" | "serve")
    {
        eprintln!("td: --report/--log-json only apply to `run`, `trace`, `decide` and `serve`");
        return ExitCode::from(2);
    }
    // The committed-path trace replays a goal's elementary operations from a
    // fixed initial state; a store that was recovered mid-history has no
    // such state to anchor the rendering. Refuse rather than mislead.
    if cmd == "trace" && opts.db.is_some() {
        eprintln!(
            "td: --db cannot be combined with `trace`: trace replays from the \
             program's init state, not a recovered store; use `td run --db` \
             or `td db log`"
        );
        return ExitCode::from(2);
    }
    if opts.db.is_some() && !matches!(cmd, "run" | "decide" | "repl" | "serve") {
        eprintln!("td: --db only applies to `run`, `decide`, `repl` and `serve`");
        return ExitCode::from(2);
    }
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("td: cannot read `{file}`: {e}");
            return ExitCode::from(2);
        }
    };
    let parsed = match parse_program(&src) {
        Ok(p) => p,
        Err(errs) => {
            eprintln!("{}", errs.render(&src));
            return ExitCode::FAILURE;
        }
    };
    // Triggers only fire on ingested events, and events only arrive through
    // a running server. Under run/trace/decide/repl the `on … do …` rules
    // would parse and then never do anything — a silent no-op that reads as
    // a working program. Refuse instead. (`fragment` stays accepted: it
    // classifies the rule set, it does not execute it.)
    if !parsed.triggers.is_empty() && !matches!(cmd, "serve" | "fragment") {
        eprintln!(
            "td: `{file}` declares triggers (`on … do …`), which only fire \
             on events ingested into a running server; use `td serve` (see \
             docs/EVENTS.md) or remove the trigger rules"
        );
        return ExitCode::from(2);
    }
    // Maintained views assume the run's own commits are the only writers;
    // event appends happen outside goal execution, so a materialized view
    // over a program with event relations would silently go stale.
    if opts.config.materialize && parsed.program.has_events() {
        eprintln!(
            "td: --materialize cannot be combined with event relations: \
             event appends bypass view maintenance (see docs/EVENTS.md); \
             drop the flag or the `event` declarations"
        );
        return ExitCode::from(2);
    }
    // `--materialize` on a program with nothing to materialize used to be
    // conceivable as a silent no-op; reject it instead, naming the reason,
    // so the run the user asked for is the run they get.
    if opts.config.materialize {
        if let Err(e) = Materializer::compile(&parsed.program) {
            eprintln!(
                "td: --materialize does not apply to `{file}`: {e} \
                 (see docs/INCREMENTAL.md)"
            );
            return ExitCode::from(2);
        }
    }
    // `serve` opens the store itself (the server holds the advisory lock
    // for its whole lifetime), so it dispatches before the generic open.
    if cmd == "serve" {
        return serve_command(parsed, &opts, file);
    }
    // With `--db` the store is the source of truth: a fresh store is seeded
    // with the program's schema and init facts (committed as the genesis WAL
    // record); a recovered store keeps its accumulated state and the
    // program's init facts are *not* re-applied.
    let mut store = match &opts.db {
        Some(dir) => match open_or_init_store(Path::new(dir), &parsed) {
            Ok(s) => {
                let r = s.recovery();
                println!(
                    "store: {} ({} records replayed, {} tuples{})",
                    r.outcome.as_str(),
                    r.replayed,
                    s.db().total_tuples(),
                    if r.torn_bytes > 0 {
                        format!(", {} torn bytes cut", r.torn_bytes)
                    } else {
                        String::new()
                    }
                );
                Some(s)
            }
            Err(e) => {
                eprintln!("td: opening store `{dir}`: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };
    let db = match &store {
        Some(s) => s.db().clone(),
        None => {
            let db = Database::with_schema_of(&parsed.program);
            match load_init(&db, &parsed.init) {
                Ok(db) => db,
                Err(e) => {
                    eprintln!("td: loading init facts: {e}");
                    return ExitCode::FAILURE;
                }
            }
        }
    };

    match cmd {
        "run" => run(&parsed, db, &opts, file, store.as_mut()),
        "trace" => trace(&parsed, db, &opts, file),
        "fragment" => fragment(&parsed, &opts.config),
        "decide" => decide(&parsed, db, &opts, file, store.as_ref()),
        "repl" => repl(&parsed, db, opts.config, store.as_mut()),
        other => {
            eprintln!("td: unknown command `{other}`");
            ExitCode::from(2)
        }
    }
}

/// `td serve <file.td> --db=DIR [--socket=PATH] [--report=PATH]` — run the
/// multi-client transaction server until a client sends `stop`. The file's
/// rules define the available transactions; state lives in the store (a
/// fresh store is seeded with the file's `init` facts, like `td run --db`).
fn serve_command(parsed: td_parser::ParsedProgram, opts: &CliOptions, file: &str) -> ExitCode {
    let dir = opts.db.as_deref().expect("checked by the caller");
    let socket = opts
        .socket
        .clone()
        .unwrap_or_else(|| format!("{}/td.sock", dir.trim_end_matches('/')));
    let started = Instant::now();
    let tx = td_store::TxOptions {
        validation: opts.occ.unwrap_or_default(),
        ..td_store::TxOptions::default()
    };
    let server = match td_serve::Server::open(parsed, opts.config.clone(), Path::new(dir), tx) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("td: opening store `{dir}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!(
        "serve: store `{dir}`, socket `{socket}` \
         (stop with `td client stop --socket={socket}`)"
    );
    let summary = match server.serve(Path::new(&socket)) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("td: serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let stats = summary.stats;
    println!(
        "serve: {} connections, {} requests; {} commits in {} groups \
         (mean group {:.2}, max {}), {} conflicts, {} read-only, {} aborts \
         [occ={}]",
        summary.counters.connections,
        summary.counters.requests,
        stats.commits,
        stats.groups,
        stats.mean_group(),
        stats.max_group,
        stats.conflicts,
        stats.read_only,
        stats.aborts,
        summary.occ,
    );
    if !summary.conflict_relations.is_empty() || summary.counters.retries_exhausted > 0 {
        let attribution = summary
            .conflict_relations
            .iter()
            .map(|(p, n)| format!("{p}:{n}"))
            .collect::<Vec<_>>()
            .join(", ");
        println!(
            "serve: conflicts by relation: {} ({} transactions exhausted \
             their retry budget)",
            if attribution.is_empty() {
                "-".to_owned()
            } else {
                attribution
            },
            summary.counters.retries_exhausted,
        );
    }
    let ev = &summary.events;
    if ev.ingested > 0 || ev.matched > 0 {
        println!(
            "serve: {} events ingested, {} matches, {} triggers fired \
             ({} conflicts retried, latency p50 {}us p99 {}us)",
            ev.ingested, ev.matched, ev.fired, ev.conflicted, ev.p50_us, ev.p99_us,
        );
    }
    let mut ok = true;
    if let Some(path) = &opts.report {
        let registry = td_engine::MetricsRegistry::new();
        for (name, v) in [
            ("serve.connections", summary.counters.connections),
            ("serve.requests", summary.counters.requests),
            ("serve.errors", summary.counters.errors),
            ("serve.commits", stats.commits),
            ("serve.read_only", stats.read_only),
            ("serve.aborts", stats.aborts),
            ("serve.conflicts", stats.conflicts),
            ("serve.conflict_failures", stats.conflict_failures),
            (
                "serve.retries_exhausted",
                summary.counters.retries_exhausted,
            ),
            ("serve.groups", stats.groups),
            ("serve.grouped_records", stats.grouped_records),
            ("serve.interned_symbols", summary.interned_symbols),
            ("serve.interned_bytes", summary.interned_bytes),
            ("events.ingested", ev.ingested),
            ("triggers.matched", ev.matched),
            ("triggers.fired", ev.fired),
            ("triggers.conflicted", ev.conflicted),
        ] {
            registry.add_counter(name, v);
        }
        let report = RunReport {
            command: "serve".to_owned(),
            file: file.to_owned(),
            requested: opts.config.clone(),
            effective: opts.config.effective(),
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            goals: Vec::new(),
            final_digest: Some(summary.store.db().digest()),
            final_tuples: Some(summary.store.db().total_tuples() as u64),
            cache: None,
            mat: None,
            store: Some(store_report(&summary.store)),
            serve: Some(ServeReport {
                socket: socket.clone(),
                connections: summary.counters.connections,
                requests: summary.counters.requests,
                errors: summary.counters.errors,
                commits: stats.commits,
                read_only: stats.read_only,
                aborts: stats.aborts,
                conflicts: stats.conflicts,
                occ: summary.occ.to_string(),
                retries_exhausted: summary.counters.retries_exhausted,
                conflict_relations: summary.conflict_relations.clone(),
                groups: stats.groups,
                grouped_records: stats.grouped_records,
                max_group: stats.max_group,
                interned_symbols: summary.interned_symbols,
                interned_bytes: summary.interned_bytes,
                events_ingested: ev.ingested,
                triggers_matched: ev.matched,
                triggers_fired: ev.fired,
                triggers_conflicted: ev.conflicted,
                trigger_latency: ev.latency_buckets.clone(),
                trigger_p50_us: ev.p50_us,
                trigger_p99_us: ev.p99_us,
            }),
            metrics: registry.snapshot(),
        };
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("td: cannot write report `{path}`: {e}");
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// `td client <request...> --socket=PATH` — send one protocol request to a
/// running server and print its response line. Exits 0 on an `ok` reply, 1
/// on `no`/`err` (like a failing goal under `td run`).
fn client_command(args: &[&String], opts: &CliOptions) -> ExitCode {
    // Requests execute under the *server's* engine configuration; every
    // per-run flag here would be silently ignored, so refuse them all.
    const INCOMPATIBLE: &[&str] = &[
        "--strategy",
        "--seed",
        "--max-steps",
        "--threads",
        "--deterministic",
        "--subgoal-cache",
        "--cache-capacity",
        "--materialize",
        "--report",
        "--log-json",
        "--db",
        "--occ",
    ];
    if let Some(flag) = opts.seen.iter().find(|f| INCOMPATIBLE.contains(f)) {
        eprintln!(
            "td: {flag} does not apply to `client`: requests run under the \
             server's configuration (see docs/SERVE.md); drop the flag"
        );
        return ExitCode::from(2);
    }
    let Some(socket) = &opts.socket else {
        eprintln!("td: client requires --socket=PATH (the server's socket)");
        return ExitCode::from(2);
    };
    if args.is_empty() {
        eprintln!("usage: td client <run <goal> | stats | ping | stop> --socket=PATH");
        return ExitCode::from(2);
    }
    let request = args
        .iter()
        .map(|s| s.as_str())
        .collect::<Vec<_>>()
        .join(" ");
    let mut client = match td_serve::Client::connect(Path::new(socket)) {
        Ok(c) => c,
        Err(e) => {
            eprintln!("td: connecting `{socket}`: {e}");
            return ExitCode::FAILURE;
        }
    };
    match client.request(&request) {
        Ok(reply) => {
            println!("{reply}");
            if reply.starts_with("ok") {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("td: request failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Open `dir` with crash recovery, or initialize it: schema snapshot, then
/// the program's init facts committed as the genesis WAL record (so even a
/// crash before the first goal leaves a replayable, digest-verified state).
fn open_or_init_store(dir: &Path, parsed: &td_parser::ParsedProgram) -> td_store::Result<Store> {
    if Store::is_initialized(dir) {
        return Store::open(dir);
    }
    let schema = Database::with_schema_of(&parsed.program);
    let mut store = Store::init(dir, &schema)?;
    let genesis = init_delta(&schema, parsed)?;
    if !genesis.is_empty() {
        store.commit(&genesis)?;
    }
    Ok(store)
}

/// The program's init facts as one insertion delta against `schema`.
fn init_delta(schema: &Database, parsed: &td_parser::ParsedProgram) -> td_store::Result<Delta> {
    let with_init =
        load_init(schema, &parsed.init).map_err(|e| td_store::StoreError::Db(e.to_string()))?;
    let mut delta = Delta::new();
    for p in with_init.preds() {
        if let Some(rel) = with_init.relation(p) {
            for t in rel.to_sorted_vec() {
                delta.push(DeltaOp::Ins(p, t));
            }
        }
    }
    Ok(delta)
}

/// `td db <init|snapshot|verify|log> <DIR> [file.td]` — store maintenance
/// commands. Usage and validation errors exit 2, integrity failures exit 1.
fn db_command(args: &[&String]) -> ExitCode {
    let usage = || {
        eprintln!("usage: td db <init|snapshot|verify|log> <DIR> [file.td]");
        ExitCode::from(2)
    };
    let (&sub, &dir, rest) = match args {
        [sub, dir, rest @ ..] => (sub, dir, rest),
        _ => return usage(),
    };
    let dir_path = match validate_db_path(dir) {
        Ok(p) => p,
        Err(e) => {
            eprintln!("td: {e}");
            return ExitCode::from(2);
        }
    };
    let dir_path = Path::new(&dir_path);
    match (sub.as_str(), rest) {
        ("init", rest) if rest.len() <= 1 => {
            if Store::is_initialized(dir_path) {
                eprintln!("td: `{dir}` already holds a store");
                return ExitCode::from(2);
            }
            let result = match rest.first() {
                Some(file) => {
                    let src = match std::fs::read_to_string(file.as_str()) {
                        Ok(s) => s,
                        Err(e) => {
                            eprintln!("td: cannot read `{file}`: {e}");
                            return ExitCode::from(2);
                        }
                    };
                    match parse_program(&src) {
                        Ok(parsed) => open_or_init_store(dir_path, &parsed),
                        Err(errs) => {
                            eprintln!("{}", errs.render(&src));
                            return ExitCode::FAILURE;
                        }
                    }
                }
                None => Store::init(dir_path, &Database::new()),
            };
            match result {
                Ok(store) => {
                    println!(
                        "initialized `{dir}`: {} tuples, digest 0x{:032x}",
                        store.db().total_tuples(),
                        store.db().digest()
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("td: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        ("snapshot", []) => {
            if !Store::is_initialized(dir_path) {
                eprintln!("td: `{dir}` is not an initialized store (run `td db init`)");
                return ExitCode::from(2);
            }
            match Store::open(dir_path) {
                Ok(mut store) => {
                    let folded = store.recovery().replayed;
                    match store.rotate_snapshot() {
                        Ok(()) => {
                            println!(
                                "snapshot rotated: {folded} wal records folded in, \
                                 {} tuples, digest 0x{:032x}",
                                store.db().total_tuples(),
                                store.db().digest()
                            );
                            ExitCode::SUCCESS
                        }
                        Err(e) => {
                            eprintln!("td: rotating `{dir}`: {e}");
                            ExitCode::FAILURE
                        }
                    }
                }
                Err(e) => {
                    eprintln!("td: opening store `{dir}`: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        ("verify", []) => {
            if !Store::is_initialized(dir_path) {
                eprintln!("td: `{dir}` is not an initialized store (run `td db init`)");
                return ExitCode::from(2);
            }
            match Store::verify(dir_path) {
                Ok(r) => {
                    println!(
                        "ok: snapshot {} tuples (digest 0x{:032x}), {} wal records, \
                         final {} tuples (digest 0x{:032x})",
                        r.snapshot_tuples,
                        r.snapshot_digest,
                        r.wal_records,
                        r.final_tuples,
                        r.final_digest
                    );
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("td: verify `{dir}`: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        ("log", []) => {
            if !Store::is_initialized(dir_path) {
                eprintln!("td: `{dir}` is not an initialized store (run `td db init`)");
                return ExitCode::from(2);
            }
            match Store::log(dir_path) {
                Ok((records, tail)) => {
                    for rec in &records {
                        println!(
                            "#{:<6} {:>5} ops  post-digest 0x{:032x}",
                            rec.seq,
                            rec.delta.len(),
                            rec.post_digest
                        );
                    }
                    match tail {
                        WalTail::Clean => println!("{} records, tail clean", records.len()),
                        WalTail::Torn { at, dropped } => println!(
                            "{} records, torn tail at byte {at} ({dropped} bytes \
                             pending repair on next open)",
                            records.len()
                        ),
                    }
                    ExitCode::SUCCESS
                }
                Err(e) => {
                    eprintln!("td: reading log `{dir}`: {e}");
                    ExitCode::FAILURE
                }
            }
        }
        _ => usage(),
    }
}

/// The observability sink the output options call for: an event log only
/// when `--log-json` wants one, nothing at all when neither flag is given.
fn observer_for(opts: &CliOptions) -> Option<Arc<Observer>> {
    if opts.log_json.is_some() {
        Some(Arc::new(Observer::with_event_log()))
    } else if opts.report.is_some() {
        Some(Arc::new(Observer::new()))
    } else {
        None
    }
}

/// Write the `--report` and `--log-json` artifacts (no-op for flags not
/// given). Returns false if a file could not be written.
#[allow(clippy::too_many_arguments)]
fn write_outputs(
    opts: &CliOptions,
    obs: Option<&Arc<Observer>>,
    command: &str,
    file: &str,
    requested: &EngineConfig,
    started: Instant,
    goals: Vec<GoalReport>,
    final_db: Option<&Database>,
    cache: Option<&SubgoalCache>,
    mat: Option<&Materializer>,
    store: Option<StoreReport>,
) -> bool {
    let mut ok = true;
    if let (Some(path), Some(obs)) = (&opts.log_json, obs) {
        let lines = obs
            .event_log()
            .map(|l| l.to_json_lines())
            .unwrap_or_default();
        if let Err(e) = std::fs::write(path, lines) {
            eprintln!("td: cannot write event log `{path}`: {e}");
            ok = false;
        }
    }
    if let Some(path) = &opts.report {
        let report = RunReport {
            command: command.to_owned(),
            file: file.to_owned(),
            requested: requested.clone(),
            effective: requested.effective(),
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            goals,
            final_digest: final_db.map(|d| d.digest()),
            final_tuples: final_db.map(|d| d.total_tuples() as u64),
            cache: cache.map(|c| CacheReport {
                hits: c.hits(),
                misses: c.misses(),
                unsuitable: c.unsuitable(),
                evictions: c.evictions(),
                entries: c.len() as u64,
            }),
            mat: mat.map(|m| MatReport {
                probes: m.probes(),
                state_hits: m.state_hits(),
                rebuilds: m.rebuilds(),
                maintained_ops: m.maintained_ops(),
                delta_tuples: m.delta_tuples(),
                maintain_us: m.maintain_ns() / 1000,
                states: m.states() as u64,
            }),
            store,
            serve: None,
            metrics: obs
                .map(|o| o.registry.snapshot())
                .unwrap_or_else(|| td_engine::MetricsRegistry::new().snapshot()),
        };
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("td: cannot write report `{path}`: {e}");
            ok = false;
        }
    }
    ok
}

/// The `"store"` section of a run report, read off an open store handle.
fn store_report(store: &Store) -> StoreReport {
    StoreReport {
        path: store.dir().display().to_string(),
        recovery: store.recovery().outcome.as_str().to_owned(),
        replayed: store.recovery().replayed,
        torn_bytes: store.recovery().torn_bytes,
        committed: store.committed_this_session(),
        snapshot_age: store.wal_records(),
    }
}

fn trace(
    parsed: &td_parser::ParsedProgram,
    mut db: Database,
    opts: &CliOptions,
    file: &str,
) -> ExitCode {
    if parsed.goals.is_empty() {
        eprintln!("td: no ?- goals in file");
        return ExitCode::FAILURE;
    }
    let started = Instant::now();
    let requested = opts.config.clone().with_trace();
    let obs = observer_for(opts);
    let mut engine = Engine::with_config(parsed.program.clone(), requested.clone());
    if let Some(o) = &obs {
        engine = engine.with_observer(o.clone());
    }
    let mut ok = true;
    let mut reports = Vec::new();
    for g in &parsed.goals {
        let rendered = td_core::rule::render_goal_with_names(&g.goal, &g.var_names);
        println!("?- {rendered}");
        let mut report = GoalReport {
            goal: rendered,
            ok: false,
            error: None,
            counters: Vec::new(),
        };
        match engine.solve(&g.goal, &db) {
            Ok(Outcome::Success(sol)) => {
                print!("{}", sol.trace);
                println!("  yes  ({})", sol.stats);
                db = sol.db.clone();
                report.ok = true;
                report.counters = stats_counters(&sol.stats);
            }
            Ok(Outcome::Failure { stats }) => {
                println!("  no   ({stats})");
                report.counters = stats_counters(&stats);
                ok = false;
            }
            Err(e) => {
                println!("  error: {e}");
                report.error = Some(e.to_string());
                ok = false;
            }
        }
        reports.push(report);
    }
    ok &= write_outputs(
        opts,
        obs.as_ref(),
        "trace",
        file,
        &requested,
        started,
        reports,
        Some(&db),
        None,
        None,
        None,
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run(
    parsed: &td_parser::ParsedProgram,
    mut db: Database,
    opts: &CliOptions,
    file: &str,
    mut store: Option<&mut Store>,
) -> ExitCode {
    if parsed.goals.is_empty() {
        eprintln!("td: no ?- goals in file");
        return ExitCode::FAILURE;
    }
    let started = Instant::now();
    let obs = observer_for(opts);
    let mut engine = Engine::with_config(parsed.program.clone(), opts.config.clone());
    if let Some(o) = &obs {
        engine = engine.with_observer(o.clone());
    }
    let mut ok = true;
    let mut reports = Vec::new();
    for g in &parsed.goals {
        let rendered = td_core::rule::render_goal_with_names(&g.goal, &g.var_names);
        println!("?- {rendered}");
        let mut report = GoalReport {
            goal: rendered,
            ok: false,
            error: None,
            counters: Vec::new(),
        };
        match engine.solve(&g.goal, &db) {
            Ok(Outcome::Success(sol)) => {
                for (i, name) in g.var_names.iter().enumerate() {
                    println!("  {name} = {}", sol.answer[i]);
                }
                println!("  yes  ({})", sol.stats);
                println!("  db = {}", sol.db);
                db = sol.db.clone(); // goals run in sequence, like the prototype
                report.ok = true;
                report.counters = stats_counters(&sol.stats);
                report
                    .counters
                    .push(("committed_updates".to_owned(), sol.delta.len() as u64));
                // Durable commit: one fsync'd WAL record per successful
                // goal with a state change (read-only goals leave no
                // record — there is nothing to recover).
                if let Some(s) = store.as_deref_mut() {
                    if !sol.delta.is_empty() {
                        match s.commit(&sol.delta) {
                            Ok(seq) => {
                                debug_assert_eq!(s.db().digest(), sol.db.digest());
                                println!("  committed wal record #{seq}");
                            }
                            Err(e) => {
                                // The in-memory run and the store have
                                // diverged; committing further goals would
                                // persist a state recovery can't verify.
                                eprintln!("td: wal commit failed: {e}");
                                report.error = Some(format!("wal commit failed: {e}"));
                                ok = false;
                                reports.push(report);
                                break;
                            }
                        }
                    }
                }
            }
            Ok(Outcome::Failure { stats }) => {
                println!("  no   ({stats})");
                report.counters = stats_counters(&stats);
                ok = false;
            }
            Err(e) => {
                println!("  error: {e}");
                report.error = Some(e.to_string());
                ok = false;
            }
        }
        reports.push(report);
    }
    let cache = engine.subgoal_cache().cloned();
    let mat = engine.materializer().cloned();
    if let Some(m) = &mat {
        println!(
            "materializer: probes={} state_hits={} rebuilds={} maintained_ops={} \
             delta_tuples={} states={}",
            m.probes(),
            m.state_hits(),
            m.rebuilds(),
            m.maintained_ops(),
            m.delta_tuples(),
            m.states()
        );
    }
    if let Some(s) = store.as_deref() {
        println!(
            "store: {} transactions committed ({} wal records since snapshot)",
            s.committed_this_session(),
            s.wal_records()
        );
    }
    ok &= write_outputs(
        opts,
        obs.as_ref(),
        "run",
        file,
        &opts.config,
        started,
        reports,
        Some(&db),
        cache.as_deref(),
        mat.as_deref(),
        store.as_deref().map(store_report),
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn fragment(parsed: &td_parser::ParsedProgram, config: &EngineConfig) -> ExitCode {
    let goal = parsed
        .goals
        .first()
        .map(|g| g.goal.clone())
        .unwrap_or(Goal::True);
    let report = FragmentReport::classify(&parsed.program, &goal);
    println!("{report}");
    match config.backend {
        SearchBackend::Sequential => println!("search backend: sequential"),
        SearchBackend::Parallel {
            threads,
            deterministic,
        } => println!(
            "search backend: parallel ({threads} threads{})",
            if deterministic { ", deterministic" } else { "" }
        ),
    }
    for l in td_core::validate::unsafe_rules(&parsed.program) {
        println!("lint: {l}");
    }
    ExitCode::SUCCESS
}

fn decide(
    parsed: &td_parser::ParsedProgram,
    db: Database,
    opts: &CliOptions,
    file: &str,
    store: Option<&Store>,
) -> ExitCode {
    if parsed.goals.is_empty() {
        eprintln!("td: no ?- goals in file");
        return ExitCode::FAILURE;
    }
    let started = Instant::now();
    let config = &opts.config;
    let obs = observer_for(opts);
    // One cache across all the file's goals: repeated subprotocols warm it.
    let cache = config
        .subgoal_cache
        .then(|| Arc::new(SubgoalCache::new(config.cache_capacity)));
    // Likewise one materializer: its digest-keyed states stay warm across
    // goals (main() already rejected the flag if compilation cannot succeed).
    let mat = config
        .materialize
        .then(|| Materializer::compile(&parsed.program).ok().map(Arc::new))
        .flatten();
    let mut ok = true;
    let mut reports = Vec::new();
    for g in &parsed.goals {
        let rendered = td_core::rule::render_goal_with_names(&g.goal, &g.var_names);
        let mut report = GoalReport {
            goal: rendered,
            ok: false,
            error: None,
            counters: Vec::new(),
        };
        match decider::decide_materialized(
            &parsed.program,
            &g.goal,
            &db,
            decider::DeciderConfig::default(),
            cache.clone(),
            mat.clone(),
            obs.clone(),
        ) {
            Ok(d) => {
                println!(
                    "executable: {}{}  (configurations: {})",
                    d.executable,
                    if d.truncated { " (truncated)" } else { "" },
                    d.configs
                );
                ok &= d.executable;
                report.ok = d.executable;
                report.counters = vec![
                    ("configs".to_owned(), d.configs as u64),
                    ("truncated".to_owned(), u64::from(d.truncated)),
                ];
            }
            Err(e) => {
                println!("error: {e}");
                report.error = Some(e.to_string());
                ok = false;
            }
        }
        reports.push(report);
    }
    if let Some(c) = &cache {
        println!(
            "subgoal cache: hits={} misses={} unsuitable={} evictions={} entries={}",
            c.hits(),
            c.misses(),
            c.unsuitable(),
            c.evictions(),
            c.len()
        );
    }
    ok &= write_outputs(
        opts,
        obs.as_ref(),
        "decide",
        file,
        config,
        started,
        reports,
        None,
        cache.as_deref(),
        mat.as_deref(),
        store.map(store_report),
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn repl(
    parsed: &td_parser::ParsedProgram,
    mut db: Database,
    config: EngineConfig,
    mut store: Option<&mut Store>,
) -> ExitCode {
    let program: Program = parsed.program.clone();
    let engine = Engine::with_config(program.clone(), config);
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    println!("Transaction Datalog repl — enter goals, `:db` to show state, ^D to exit");
    loop {
        print!("td> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => return ExitCode::SUCCESS,
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":db" {
            println!("{db}");
            continue;
        }
        if line == ":quit" || line == ":q" {
            return ExitCode::SUCCESS;
        }
        match parse_goal(line, &program) {
            Err(e) => println!("{}", e.render(line)),
            Ok(g) => match engine.solve(&g.goal, &db) {
                Ok(Outcome::Success(sol)) => {
                    for (i, name) in g.var_names.iter().enumerate() {
                        println!("  {name} = {}", sol.answer[i]);
                    }
                    if let Some(s) = store.as_deref_mut() {
                        if !sol.delta.is_empty() {
                            if let Err(e) = s.commit(&sol.delta) {
                                println!("  error: wal commit failed: {e}");
                                continue;
                            }
                        }
                    }
                    println!("  yes");
                    db = sol.db.clone();
                }
                Ok(Outcome::Failure { .. }) => println!("  no"),
                Err(e) => println!("  error: {e}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_options(&owned).map(|(o, _)| o)
    }

    #[test]
    fn seed_with_random_strategy_is_accepted() {
        let o = parse(&["--strategy=random", "--seed=7"]).unwrap();
        assert_eq!(o.config.strategy, Strategy::ExhaustiveRandom(7));
    }

    #[test]
    fn seed_without_random_strategy_is_rejected() {
        for args in [
            &["--seed=7"][..],
            &["--seed=7", "--strategy=exhaustive"][..],
            &["--seed=7", "--strategy=round-robin"][..],
            &["--seed=7", "--strategy=leftmost"][..],
        ] {
            let err = parse(args).unwrap_err();
            assert!(err.contains("--seed"), "{err}");
            assert!(err.contains("--strategy=random"), "{err}");
        }
    }

    #[test]
    fn cache_capacity_with_cache_is_accepted() {
        let o = parse(&["--subgoal-cache", "--cache-capacity=128"]).unwrap();
        assert!(o.config.subgoal_cache);
        assert_eq!(o.config.cache_capacity, 128);
    }

    #[test]
    fn cache_capacity_without_cache_is_rejected() {
        let err = parse(&["--cache-capacity=128"]).unwrap_err();
        assert!(err.contains("--subgoal-cache"), "{err}");
    }

    #[test]
    fn deterministic_without_threads_is_rejected() {
        let err = parse(&["--deterministic"]).unwrap_err();
        assert!(err.contains("--threads"), "{err}");
    }

    #[test]
    fn threads_with_nonexhaustive_strategy_is_rejected() {
        let err = parse(&["--threads=4", "--strategy=leftmost"]).unwrap_err();
        assert!(err.contains("exhaustive"), "{err}");
    }

    #[test]
    fn bad_values_are_rejected() {
        assert!(parse(&["--strategy=bogus"]).is_err());
        assert!(parse(&["--seed=x", "--strategy=random"]).is_err());
        assert!(parse(&["--max-steps=x"]).is_err());
        assert!(parse(&["--threads=x"]).is_err());
        assert!(parse(&["--subgoal-cache", "--cache-capacity=0"]).is_err());
        assert!(parse(&["--no-such-flag"]).is_err());
    }

    #[test]
    fn materialize_flag_is_captured() {
        let o = parse(&["--materialize"]).unwrap();
        assert!(o.config.materialize);
        assert!(!parse(&[]).unwrap().config.materialize);
    }

    #[test]
    fn materialize_composes_with_cache_and_threads() {
        let o = parse(&["--materialize", "--subgoal-cache", "--threads=2"]).unwrap();
        assert!(o.config.materialize);
        assert!(o.config.subgoal_cache);
        assert!(matches!(o.config.backend, SearchBackend::Parallel { .. }));
    }

    #[test]
    fn report_and_log_json_paths_are_captured() {
        let o = parse(&["--report=r.json", "--log-json=e.jsonl"]).unwrap();
        assert_eq!(o.report.as_deref(), Some("r.json"));
        assert_eq!(o.log_json.as_deref(), Some("e.jsonl"));
    }

    #[test]
    fn db_with_existing_dir_or_creatable_child_is_accepted() {
        let dir = std::env::temp_dir().join("td-cli-db-opts");
        std::fs::create_dir_all(&dir).unwrap();
        let arg = format!("--db={}", dir.display());
        let o = parse(&[&arg]).unwrap();
        assert_eq!(o.db.as_deref(), dir.to_str());
        // A store that does not exist yet, inside an existing parent: the
        // first run is allowed to create it.
        let child = dir.join("new-store");
        let _ = std::fs::remove_dir_all(&child);
        let arg = format!("--db={}", child.display());
        assert!(parse(&[&arg]).is_ok());
    }

    #[test]
    fn db_with_missing_parent_dir_is_rejected() {
        let bogus = std::env::temp_dir()
            .join("td-cli-no-such-parent")
            .join("store");
        let _ = std::fs::remove_dir_all(bogus.parent().unwrap());
        let arg = format!("--db={}", bogus.display());
        let err = parse(&[&arg]).unwrap_err();
        assert!(err.contains("parent directory"), "{err}");
        assert!(err.contains("does not exist"), "{err}");
    }

    #[test]
    fn db_pointing_at_a_file_is_rejected() {
        let f = std::env::temp_dir().join("td-cli-db-not-a-dir.bin");
        std::fs::write(&f, b"x").unwrap();
        let arg = format!("--db={}", f.display());
        let err = parse(&[&arg]).unwrap_err();
        assert!(err.contains("not a directory"), "{err}");
        let _ = std::fs::remove_file(&f);
    }

    #[test]
    fn empty_db_path_is_rejected() {
        assert!(parse(&["--db="]).is_err());
    }

    #[test]
    fn threads_config_builds_parallel_backend() {
        let o = parse(&["--threads=4", "--deterministic"]).unwrap();
        assert_eq!(
            o.config.backend,
            SearchBackend::Parallel {
                threads: 4,
                deterministic: true
            }
        );
    }
}
