//! `td` — command-line runner for Transaction Datalog programs.
//!
//! ```text
//! td run <file.td>        execute each ?- goal in the file, print outcomes
//! td trace <file.td>      like run, but print the committed execution trace
//! td fragment <file.td>   classify the program into the paper's sublanguages
//! td decide <file.td>     decide executability with the memoizing decider
//! td repl <file.td>       load the file, read goals interactively
//!
//! options (before the file):
//!   --strategy=exhaustive|random|round-robin|leftmost
//!   --seed=N               seed for --strategy=random
//!   --max-steps=N          step budget (default 10000000)
//!   --threads=N            parallel search with N workers (exhaustive
//!                          strategy only; N<=1 keeps the sequential engine)
//!   --deterministic        with --threads: report the same witness as the
//!                          sequential engine
//!   --subgoal-cache        memoize isolated blocks and sole-frontier ground
//!                          calls as replayable answer sets (exhaustive
//!                          strategy, tracing off; see docs/CACHING.md)
//!   --cache-capacity=N     subgoal-cache entry bound (default 65536)
//! ```

use std::io::{BufRead, Write};
use std::process::ExitCode;
use td_core::{FragmentReport, Goal, Program};
use td_db::Database;
use td_engine::{decider, load_init, Engine, EngineConfig, Outcome, SearchBackend, Strategy};
use td_parser::{parse_goal, parse_program};

fn parse_options(args: &[String]) -> Result<(EngineConfig, Vec<&String>), String> {
    let mut config = EngineConfig::default();
    let mut seed: u64 = 0;
    let mut strategy: Option<&str> = None;
    let mut threads: usize = 1;
    let mut deterministic = false;
    let mut rest = Vec::new();
    for a in args {
        if let Some(v) = a.strip_prefix("--strategy=") {
            strategy = Some(match v {
                "exhaustive" | "random" | "round-robin" | "leftmost" => v,
                other => return Err(format!("unknown strategy `{other}`")),
            });
        } else if let Some(v) = a.strip_prefix("--seed=") {
            seed = v.parse().map_err(|_| format!("bad seed `{v}`"))?;
        } else if let Some(v) = a.strip_prefix("--max-steps=") {
            config.max_steps = v.parse().map_err(|_| format!("bad step budget `{v}`"))?;
        } else if let Some(v) = a.strip_prefix("--threads=") {
            threads = v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
        } else if a == "--deterministic" {
            deterministic = true;
        } else if a == "--subgoal-cache" {
            config.subgoal_cache = true;
        } else if let Some(v) = a.strip_prefix("--cache-capacity=") {
            config.cache_capacity = v
                .parse::<usize>()
                .ok()
                .filter(|n| *n > 0)
                .ok_or_else(|| format!("bad cache capacity `{v}`"))?;
        } else if a.starts_with("--") {
            return Err(format!("unknown option `{a}`"));
        } else {
            rest.push(a);
        }
    }
    config.strategy = match strategy {
        None | Some("exhaustive") => Strategy::Exhaustive,
        Some("random") => Strategy::ExhaustiveRandom(seed),
        Some("round-robin") => Strategy::RoundRobin,
        Some("leftmost") => Strategy::Leftmost,
        Some(_) => unreachable!("validated above"),
    };
    if threads > 1 {
        if config.strategy != Strategy::Exhaustive {
            return Err("--threads requires --strategy=exhaustive".into());
        }
        config.backend = SearchBackend::Parallel {
            threads,
            deterministic,
        };
    } else if deterministic {
        return Err("--deterministic only applies with --threads=N (N > 1)".into());
    }
    Ok((config, rest))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (config, positional) = match parse_options(&args) {
        Ok(x) => x,
        Err(msg) => {
            eprintln!("td: {msg}");
            return ExitCode::from(2);
        }
    };
    let (cmd, file) = match positional.as_slice() {
        [cmd, file] => (cmd.as_str(), file.as_str()),
        _ => {
            eprintln!(
                "usage: td [--strategy=S] [--seed=N] [--max-steps=N] [--threads=N] \
       [--deterministic] [--subgoal-cache] [--cache-capacity=N] \
       <run|trace|fragment|decide|repl> <file.td>"
            );
            return ExitCode::from(2);
        }
    };
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("td: cannot read `{file}`: {e}");
            return ExitCode::from(2);
        }
    };
    let parsed = match parse_program(&src) {
        Ok(p) => p,
        Err(errs) => {
            eprintln!("{}", errs.render(&src));
            return ExitCode::FAILURE;
        }
    };
    let db = Database::with_schema_of(&parsed.program);
    let db = match load_init(&db, &parsed.init) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("td: loading init facts: {e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd {
        "run" => run(&parsed, db, config),
        "trace" => trace(&parsed, db, config),
        "fragment" => fragment(&parsed, &config),
        "decide" => decide(&parsed, db, &config),
        "repl" => repl(&parsed, db, config),
        other => {
            eprintln!("td: unknown command `{other}`");
            ExitCode::from(2)
        }
    }
}

fn trace(parsed: &td_parser::ParsedProgram, mut db: Database, config: EngineConfig) -> ExitCode {
    if parsed.goals.is_empty() {
        eprintln!("td: no ?- goals in file");
        return ExitCode::FAILURE;
    }
    let engine = Engine::with_config(parsed.program.clone(), config.with_trace());
    let mut ok = true;
    for g in &parsed.goals {
        println!(
            "?- {}",
            td_core::rule::render_goal_with_names(&g.goal, &g.var_names)
        );
        match engine.solve(&g.goal, &db) {
            Ok(Outcome::Success(sol)) => {
                print!("{}", sol.trace);
                println!("  yes  ({})", sol.stats);
                db = sol.db.clone();
            }
            Ok(Outcome::Failure { stats }) => {
                println!("  no   ({stats})");
                ok = false;
            }
            Err(e) => {
                println!("  error: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run(parsed: &td_parser::ParsedProgram, mut db: Database, config: EngineConfig) -> ExitCode {
    if parsed.goals.is_empty() {
        eprintln!("td: no ?- goals in file");
        return ExitCode::FAILURE;
    }
    let engine = Engine::with_config(parsed.program.clone(), config);
    let mut ok = true;
    for g in &parsed.goals {
        println!(
            "?- {}",
            td_core::rule::render_goal_with_names(&g.goal, &g.var_names)
        );
        match engine.solve(&g.goal, &db) {
            Ok(Outcome::Success(sol)) => {
                for (i, name) in g.var_names.iter().enumerate() {
                    println!("  {name} = {}", sol.answer[i]);
                }
                println!("  yes  ({})", sol.stats);
                println!("  db = {}", sol.db);
                db = sol.db.clone(); // goals run in sequence, like the prototype
            }
            Ok(Outcome::Failure { stats }) => {
                println!("  no   ({stats})");
                ok = false;
            }
            Err(e) => {
                println!("  error: {e}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn fragment(parsed: &td_parser::ParsedProgram, config: &EngineConfig) -> ExitCode {
    let goal = parsed
        .goals
        .first()
        .map(|g| g.goal.clone())
        .unwrap_or(Goal::True);
    let report = FragmentReport::classify(&parsed.program, &goal);
    println!("{report}");
    match config.backend {
        SearchBackend::Sequential => println!("search backend: sequential"),
        SearchBackend::Parallel {
            threads,
            deterministic,
        } => println!(
            "search backend: parallel ({threads} threads{})",
            if deterministic { ", deterministic" } else { "" }
        ),
    }
    for l in td_core::validate::unsafe_rules(&parsed.program) {
        println!("lint: {l}");
    }
    ExitCode::SUCCESS
}

fn decide(parsed: &td_parser::ParsedProgram, db: Database, config: &EngineConfig) -> ExitCode {
    if parsed.goals.is_empty() {
        eprintln!("td: no ?- goals in file");
        return ExitCode::FAILURE;
    }
    // One cache across all the file's goals: repeated subprotocols warm it.
    let cache = config
        .subgoal_cache
        .then(|| std::sync::Arc::new(td_engine::SubgoalCache::new(config.cache_capacity)));
    let mut ok = true;
    for g in &parsed.goals {
        match decider::decide_with_cache(
            &parsed.program,
            &g.goal,
            &db,
            decider::DeciderConfig::default(),
            cache.clone(),
        ) {
            Ok(d) => {
                println!(
                    "executable: {}{}  (configurations: {})",
                    d.executable,
                    if d.truncated { " (truncated)" } else { "" },
                    d.configs
                );
                ok &= d.executable;
            }
            Err(e) => {
                println!("error: {e}");
                ok = false;
            }
        }
    }
    if let Some(c) = &cache {
        println!(
            "subgoal cache: hits={} misses={} evictions={} entries={}",
            c.hits(),
            c.misses(),
            c.evictions(),
            c.len()
        );
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn repl(parsed: &td_parser::ParsedProgram, mut db: Database, config: EngineConfig) -> ExitCode {
    let program: Program = parsed.program.clone();
    let engine = Engine::with_config(program.clone(), config);
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    println!("Transaction Datalog repl — enter goals, `:db` to show state, ^D to exit");
    loop {
        print!("td> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => return ExitCode::SUCCESS,
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":db" {
            println!("{db}");
            continue;
        }
        if line == ":quit" || line == ":q" {
            return ExitCode::SUCCESS;
        }
        match parse_goal(line, &program) {
            Err(e) => println!("{}", e.render(line)),
            Ok(g) => match engine.solve(&g.goal, &db) {
                Ok(Outcome::Success(sol)) => {
                    for (i, name) in g.var_names.iter().enumerate() {
                        println!("  {name} = {}", sol.answer[i]);
                    }
                    println!("  yes");
                    db = sol.db.clone();
                }
                Ok(Outcome::Failure { .. }) => println!("  no"),
                Err(e) => println!("  error: {e}"),
            },
        }
    }
}
