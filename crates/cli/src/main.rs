//! `td` — command-line runner for Transaction Datalog programs.
//!
//! ```text
//! td run <file.td>        execute each ?- goal in the file, print outcomes
//! td trace <file.td>      like run, but print the committed execution trace
//! td fragment <file.td>   classify the program into the paper's sublanguages
//! td decide <file.td>     decide executability with the memoizing decider
//! td repl <file.td>       load the file, read goals interactively
//!
//! options (before the file):
//!   --strategy=exhaustive|random|round-robin|leftmost
//!   --seed=N               seed for --strategy=random (rejected otherwise)
//!   --max-steps=N          step budget (default 10000000)
//!   --threads=N            parallel search with N workers (exhaustive
//!                          strategy only; N<=1 keeps the sequential engine)
//!   --deterministic        with --threads: report the same witness as the
//!                          sequential engine
//!   --subgoal-cache        memoize isolated blocks and sole-frontier ground
//!                          calls as replayable answer sets (exhaustive
//!                          strategy, tracing off; see docs/CACHING.md).
//!                          Incompatible with `td trace` (rejected).
//!   --cache-capacity=N     subgoal-cache entry bound (default 65536;
//!                          requires --subgoal-cache)
//!   --report=PATH          write a JSON run report (outcome, wall time,
//!                          metrics registry snapshot, requested+effective
//!                          config, final-state digest) — run/trace/decide
//!   --log-json=PATH        write the structured event stream as JSON Lines
//!                          (span enter/exit, cache probes, worker steals) —
//!                          run/trace/decide
//!
//! See docs/OBSERVABILITY.md for the report schema and event vocabulary.
//! ```

use std::io::{BufRead, Write};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Instant;
use td_core::{FragmentReport, Goal, Program};
use td_db::Database;
use td_engine::obs::{stats_counters, CacheReport, GoalReport, RunReport};
use td_engine::{
    decider, load_init, Engine, EngineConfig, Observer, Outcome, SearchBackend, Strategy,
    SubgoalCache,
};
use td_parser::{parse_goal, parse_program};

/// Everything the command line resolved to: the engine configuration plus
/// the CLI-level output options.
#[derive(Debug)]
struct CliOptions {
    config: EngineConfig,
    /// `--log-json=PATH`: structured event stream destination.
    log_json: Option<String>,
    /// `--report=PATH`: JSON run report destination.
    report: Option<String>,
}

fn parse_options(args: &[String]) -> Result<(CliOptions, Vec<&String>), String> {
    let mut config = EngineConfig::default();
    let mut seed: Option<u64> = None;
    let mut strategy: Option<&str> = None;
    let mut threads: usize = 1;
    let mut deterministic = false;
    let mut cache_capacity: Option<usize> = None;
    let mut log_json = None;
    let mut report = None;
    let mut rest = Vec::new();
    for a in args {
        if let Some(v) = a.strip_prefix("--strategy=") {
            strategy = Some(match v {
                "exhaustive" | "random" | "round-robin" | "leftmost" => v,
                other => return Err(format!("unknown strategy `{other}`")),
            });
        } else if let Some(v) = a.strip_prefix("--seed=") {
            seed = Some(v.parse().map_err(|_| format!("bad seed `{v}`"))?);
        } else if let Some(v) = a.strip_prefix("--max-steps=") {
            config.max_steps = v.parse().map_err(|_| format!("bad step budget `{v}`"))?;
        } else if let Some(v) = a.strip_prefix("--threads=") {
            threads = v.parse().map_err(|_| format!("bad thread count `{v}`"))?;
        } else if a == "--deterministic" {
            deterministic = true;
        } else if a == "--subgoal-cache" {
            config.subgoal_cache = true;
        } else if let Some(v) = a.strip_prefix("--cache-capacity=") {
            cache_capacity = Some(
                v.parse::<usize>()
                    .ok()
                    .filter(|n| *n > 0)
                    .ok_or_else(|| format!("bad cache capacity `{v}`"))?,
            );
        } else if let Some(v) = a.strip_prefix("--log-json=") {
            log_json = Some(v.to_owned());
        } else if let Some(v) = a.strip_prefix("--report=") {
            report = Some(v.to_owned());
        } else if a.starts_with("--") {
            return Err(format!("unknown option `{a}`"));
        } else {
            rest.push(a);
        }
    }
    config.strategy = match strategy {
        None | Some("exhaustive") => Strategy::Exhaustive,
        Some("random") => Strategy::ExhaustiveRandom(seed.unwrap_or(0)),
        Some("round-robin") => Strategy::RoundRobin,
        Some("leftmost") => Strategy::Leftmost,
        Some(_) => unreachable!("validated above"),
    };
    // A seed without the random strategy used to be read and then silently
    // ignored; reject it so the run the user asked for is the run they get.
    if seed.is_some() && !matches!(config.strategy, Strategy::ExhaustiveRandom(_)) {
        return Err("--seed only applies with --strategy=random".into());
    }
    // Same for a capacity bound without the cache it would bound.
    match cache_capacity {
        Some(n) if config.subgoal_cache => config.cache_capacity = n,
        Some(_) => return Err("--cache-capacity requires --subgoal-cache".into()),
        None => {}
    }
    if threads > 1 {
        if config.strategy != Strategy::Exhaustive {
            return Err("--threads requires --strategy=exhaustive".into());
        }
        config.backend = SearchBackend::Parallel {
            threads,
            deterministic,
        };
    } else if deterministic {
        return Err("--deterministic only applies with --threads=N (N > 1)".into());
    }
    Ok((
        CliOptions {
            config,
            log_json,
            report,
        },
        rest,
    ))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (opts, positional) = match parse_options(&args) {
        Ok(x) => x,
        Err(msg) => {
            eprintln!("td: {msg}");
            return ExitCode::from(2);
        }
    };
    let (cmd, file) = match positional.as_slice() {
        [cmd, file] => (cmd.as_str(), file.as_str()),
        _ => {
            eprintln!(
                "usage: td [--strategy=S] [--seed=N] [--max-steps=N] [--threads=N] \
       [--deterministic] [--subgoal-cache] [--cache-capacity=N] \
       [--report=PATH] [--log-json=PATH] \
       <run|trace|fragment|decide|repl> <file.td>"
            );
            return ExitCode::from(2);
        }
    };
    // Tracing and the subgoal cache are semantically incompatible (a
    // replayed answer set is one macro-step with no elementary events to
    // record). The engine used to gate the cache off silently; refuse the
    // combination instead of quietly changing what runs.
    if cmd == "trace" && opts.config.subgoal_cache {
        eprintln!(
            "td: --subgoal-cache cannot be combined with `trace`: tracing \
             disables the cache (see docs/CACHING.md); drop one of the two"
        );
        return ExitCode::from(2);
    }
    if (opts.report.is_some() || opts.log_json.is_some())
        && !matches!(cmd, "run" | "trace" | "decide")
    {
        eprintln!("td: --report/--log-json only apply to `run`, `trace` and `decide`");
        return ExitCode::from(2);
    }
    let src = match std::fs::read_to_string(file) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("td: cannot read `{file}`: {e}");
            return ExitCode::from(2);
        }
    };
    let parsed = match parse_program(&src) {
        Ok(p) => p,
        Err(errs) => {
            eprintln!("{}", errs.render(&src));
            return ExitCode::FAILURE;
        }
    };
    let db = Database::with_schema_of(&parsed.program);
    let db = match load_init(&db, &parsed.init) {
        Ok(db) => db,
        Err(e) => {
            eprintln!("td: loading init facts: {e}");
            return ExitCode::FAILURE;
        }
    };

    match cmd {
        "run" => run(&parsed, db, &opts, file),
        "trace" => trace(&parsed, db, &opts, file),
        "fragment" => fragment(&parsed, &opts.config),
        "decide" => decide(&parsed, db, &opts, file),
        "repl" => repl(&parsed, db, opts.config),
        other => {
            eprintln!("td: unknown command `{other}`");
            ExitCode::from(2)
        }
    }
}

/// The observability sink the output options call for: an event log only
/// when `--log-json` wants one, nothing at all when neither flag is given.
fn observer_for(opts: &CliOptions) -> Option<Arc<Observer>> {
    if opts.log_json.is_some() {
        Some(Arc::new(Observer::with_event_log()))
    } else if opts.report.is_some() {
        Some(Arc::new(Observer::new()))
    } else {
        None
    }
}

/// Write the `--report` and `--log-json` artifacts (no-op for flags not
/// given). Returns false if a file could not be written.
#[allow(clippy::too_many_arguments)]
fn write_outputs(
    opts: &CliOptions,
    obs: Option<&Arc<Observer>>,
    command: &str,
    file: &str,
    requested: &EngineConfig,
    started: Instant,
    goals: Vec<GoalReport>,
    final_db: Option<&Database>,
    cache: Option<&SubgoalCache>,
) -> bool {
    let mut ok = true;
    if let (Some(path), Some(obs)) = (&opts.log_json, obs) {
        let lines = obs
            .event_log()
            .map(|l| l.to_json_lines())
            .unwrap_or_default();
        if let Err(e) = std::fs::write(path, lines) {
            eprintln!("td: cannot write event log `{path}`: {e}");
            ok = false;
        }
    }
    if let Some(path) = &opts.report {
        let report = RunReport {
            command: command.to_owned(),
            file: file.to_owned(),
            requested: requested.clone(),
            effective: requested.effective(),
            wall_ms: started.elapsed().as_secs_f64() * 1e3,
            goals,
            final_digest: final_db.map(|d| d.digest()),
            final_tuples: final_db.map(|d| d.total_tuples() as u64),
            cache: cache.map(|c| CacheReport {
                hits: c.hits(),
                misses: c.misses(),
                unsuitable: c.unsuitable(),
                evictions: c.evictions(),
                entries: c.len() as u64,
            }),
            metrics: obs
                .map(|o| o.registry.snapshot())
                .unwrap_or_else(|| td_engine::MetricsRegistry::new().snapshot()),
        };
        if let Err(e) = std::fs::write(path, report.to_json()) {
            eprintln!("td: cannot write report `{path}`: {e}");
            ok = false;
        }
    }
    ok
}

fn trace(
    parsed: &td_parser::ParsedProgram,
    mut db: Database,
    opts: &CliOptions,
    file: &str,
) -> ExitCode {
    if parsed.goals.is_empty() {
        eprintln!("td: no ?- goals in file");
        return ExitCode::FAILURE;
    }
    let started = Instant::now();
    let requested = opts.config.clone().with_trace();
    let obs = observer_for(opts);
    let mut engine = Engine::with_config(parsed.program.clone(), requested.clone());
    if let Some(o) = &obs {
        engine = engine.with_observer(o.clone());
    }
    let mut ok = true;
    let mut reports = Vec::new();
    for g in &parsed.goals {
        let rendered = td_core::rule::render_goal_with_names(&g.goal, &g.var_names);
        println!("?- {rendered}");
        let mut report = GoalReport {
            goal: rendered,
            ok: false,
            error: None,
            counters: Vec::new(),
        };
        match engine.solve(&g.goal, &db) {
            Ok(Outcome::Success(sol)) => {
                print!("{}", sol.trace);
                println!("  yes  ({})", sol.stats);
                db = sol.db.clone();
                report.ok = true;
                report.counters = stats_counters(&sol.stats);
            }
            Ok(Outcome::Failure { stats }) => {
                println!("  no   ({stats})");
                report.counters = stats_counters(&stats);
                ok = false;
            }
            Err(e) => {
                println!("  error: {e}");
                report.error = Some(e.to_string());
                ok = false;
            }
        }
        reports.push(report);
    }
    ok &= write_outputs(
        opts,
        obs.as_ref(),
        "trace",
        file,
        &requested,
        started,
        reports,
        Some(&db),
        None,
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn run(
    parsed: &td_parser::ParsedProgram,
    mut db: Database,
    opts: &CliOptions,
    file: &str,
) -> ExitCode {
    if parsed.goals.is_empty() {
        eprintln!("td: no ?- goals in file");
        return ExitCode::FAILURE;
    }
    let started = Instant::now();
    let obs = observer_for(opts);
    let mut engine = Engine::with_config(parsed.program.clone(), opts.config.clone());
    if let Some(o) = &obs {
        engine = engine.with_observer(o.clone());
    }
    let mut ok = true;
    let mut reports = Vec::new();
    for g in &parsed.goals {
        let rendered = td_core::rule::render_goal_with_names(&g.goal, &g.var_names);
        println!("?- {rendered}");
        let mut report = GoalReport {
            goal: rendered,
            ok: false,
            error: None,
            counters: Vec::new(),
        };
        match engine.solve(&g.goal, &db) {
            Ok(Outcome::Success(sol)) => {
                for (i, name) in g.var_names.iter().enumerate() {
                    println!("  {name} = {}", sol.answer[i]);
                }
                println!("  yes  ({})", sol.stats);
                println!("  db = {}", sol.db);
                db = sol.db.clone(); // goals run in sequence, like the prototype
                report.ok = true;
                report.counters = stats_counters(&sol.stats);
                report
                    .counters
                    .push(("committed_updates".to_owned(), sol.delta.len() as u64));
            }
            Ok(Outcome::Failure { stats }) => {
                println!("  no   ({stats})");
                report.counters = stats_counters(&stats);
                ok = false;
            }
            Err(e) => {
                println!("  error: {e}");
                report.error = Some(e.to_string());
                ok = false;
            }
        }
        reports.push(report);
    }
    let cache = engine.subgoal_cache().cloned();
    ok &= write_outputs(
        opts,
        obs.as_ref(),
        "run",
        file,
        &opts.config,
        started,
        reports,
        Some(&db),
        cache.as_deref(),
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn fragment(parsed: &td_parser::ParsedProgram, config: &EngineConfig) -> ExitCode {
    let goal = parsed
        .goals
        .first()
        .map(|g| g.goal.clone())
        .unwrap_or(Goal::True);
    let report = FragmentReport::classify(&parsed.program, &goal);
    println!("{report}");
    match config.backend {
        SearchBackend::Sequential => println!("search backend: sequential"),
        SearchBackend::Parallel {
            threads,
            deterministic,
        } => println!(
            "search backend: parallel ({threads} threads{})",
            if deterministic { ", deterministic" } else { "" }
        ),
    }
    for l in td_core::validate::unsafe_rules(&parsed.program) {
        println!("lint: {l}");
    }
    ExitCode::SUCCESS
}

fn decide(
    parsed: &td_parser::ParsedProgram,
    db: Database,
    opts: &CliOptions,
    file: &str,
) -> ExitCode {
    if parsed.goals.is_empty() {
        eprintln!("td: no ?- goals in file");
        return ExitCode::FAILURE;
    }
    let started = Instant::now();
    let config = &opts.config;
    let obs = observer_for(opts);
    // One cache across all the file's goals: repeated subprotocols warm it.
    let cache = config
        .subgoal_cache
        .then(|| Arc::new(SubgoalCache::new(config.cache_capacity)));
    let mut ok = true;
    let mut reports = Vec::new();
    for g in &parsed.goals {
        let rendered = td_core::rule::render_goal_with_names(&g.goal, &g.var_names);
        let mut report = GoalReport {
            goal: rendered,
            ok: false,
            error: None,
            counters: Vec::new(),
        };
        match decider::decide_observed(
            &parsed.program,
            &g.goal,
            &db,
            decider::DeciderConfig::default(),
            cache.clone(),
            obs.clone(),
        ) {
            Ok(d) => {
                println!(
                    "executable: {}{}  (configurations: {})",
                    d.executable,
                    if d.truncated { " (truncated)" } else { "" },
                    d.configs
                );
                ok &= d.executable;
                report.ok = d.executable;
                report.counters = vec![
                    ("configs".to_owned(), d.configs as u64),
                    ("truncated".to_owned(), u64::from(d.truncated)),
                ];
            }
            Err(e) => {
                println!("error: {e}");
                report.error = Some(e.to_string());
                ok = false;
            }
        }
        reports.push(report);
    }
    if let Some(c) = &cache {
        println!(
            "subgoal cache: hits={} misses={} unsuitable={} evictions={} entries={}",
            c.hits(),
            c.misses(),
            c.unsuitable(),
            c.evictions(),
            c.len()
        );
    }
    ok &= write_outputs(
        opts,
        obs.as_ref(),
        "decide",
        file,
        config,
        started,
        reports,
        None,
        cache.as_deref(),
    );
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn repl(parsed: &td_parser::ParsedProgram, mut db: Database, config: EngineConfig) -> ExitCode {
    let program: Program = parsed.program.clone();
    let engine = Engine::with_config(program.clone(), config);
    let stdin = std::io::stdin();
    let mut stdout = std::io::stdout();
    println!("Transaction Datalog repl — enter goals, `:db` to show state, ^D to exit");
    loop {
        print!("td> ");
        let _ = stdout.flush();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) | Err(_) => return ExitCode::SUCCESS,
            Ok(_) => {}
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":db" {
            println!("{db}");
            continue;
        }
        if line == ":quit" || line == ":q" {
            return ExitCode::SUCCESS;
        }
        match parse_goal(line, &program) {
            Err(e) => println!("{}", e.render(line)),
            Ok(g) => match engine.solve(&g.goal, &db) {
                Ok(Outcome::Success(sol)) => {
                    for (i, name) in g.var_names.iter().enumerate() {
                        println!("  {name} = {}", sol.answer[i]);
                    }
                    println!("  yes");
                    db = sol.db.clone();
                }
                Ok(Outcome::Failure { .. }) => println!("  no"),
                Err(e) => println!("  error: {e}"),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<CliOptions, String> {
        let owned: Vec<String> = args.iter().map(|s| s.to_string()).collect();
        parse_options(&owned).map(|(o, _)| o)
    }

    #[test]
    fn seed_with_random_strategy_is_accepted() {
        let o = parse(&["--strategy=random", "--seed=7"]).unwrap();
        assert_eq!(o.config.strategy, Strategy::ExhaustiveRandom(7));
    }

    #[test]
    fn seed_without_random_strategy_is_rejected() {
        for args in [
            &["--seed=7"][..],
            &["--seed=7", "--strategy=exhaustive"][..],
            &["--seed=7", "--strategy=round-robin"][..],
            &["--seed=7", "--strategy=leftmost"][..],
        ] {
            let err = parse(args).unwrap_err();
            assert!(err.contains("--seed"), "{err}");
            assert!(err.contains("--strategy=random"), "{err}");
        }
    }

    #[test]
    fn cache_capacity_with_cache_is_accepted() {
        let o = parse(&["--subgoal-cache", "--cache-capacity=128"]).unwrap();
        assert!(o.config.subgoal_cache);
        assert_eq!(o.config.cache_capacity, 128);
    }

    #[test]
    fn cache_capacity_without_cache_is_rejected() {
        let err = parse(&["--cache-capacity=128"]).unwrap_err();
        assert!(err.contains("--subgoal-cache"), "{err}");
    }

    #[test]
    fn deterministic_without_threads_is_rejected() {
        let err = parse(&["--deterministic"]).unwrap_err();
        assert!(err.contains("--threads"), "{err}");
    }

    #[test]
    fn threads_with_nonexhaustive_strategy_is_rejected() {
        let err = parse(&["--threads=4", "--strategy=leftmost"]).unwrap_err();
        assert!(err.contains("exhaustive"), "{err}");
    }

    #[test]
    fn bad_values_are_rejected() {
        assert!(parse(&["--strategy=bogus"]).is_err());
        assert!(parse(&["--seed=x", "--strategy=random"]).is_err());
        assert!(parse(&["--max-steps=x"]).is_err());
        assert!(parse(&["--threads=x"]).is_err());
        assert!(parse(&["--subgoal-cache", "--cache-capacity=0"]).is_err());
        assert!(parse(&["--no-such-flag"]).is_err());
    }

    #[test]
    fn report_and_log_json_paths_are_captured() {
        let o = parse(&["--report=r.json", "--log-json=e.jsonl"]).unwrap();
        assert_eq!(o.report.as_deref(), Some("r.json"));
        assert_eq!(o.log_json.as_deref(), Some("e.jsonl"));
    }

    #[test]
    fn threads_config_builds_parallel_backend() {
        let o = parse(&["--threads=4", "--deterministic"]).unwrap();
        assert_eq!(
            o.config.backend,
            SearchBackend::Parallel {
                threads: 4,
                deterministic: true
            }
        );
    }
}
