//! Integration tests for the `td` binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn td() -> Command {
    Command::new(env!("CARGO_BIN_EXE_td"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("td-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn run_executes_goals_and_prints_answers() {
    let f = write_temp(
        "run_ok.td",
        "base item/1. init item(w1).\n?- item(X) * del.item(X).\n",
    );
    let out = td().args(["run"]).arg(&f).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("X = w1"), "{stdout}");
    assert!(stdout.contains("yes"), "{stdout}");
    assert!(stdout.contains("db = {}"), "{stdout}");
}

#[test]
fn run_reports_failure_with_nonzero_exit() {
    let f = write_temp("run_fail.td", "base t/0.\n?- t.\n");
    let out = td().args(["run"]).arg(&f).output().unwrap();
    assert!(!out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("no"), "{stdout}");
}

#[test]
fn goals_run_in_sequence_sharing_state() {
    let f = write_temp(
        "run_seq.td",
        "base t/1.\n?- ins.t(1).\n?- t(1) * ins.t(2).\n",
    );
    let out = td().args(["run"]).arg(&f).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("db = {t(1), t(2)}"), "{stdout}");
}

#[test]
fn parse_errors_are_rendered_with_location() {
    let f = write_temp("bad.td", "base t/0.\nr <- ins.\n");
    let out = td().args(["run"]).arg(&f).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("expected"), "{stderr}");
    assert!(stderr.contains('^'), "{stderr}");
}

#[test]
fn fragment_classifies_programs() {
    let f = write_temp(
        "frag.td",
        "base t/0.\nsim <- step | sim.\nstep <- ins.t.\n?- sim.\n",
    );
    let out = td().args(["fragment"]).arg(&f).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("full TD"), "{stdout}");
    assert!(stdout.contains("RE-complete"), "{stdout}");
}

#[test]
fn decide_reports_configuration_counts() {
    let f = write_temp(
        "decide.td",
        "base t/0.\nloop <- { ins.t or loop }.\n?- loop.\n",
    );
    let out = td().args(["decide"]).arg(&f).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("executable: true"), "{stdout}");
    assert!(stdout.contains("configurations:"), "{stdout}");
}

#[test]
fn repl_answers_interactive_goals() {
    let f = write_temp("repl.td", "base t/1. init t(7).\n");
    let mut child = td()
        .args(["repl"])
        .arg(&f)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"t(X)\n:db\n:quit\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("X = 7"), "{stdout}");
    assert!(stdout.contains("{t(7)}"), "{stdout}");
}

#[test]
fn missing_file_and_bad_usage_exit_2() {
    let out = td().args(["run", "/nonexistent/x.td"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = td().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let f = write_temp("ok.td", "base t/0.");
    let out = td().args(["bogus"]).arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn incompatible_flag_combinations_exit_2() {
    let f = write_temp("flags.td", "base t/0.\n?- ins.t.\n");
    // The decider never consults the parallel backend; silently ignoring
    // --threads would misreport what ran.
    let out = td()
        .args(["--threads=4", "decide"])
        .arg(&f)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--threads"), "{stderr}");
    assert!(stderr.contains("decide"), "{stderr}");
    // Tracing gates the subgoal cache off; the combination is refused
    // rather than silently changing what runs.
    let out = td()
        .args(["--subgoal-cache", "trace"])
        .arg(&f)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--subgoal-cache"), "{stderr}");
    // --deterministic without --threads is rejected at option parsing.
    let out = td()
        .args(["--deterministic", "run"])
        .arg(&f)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // `td decide` without --threads still works.
    let out = td().args(["decide"]).arg(&f).output().unwrap();
    assert!(out.status.success(), "{out:?}");
}

/// Fresh temp directory for one store test.
fn store_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("td-cli-store-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(dir.parent().unwrap()).unwrap();
    dir
}

#[test]
fn db_backed_runs_accumulate_state_and_verify() {
    let f = write_temp("durable.td", "base t/1. init t(1).\n?- ins.t(2).\n");
    let dir = store_dir("accumulate");
    let db_flag = format!("--db={}", dir.display());

    // First run: fresh store, init facts + goal committed.
    let out = td().args([&db_flag, "run"]).arg(&f).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("store: fresh"), "{stdout}");
    assert!(stdout.contains("committed wal record"), "{stdout}");

    // Second run with a goal that *requires* the first run's state; its
    // own init facts must not be re-applied.
    let g = write_temp("durable2.td", "base t/1. init t(9).\n?- t(2) * ins.t(3).\n");
    let out = td().args([&db_flag, "run"]).arg(&g).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("store: recovered"), "{stdout}");
    assert!(stdout.contains("db = {t(1), t(2), t(3)}"), "{stdout}");

    // The store passes a cold integrity check and lists its records.
    let out = td().args(["db", "verify"]).arg(&dir).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let out = td().args(["db", "log"]).arg(&dir).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("tail clean"), "{stdout}");

    // Rotation folds the WAL into the snapshot; still verifies.
    let out = td().args(["db", "snapshot"]).arg(&dir).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let out = td().args(["db", "verify"]).arg(&dir).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn db_init_seeds_schema_and_init_facts() {
    let f = write_temp("init_seed.td", "base t/1. init t(5).\n?- t(5).\n");
    let dir = store_dir("init-seed");
    let out = td()
        .args(["db", "init"])
        .arg(&dir)
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("initialized"), "{stdout}");
    // Re-init is refused.
    let out = td().args(["db", "init"]).arg(&dir).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    // A run against the initialized store finds the seeded fact.
    let db_flag = format!("--db={}", dir.display());
    let out = td().args([&db_flag, "run"]).arg(&f).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("store: recovered"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn decide_with_db_is_read_only() {
    let f = write_temp("decide_db.td", "base t/1. init t(1).\n?- { ins.t(2) }.\n");
    let dir = store_dir("decide-ro");
    let db_flag = format!("--db={}", dir.display());
    let out = td().args([&db_flag, "run"]).arg(&f).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let before = std::fs::metadata(dir.join("wal.tdl")).unwrap().len();
    let out = td().args([&db_flag, "decide"]).arg(&f).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let after = std::fs::metadata(dir.join("wal.tdl")).unwrap().len();
    assert_eq!(before, after, "decide must not append WAL records");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn store_misuse_exits_2() {
    let f = write_temp("misuse.td", "base t/1.\n?- ins.t(1).\n");
    // trace cannot be db-backed.
    let dir = store_dir("misuse");
    std::fs::create_dir_all(&dir).unwrap();
    let db_flag = format!("--db={}", dir.display());
    let out = td().args([&db_flag, "trace"]).arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // Maintenance on an uninitialized store fails fast.
    let out = td().args(["db", "snapshot"]).arg(&dir).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = td().args(["db", "verify"]).arg(&dir).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // A store path under a nonexistent parent fails fast.
    let bogus = dir.join("no").join("such").join("store");
    let out = td()
        .arg(format!("--db={}", bogus.display()))
        .args(["run"])
        .arg(&f)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    // Unknown db subcommand / missing dir.
    let out = td().args(["db", "frobnicate"]).arg(&dir).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let out = td().args(["db"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn materialize_answers_derived_queries_and_reports_counters() {
    let f = write_temp(
        "mat_run.td",
        "base edge/2. init edge(1,2). init edge(2,3).\n\
         path(X,Y) <- edge(X,Y).\npath(X,Z) <- edge(X,Y) * path(Y,Z).\n\
         ?- path(1,3).\n?- ins.edge(3,4) * path(1,4).\n",
    );
    let report = std::env::temp_dir().join("td-cli-tests").join("mat.json");
    let out = td()
        .args([
            "--materialize",
            &format!("--report={}", report.display()),
            "run",
        ])
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("materializer: probes="), "{stdout}");
    let json = std::fs::read_to_string(&report).unwrap();
    assert!(json.contains("\"materializer\""), "{json}");
    assert!(json.contains("\"probes\""), "{json}");
    let _ = std::fs::remove_file(&report);
}

#[test]
fn materialize_with_trace_exits_2() {
    let f = write_temp(
        "mat_trace.td",
        "base edge/2.\npath(X,Y) <- edge(X,Y).\n?- path(1,2).\n",
    );
    let out = td()
        .args(["--materialize", "trace"])
        .arg(&f)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--materialize"), "{stderr}");
    assert!(stderr.contains("trace"), "{stderr}");
}

#[test]
fn materialize_without_datalog_fragment_exits_2() {
    // Every derived predicate here performs updates, so nothing is
    // materializable: the flag must be refused, not silently ignored.
    let f = write_temp("mat_none.td", "base t/1.\nw(X) <- ins.t(X).\n?- w(1).\n");
    let out = td()
        .args(["--materialize", "run"])
        .arg(&f)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("--materialize"), "{stderr}");
}

#[test]
fn trace_prints_the_committed_story() {
    let f = write_temp(
        "trace.td",
        "base t/1.\nput <- ins.t(1) * t(X) * del.t(X).\n?- put.\n",
    );
    let out = td().args(["trace"]).arg(&f).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("unfold put"), "{stdout}");
    assert!(stdout.contains("ins.t(1)"), "{stdout}");
    assert!(stdout.contains("del.t(1)"), "{stdout}");
}

#[test]
fn strategy_and_budget_flags() {
    let f = write_temp(
        "flags.td",
        "base done/1.\nw(X) <- ins.done(X).\n?- w(a) | w(b).\n",
    );
    let out = td()
        .args(["--strategy=round-robin", "run"])
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    // A tiny budget turns divergence into a clean error.
    let g = write_temp("diverge.td", "loop <- loop.\n?- loop.\n");
    let out = td()
        .args(["--max-steps=100", "run"])
        .arg(&g)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("step budget exhausted"), "{stdout}");

    // Unknown options are rejected.
    let out = td().args(["--bogus", "run"]).arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

// --- td serve / td client ---------------------------------------------

const SERVE_BANKING: &str = "base balance/2.\n\
    init balance(acct1, 100).\n\
    init balance(acct2, 50).\n\
    withdraw(Amt, Acct) <- balance(Acct, Bal) * Bal >= Amt\n\
        * del.balance(Acct, Bal)\n\
        * NB is Bal - Amt * ins.balance(Acct, NB).\n\
    deposit(Amt, Acct) <- balance(Acct, Bal) * del.balance(Acct, Bal)\n\
        * NB is Bal + Amt * ins.balance(Acct, NB).\n\
    transfer(Amt, From, To) <- withdraw(Amt, From) * deposit(Amt, To).\n";

fn serve_dir(name: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("td-cli-tests").join(name);
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// The serve flag fail-fast matrix: every incompatible combination exits 2
/// with a diagnostic naming the flag, before any socket is bound.
#[test]
fn serve_flag_matrix_rejections_exit_2() {
    let f = write_temp("serve_flags.td", SERVE_BANKING);
    let dir = serve_dir("flags_db");
    let db = format!("--db={}", dir.display());
    // serve without --db.
    let out = td().args(["serve"]).arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("requires --db"), "{err}");
    // serve with a nondeterministic strategy (seed would be a lie).
    let out = td()
        .args(["--strategy=random", "--seed=7", &db, "serve"])
        .arg(&f)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--strategy=random"), "{err}");
    // serve with a per-run event stream.
    let out = td()
        .args(["--log-json=/tmp/x.jsonl", &db, "serve"])
        .arg(&f)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--log-json"), "{err}");
    // serve with single-writer view maintenance.
    let out = td()
        .args(["--materialize", &db, "serve"])
        .arg(&f)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--materialize"), "{err}");
    // --socket outside serve/client.
    let out = td()
        .args(["--socket=/tmp/x.sock", "run"])
        .arg(&f)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--socket"), "{err}");
    // --occ outside serve: the validation rule belongs to the server's
    // commit path; anywhere else the flag would be a silent no-op.
    for cmd in ["run", "decide", "trace", "fragment"] {
        let out = td().args(["--occ=read-set", cmd]).arg(&f).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{cmd}: {out:?}");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(
            err.contains("--occ only applies to `serve`"),
            "{cmd}: {err}"
        );
    }
    // --occ with a value that names no validation rule.
    let out = td()
        .args(["--occ=eager", &db, "serve"])
        .arg(&f)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(
        err.contains("read-set") && err.contains("whole-db"),
        "diagnostic must name the valid modes: {err}"
    );
    std::fs::remove_dir_all(&dir).unwrap();
}

/// The client flag matrix: per-run flags are refused (requests execute
/// under the server's configuration), and --socket is mandatory.
#[test]
fn client_flag_matrix_rejections_exit_2() {
    for flags in [
        vec!["--db=/tmp", "client", "ping"],
        vec!["--threads=2", "client", "ping"],
        vec!["--subgoal-cache", "client", "ping"],
        vec!["--report=/tmp/r.json", "client", "ping"],
        vec!["--occ=whole-db", "client", "ping"],
    ] {
        let out = td().args(&flags).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{flags:?}: {out:?}");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("does not apply to `client`"), "{err}");
    }
    // No socket.
    let out = td().args(["client", "ping"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("requires --socket"), "{err}");
}

/// End-to-end over the real binary: start `td serve`, drive it with
/// `td client` transfers, check conservation and a serve run report.
#[test]
fn serve_and_client_round_trip_over_the_binary() {
    let f = write_temp("serve_e2e.td", SERVE_BANKING);
    let dir = serve_dir("e2e");
    let db_dir = dir.join("db");
    let socket = dir.join("td.sock");
    let report = dir.join("serve_report.json");
    let sock_flag = format!("--socket={}", socket.display());
    let server = td()
        .arg(format!("--db={}", db_dir.display()))
        .arg(&sock_flag)
        .arg(format!("--report={}", report.display()))
        .args(["serve"])
        .arg(&f)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    // Wait for the socket to accept.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    loop {
        let out = td().args(["client", "ping", &sock_flag]).output().unwrap();
        if out.status.success() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server did not come up: {:?}",
            server.wait_with_output()
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    // One committed transfer, one read-only query, one refused overdraft.
    let out = td()
        .args(["client", "run", "transfer(30, acct1, acct2)", &sock_flag])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let line = String::from_utf8(out.stdout).unwrap();
    assert!(line.starts_with("ok seq=1 "), "{line}");
    let out = td()
        .args(["client", "run", "balance(acct2, B)", &sock_flag])
        .output()
        .unwrap();
    let line = String::from_utf8(out.stdout).unwrap();
    assert!(line.contains("seq=-") && line.contains("B=80"), "{line}");
    let out = td()
        .args(["client", "run", "transfer(999, acct1, acct2)", &sock_flag])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    assert!(String::from_utf8(out.stdout).unwrap().starts_with("no "));
    // Counters visible over the wire, including the OCC mode and the
    // starvation counter.
    let out = td().args(["client", "stats", &sock_flag]).output().unwrap();
    let line = String::from_utf8(out.stdout).unwrap();
    assert!(line.contains("commits=1"), "{line}");
    assert!(line.contains("aborts=1"), "{line}");
    assert!(line.contains("occ=read-set"), "{line}");
    assert!(line.contains("retries_exhausted=0"), "{line}");
    assert!(line.contains("conflict_preds=-"), "{line}");
    // Stop and check the shutdown summary + report.
    let out = td().args(["client", "stop", &sock_flag]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let out = server.wait_with_output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("1 commits"), "{stdout}");
    let json = std::fs::read_to_string(&report).unwrap();
    assert!(json.contains("\"command\": \"serve\""), "{json}");
    assert!(json.contains("\"commits\": 1"), "{json}");
    assert!(json.contains("\"serve.commits\": 1"), "{json}");
    assert!(json.contains("\"occ\": \"read-set\""), "{json}");
    assert!(json.contains("\"retries_exhausted\": 0"), "{json}");
    assert!(json.contains("\"conflict_relations\": {}"), "{json}");
    std::fs::remove_dir_all(&dir).unwrap();
}

/// `--occ=whole-db` selects the fallback validation rule: the server comes
/// up, reports the mode in `stats`, and still serves transactions.
#[test]
fn serve_whole_db_occ_mode_round_trips() {
    let f = write_temp("serve_wholedb.td", SERVE_BANKING);
    let dir = serve_dir("wholedb");
    let socket = dir.join("td.sock");
    let sock_flag = format!("--socket={}", socket.display());
    let server = td()
        .arg(format!("--db={}", dir.join("db").display()))
        .arg(&sock_flag)
        .args(["--occ=whole-db", "serve"])
        .arg(&f)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    loop {
        let out = td().args(["client", "ping", &sock_flag]).output().unwrap();
        if out.status.success() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server did not come up: {:?}",
            server.wait_with_output()
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    let out = td()
        .args(["client", "run", "transfer(10, acct1, acct2)", &sock_flag])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let out = td().args(["client", "stats", &sock_flag]).output().unwrap();
    let line = String::from_utf8(out.stdout).unwrap();
    assert!(line.contains("occ=whole-db"), "{line}");
    let out = td().args(["client", "stop", &sock_flag]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let out = server.wait_with_output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("occ=whole-db"), "{stdout}");
    std::fs::remove_dir_all(&dir).unwrap();
}

// --- events and triggers ----------------------------------------------

const SERVE_LAB: &str = "base handled/2.\n\
    base fired/1.\n\
    init fired(0).\n\
    event sample/1.\n\
    event result/2.\n\
    handle(S, Q) <- fired(N) * del.fired(N) * M is N + 1 * ins.fired(M)\n\
        * ins.handled(S, Q).\n\
    on within(seq(sample(S), result(S, Q)), 60000) do handle(S, Q).\n";

/// The event fail-fast matrix: events and triggers only live in a server,
/// and every combination that would silently do nothing exits 2 instead.
#[test]
fn event_misuse_exits_2() {
    // Top-level `td event` is not a command; the diagnostic points at the
    // client verb that works.
    let out = td().args(["event", "sample(1)"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("td client event"), "{err}");
    // Trigger rules never fire outside a server: refused under every
    // one-shot command rather than parsing and silently doing nothing.
    let f = write_temp("event_matrix.td", SERVE_LAB);
    for cmd in ["run", "trace", "decide", "repl"] {
        let out = td().args([cmd]).arg(&f).output().unwrap();
        assert_eq!(out.status.code(), Some(2), "{cmd}: {out:?}");
        let err = String::from_utf8(out.stderr).unwrap();
        assert!(err.contains("triggers"), "{cmd}: {err}");
        assert!(err.contains("td serve"), "{cmd}: {err}");
    }
    // Event appends bypass view maintenance; --materialize over a program
    // with event relations is refused even without trigger rules.
    let g = write_temp(
        "event_mat.td",
        "base seen/1.\nevent ping/1.\n\
         watched(X) <- seen(X).\n?- watched(1).\n",
    );
    let out = td()
        .args(["--materialize", "run"])
        .arg(&g)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    let err = String::from_utf8(out.stderr).unwrap();
    assert!(err.contains("--materialize"), "{err}");
    assert!(err.contains("event"), "{err}");
    // Without the offending flag the same program runs fine (event
    // declarations alone are harmless outside serve — the history is
    // simply empty).
    let out = td().args(["run"]).arg(&g).output().unwrap();
    assert!(!out.status.success(), "{out:?}"); // goal fails: seen is empty
    let out = td().args(["fragment"]).arg(&f).output().unwrap();
    assert!(
        out.status.success(),
        "fragment classifies, never fires: {out:?}"
    );
}

/// End-to-end reactive flow over the real binary: ingest events with
/// `td client event`, watch the trigger land, and check the report's
/// events section.
#[test]
fn reactive_serve_over_the_binary() {
    let f = write_temp("reactive_e2e.td", SERVE_LAB);
    let dir = serve_dir("reactive");
    let db_dir = dir.join("db");
    let socket = dir.join("td.sock");
    let report = dir.join("reactive_report.json");
    let sock_flag = format!("--socket={}", socket.display());
    let server = td()
        .arg(format!("--db={}", db_dir.display()))
        .arg(&sock_flag)
        .arg(format!("--report={}", report.display()))
        .args(["serve"])
        .arg(&f)
        .stdout(Stdio::piped())
        .stderr(Stdio::piped())
        .spawn()
        .unwrap();
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    loop {
        let out = td().args(["client", "ping", &sock_flag]).output().unwrap();
        if out.status.success() {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "server did not come up: {:?}",
            server.wait_with_output()
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    // Ingest the pattern's two halves.
    let out = td()
        .args(["client", "event", "sample(7)", &sock_flag])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let line = String::from_utf8(out.stdout).unwrap();
    assert!(line.contains("matched=0"), "{line}");
    let out = td()
        .args(["client", "event", "result(7, 2)", &sock_flag])
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let line = String::from_utf8(out.stdout).unwrap();
    assert!(line.contains("matched=1"), "{line}");
    // The trigger runs on a background scheduler; poll until it lands.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(20);
    loop {
        let out = td().args(["client", "stats", &sock_flag]).output().unwrap();
        let line = String::from_utf8(out.stdout).unwrap();
        if line.contains("triggers_fired=1") {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "trigger did not fire: {line}"
        );
        std::thread::sleep(std::time::Duration::from_millis(25));
    }
    let out = td()
        .args(["client", "run", "handled(S, Q)", &sock_flag])
        .output()
        .unwrap();
    let line = String::from_utf8(out.stdout).unwrap();
    assert!(line.contains("S=7") && line.contains("Q=2"), "{line}");
    // A malformed event answers err (exit 1) without killing the server.
    let out = td()
        .args(["client", "event", "nope(1)", &sock_flag])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1), "{out:?}");
    // Stop; the summary and report carry the event counters.
    let out = td().args(["client", "stop", &sock_flag]).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let out = server.wait_with_output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("2 events ingested"), "{stdout}");
    assert!(stdout.contains("1 triggers fired"), "{stdout}");
    let json = std::fs::read_to_string(&report).unwrap();
    assert!(json.contains("\"events\": {\"ingested\": 2"), "{json}");
    assert!(json.contains("\"fired\": 1"), "{json}");
    assert!(json.contains("\"events.ingested\": 2"), "{json}");
    assert!(json.contains("\"triggers.fired\": 1"), "{json}");
    std::fs::remove_dir_all(&dir).unwrap();
}
