//! Integration tests for the `td` binary.

use std::io::Write as _;
use std::process::{Command, Stdio};

fn td() -> Command {
    Command::new(env!("CARGO_BIN_EXE_td"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("td-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    std::fs::write(&path, contents).unwrap();
    path
}

#[test]
fn run_executes_goals_and_prints_answers() {
    let f = write_temp(
        "run_ok.td",
        "base item/1. init item(w1).\n?- item(X) * del.item(X).\n",
    );
    let out = td().args(["run"]).arg(&f).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("X = w1"), "{stdout}");
    assert!(stdout.contains("yes"), "{stdout}");
    assert!(stdout.contains("db = {}"), "{stdout}");
}

#[test]
fn run_reports_failure_with_nonzero_exit() {
    let f = write_temp("run_fail.td", "base t/0.\n?- t.\n");
    let out = td().args(["run"]).arg(&f).output().unwrap();
    assert!(!out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("no"), "{stdout}");
}

#[test]
fn goals_run_in_sequence_sharing_state() {
    let f = write_temp(
        "run_seq.td",
        "base t/1.\n?- ins.t(1).\n?- t(1) * ins.t(2).\n",
    );
    let out = td().args(["run"]).arg(&f).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("db = {t(1), t(2)}"), "{stdout}");
}

#[test]
fn parse_errors_are_rendered_with_location() {
    let f = write_temp("bad.td", "base t/0.\nr <- ins.\n");
    let out = td().args(["run"]).arg(&f).output().unwrap();
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("expected"), "{stderr}");
    assert!(stderr.contains('^'), "{stderr}");
}

#[test]
fn fragment_classifies_programs() {
    let f = write_temp(
        "frag.td",
        "base t/0.\nsim <- step | sim.\nstep <- ins.t.\n?- sim.\n",
    );
    let out = td().args(["fragment"]).arg(&f).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("full TD"), "{stdout}");
    assert!(stdout.contains("RE-complete"), "{stdout}");
}

#[test]
fn decide_reports_configuration_counts() {
    let f = write_temp(
        "decide.td",
        "base t/0.\nloop <- { ins.t or loop }.\n?- loop.\n",
    );
    let out = td().args(["decide"]).arg(&f).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("executable: true"), "{stdout}");
    assert!(stdout.contains("configurations:"), "{stdout}");
}

#[test]
fn repl_answers_interactive_goals() {
    let f = write_temp("repl.td", "base t/1. init t(7).\n");
    let mut child = td()
        .args(["repl"])
        .arg(&f)
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .spawn()
        .unwrap();
    child
        .stdin
        .as_mut()
        .unwrap()
        .write_all(b"t(X)\n:db\n:quit\n")
        .unwrap();
    let out = child.wait_with_output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("X = 7"), "{stdout}");
    assert!(stdout.contains("{t(7)}"), "{stdout}");
}

#[test]
fn missing_file_and_bad_usage_exit_2() {
    let out = td().args(["run", "/nonexistent/x.td"]).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let out = td().output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let f = write_temp("ok.td", "base t/0.");
    let out = td().args(["bogus"]).arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}

#[test]
fn trace_prints_the_committed_story() {
    let f = write_temp(
        "trace.td",
        "base t/1.\nput <- ins.t(1) * t(X) * del.t(X).\n?- put.\n",
    );
    let out = td().args(["trace"]).arg(&f).output().unwrap();
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("unfold put"), "{stdout}");
    assert!(stdout.contains("ins.t(1)"), "{stdout}");
    assert!(stdout.contains("del.t(1)"), "{stdout}");
}

#[test]
fn strategy_and_budget_flags() {
    let f = write_temp(
        "flags.td",
        "base done/1.\nw(X) <- ins.done(X).\n?- w(a) | w(b).\n",
    );
    let out = td()
        .args(["--strategy=round-robin", "run"])
        .arg(&f)
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");

    // A tiny budget turns divergence into a clean error.
    let g = write_temp("diverge.td", "loop <- loop.\n?- loop.\n");
    let out = td()
        .args(["--max-steps=100", "run"])
        .arg(&g)
        .output()
        .unwrap();
    assert!(!out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("step budget exhausted"), "{stdout}");

    // Unknown options are rejected.
    let out = td().args(["--bogus", "run"]).arg(&f).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
}
