//! End-to-end smoke test for `td --report` / `--log-json`: runs the binary
//! on a corpus program, validates the emitted JSON against the
//! `td-run-report/v1` schema (via the td-bench validator CI also uses), and
//! checks that the sequential and deterministic-parallel backends agree on
//! the logical outcome counters.

use std::path::PathBuf;
use std::process::Command;

use td_bench::json::{validate_run_report, Value};

fn corpus(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../corpus")
        .join(name)
}

fn temp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("td-report-smoke");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(name)
}

fn td() -> Command {
    Command::new(env!("CARGO_BIN_EXE_td"))
}

fn run_with_report(args: &[&str], report: &PathBuf) -> Value {
    let out = td()
        .args(args)
        .arg(format!("--report={}", report.display()))
        .arg("run")
        .arg(corpus("iterated_protocol.td"))
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = std::fs::read_to_string(report).unwrap();
    validate_run_report(&text).expect("report must satisfy td-run-report/v1")
}

#[test]
fn sequential_report_is_schema_valid() {
    let path = temp("seq.json");
    let doc = run_with_report(&[], &path);
    assert_eq!(doc.path("outcome.ok").and_then(Value::as_bool), Some(true));
    assert_eq!(doc.get("command").and_then(Value::as_str), Some("run"));
    assert_eq!(
        doc.path("config.effective.backend.kind")
            .and_then(Value::as_str),
        Some("sequential")
    );
    // The search ran and committed updates.
    assert!(
        doc.path("metrics.counters.steps")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0
    );
    assert!(
        doc.path("metrics.counters.committed_updates")
            .unwrap()
            .as_f64()
            .unwrap()
            > 0.0
    );
    // Final state is present with a digest string.
    assert!(doc
        .path("final_state.digest")
        .and_then(Value::as_str)
        .is_some());
}

#[test]
fn deterministic_parallel_report_matches_sequential_logical_counters() {
    let seq = run_with_report(&[], &temp("cmp_seq.json"));
    let par = run_with_report(
        &["--threads=4", "--deterministic", "--subgoal-cache"],
        &temp("cmp_par.json"),
    );
    assert_eq!(
        par.path("config.effective.backend.kind")
            .and_then(Value::as_str),
        Some("parallel")
    );
    // Logical (backend-invariant) counters must agree between the
    // sequential and deterministic-parallel backends.
    for counter in ["solutions", "committed_updates", "failures"] {
        let path = format!("metrics.counters.{counter}");
        assert_eq!(
            seq.path(&path).and_then(Value::as_f64).unwrap_or(0.0),
            par.path(&path).and_then(Value::as_f64).unwrap_or(0.0),
            "counter `{counter}` diverged between backends"
        );
    }
    // Same witness → same final database.
    assert_eq!(
        seq.path("final_state.digest").and_then(Value::as_str),
        par.path("final_state.digest").and_then(Value::as_str),
    );
    assert_eq!(
        seq.path("final_state.tuples").and_then(Value::as_f64),
        par.path("final_state.tuples").and_then(Value::as_f64),
    );
    // The parallel run attached a cache, so its report carries one.
    assert!(matches!(par.get("cache"), Some(Value::Obj(_))), "{par:?}");
}

#[test]
fn log_json_emits_span_events() {
    let log = temp("events.jsonl");
    let out = td()
        .arg(format!("--log-json={}", log.display()))
        .arg("run")
        .arg(corpus("iterated_protocol.td"))
        .output()
        .unwrap();
    assert!(out.status.success(), "{out:?}");
    let text = std::fs::read_to_string(&log).unwrap();
    let lines: Vec<&str> = text.lines().collect();
    assert!(!lines.is_empty());
    // Every line is a self-contained JSON object with a seq and an event.
    for line in &lines {
        let ev = td_bench::json::parse(line).expect("JSONL line must parse");
        assert!(ev.get("seq").is_some(), "{line}");
        assert!(ev.get("event").and_then(Value::as_str).is_some(), "{line}");
    }
    // The run is bracketed by a solve span.
    assert!(lines[0].contains("span_enter"), "{}", lines[0]);
    assert!(text.contains("\"phase\": \"solve\""), "{text}");
}

#[test]
fn misconfigured_flag_combinations_fail_fast() {
    let file = corpus("iterated_protocol.td");
    // --seed without --strategy=random.
    let out = td().args(["--seed=7", "run"]).arg(&file).output().unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--strategy=random"));
    // --cache-capacity without --subgoal-cache.
    let out = td()
        .args(["--cache-capacity=64", "run"])
        .arg(&file)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("--subgoal-cache"));
    // trace with --subgoal-cache (tracing disables the cache).
    let out = td()
        .args(["--subgoal-cache", "trace"])
        .arg(&file)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
    assert!(String::from_utf8_lossy(&out.stderr).contains("disables the cache"));
    // --report on a command that never writes one.
    let out = td()
        .args(["--report=/tmp/nope.json", "fragment"])
        .arg(&file)
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(2), "{out:?}");
}
