//! # td-db — the deductive-database substrate
//!
//! Transaction Datalog interleaves many concurrent processes over one shared
//! database, and its all-or-nothing transaction semantics means failed
//! executions must roll back exactly. This crate provides the storage layer
//! shaped by those two demands:
//!
//! * [`Database`] — an immutable **snapshot** database: updates return new
//!   versions; old versions stay valid. The engine's choicepoints and
//!   isolation blocks are therefore O(1) to establish and to roll back.
//! * [`Relation`] — a persistent tuple set (hash array mapped trie,
//!   [`hamt`]), with structural sharing across versions.
//! * [`Tuple`] — immutable ground tuples (see also the [`tuple!`] macro).
//! * [`Delta`] — ordered update logs for monitoring and replay.
//!
//! TD is a *safe* language: the schema and domain are fixed by the program
//! and initial database, so the store never needs schema evolution, and
//! database size stays polynomial in the input (§4 of the paper).

pub mod database;
pub mod delta;
pub mod hamt;
pub mod relation;
pub mod tuple;

pub use database::{Database, DbError};
pub use delta::{Delta, DeltaOp};
pub use relation::Relation;
pub use tuple::Tuple;
