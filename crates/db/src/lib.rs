//! # td-db — the deductive-database substrate
//!
//! Transaction Datalog interleaves many concurrent processes over one shared
//! database, and its all-or-nothing transaction semantics means failed
//! executions must roll back exactly. This crate provides the storage layer
//! shaped by those two demands:
//!
//! * [`Database`] — an immutable **snapshot** database: updates return new
//!   versions; old versions stay valid. The engine's choicepoints and
//!   isolation blocks are therefore O(1) to establish and to roll back.
//! * [`Relation`] — a persistent tuple set (hash array mapped trie,
//!   [`hamt`]), with structural sharing across versions.
//! * [`Tuple`] — immutable ground tuples (see also the [`tuple!`] macro).
//! * [`Delta`] — ordered update logs for monitoring and replay.
//!
//! TD is a *safe* language: the schema and domain are fixed by the program
//! and initial database, so the store never needs schema evolution, and
//! database size stays polynomial in the input (§4 of the paper).

pub mod counted;
pub mod database;
pub mod delta;
pub mod hamt;
pub mod ord;
pub mod read_set;
pub mod relation;
pub mod tuple;

pub use counted::{CountedRelation, Transition};
pub use database::{Database, DbError};
pub use delta::{Delta, DeltaOp};
pub use read_set::ReadSet;
pub use relation::Relation;
pub use tuple::Tuple;

/// The parallel search backend shares snapshots across worker threads, so
/// every storage type must be `Send + Sync`. Compile-time proof; a regression
/// (e.g. an `Rc` or `Cell` slipping into a node type) fails the build here.
#[allow(dead_code)]
fn _assert_storage_is_send_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Database>();
    assert_send_sync::<Relation>();
    assert_send_sync::<CountedRelation>();
    assert_send_sync::<Tuple>();
    assert_send_sync::<Delta>();
    assert_send_sync::<ReadSet>();
    assert_send_sync::<hamt::Set<Tuple>>();
    assert_send_sync::<ord::OrdSet<Tuple>>();
}
