//! A persistent ordered set (treap) used as the sorted secondary index on
//! relations.
//!
//! [`crate::hamt::Set`] answers membership in O(log n) but can only *scan*
//! for pattern matches. Selection with a bound prefix of columns — the
//! engine's per-step hot path when resolving atoms against base relations —
//! wants a *range probe*: tuples sort lexicographically, so all tuples
//! sharing a bound prefix are contiguous in sorted order. This treap provides
//! that probe persistently: insert/remove are O(log n) path-copying
//! operations sharing structure between versions, exactly like the HAMT, so
//! database snapshots stay O(1).
//!
//! Priorities are derived by hashing the item, not drawn from an RNG, so a
//! given set of items always produces one canonical tree shape regardless of
//! insertion order. That keeps the structure deterministic across engine
//! strategies and across threads of the parallel search backend.

use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

fn priority_of<T: Hash>(item: &T) -> u64 {
    let mut h = DefaultHasher::new();
    // Fixed tweak so treap priorities differ from the HAMT's hash stream.
    0x7d5f_u16.hash(&mut h);
    item.hash(&mut h);
    h.finish()
}

#[derive(Debug)]
struct Node<T> {
    item: T,
    prio: u64,
    left: Option<Arc<Node<T>>>,
    right: Option<Arc<Node<T>>>,
}

type Link<T> = Option<Arc<Node<T>>>;

/// A persistent sorted set with structural sharing between versions.
#[derive(Clone, Debug)]
pub struct OrdSet<T> {
    root: Link<T>,
    len: usize,
}

impl<T> Default for OrdSet<T> {
    fn default() -> OrdSet<T> {
        OrdSet { root: None, len: 0 }
    }
}

impl<T: Clone + Ord + Hash> OrdSet<T> {
    /// Empty set.
    pub fn new() -> OrdSet<T> {
        OrdSet::default()
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no items.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Membership test.
    pub fn contains(&self, item: &T) -> bool {
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            match item.cmp(&n.item) {
                Ordering::Less => cur = n.left.as_deref(),
                Ordering::Greater => cur = n.right.as_deref(),
                Ordering::Equal => return true,
            }
        }
        false
    }

    /// Insert; returns the new set and whether it grew.
    pub fn insert(&self, item: &T) -> (OrdSet<T>, bool) {
        let (root, grew) = insert_node(&self.root, item);
        (
            OrdSet {
                root,
                len: self.len + usize::from(grew),
            },
            grew,
        )
    }

    /// Remove; returns the new set and whether it shrank.
    pub fn remove(&self, item: &T) -> (OrdSet<T>, bool) {
        let (root, shrank) = remove_node(&self.root, item);
        (
            OrdSet {
                root,
                len: self.len - usize::from(shrank),
            },
            shrank,
        )
    }

    /// Visit, in sorted order, every item the comparator maps to
    /// [`Ordering::Equal`]. The comparator must be monotone over the set's
    /// order — `Less` for items below the range, `Equal` inside it,
    /// `Greater` above it — which makes this a two-sided binary descent:
    /// O(log n + matches) rather than a scan.
    pub fn for_each_in_range(&self, cmp: impl Fn(&T) -> Ordering, mut f: impl FnMut(&T)) {
        range_visit(&self.root, &cmp, &mut f);
    }

    /// Visit every item in sorted order.
    pub fn for_each(&self, mut f: impl FnMut(&T)) {
        in_order(&self.root, &mut f);
    }

    /// All items in sorted order.
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(|t| out.push(t.clone()));
        out
    }
}

impl<T: Clone + Ord + Hash> FromIterator<T> for OrdSet<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> OrdSet<T> {
        let mut s = OrdSet::new();
        for item in iter {
            s = s.insert(&item).0;
        }
        s
    }
}

fn leaf<T>(item: T, prio: u64, left: Link<T>, right: Link<T>) -> Link<T> {
    Some(Arc::new(Node {
        item,
        prio,
        left,
        right,
    }))
}

fn insert_node<T: Clone + Ord + Hash>(link: &Link<T>, item: &T) -> (Link<T>, bool) {
    let Some(n) = link else {
        return (leaf(item.clone(), priority_of(item), None, None), true);
    };
    match item.cmp(&n.item) {
        Ordering::Equal => (link.clone(), false),
        Ordering::Less => {
            let (new_left, grew) = insert_node(&n.left, item);
            if !grew {
                return (link.clone(), false);
            }
            // Restore the heap property: a higher-priority child rotates up.
            let l = new_left.as_ref().expect("insert returns a node");
            if l.prio > n.prio {
                // Right rotation: left child becomes the root.
                let rotated = leaf(n.item.clone(), n.prio, l.right.clone(), n.right.clone());
                (leaf(l.item.clone(), l.prio, l.left.clone(), rotated), true)
            } else {
                (
                    leaf(n.item.clone(), n.prio, new_left, n.right.clone()),
                    true,
                )
            }
        }
        Ordering::Greater => {
            let (new_right, grew) = insert_node(&n.right, item);
            if !grew {
                return (link.clone(), false);
            }
            let r = new_right.as_ref().expect("insert returns a node");
            if r.prio > n.prio {
                // Left rotation: right child becomes the root.
                let rotated = leaf(n.item.clone(), n.prio, n.left.clone(), r.left.clone());
                (leaf(r.item.clone(), r.prio, rotated, r.right.clone()), true)
            } else {
                (
                    leaf(n.item.clone(), n.prio, n.left.clone(), new_right),
                    true,
                )
            }
        }
    }
}

/// Merge two treaps where every item of `a` precedes every item of `b`.
fn merge<T: Clone + Ord + Hash>(a: &Link<T>, b: &Link<T>) -> Link<T> {
    match (a, b) {
        (None, _) => b.clone(),
        (_, None) => a.clone(),
        (Some(x), Some(y)) => {
            if x.prio >= y.prio {
                leaf(x.item.clone(), x.prio, x.left.clone(), merge(&x.right, b))
            } else {
                leaf(y.item.clone(), y.prio, merge(a, &y.left), y.right.clone())
            }
        }
    }
}

fn remove_node<T: Clone + Ord + Hash>(link: &Link<T>, item: &T) -> (Link<T>, bool) {
    let Some(n) = link else {
        return (None, false);
    };
    match item.cmp(&n.item) {
        Ordering::Equal => (merge(&n.left, &n.right), true),
        Ordering::Less => {
            let (new_left, shrank) = remove_node(&n.left, item);
            if !shrank {
                return (link.clone(), false);
            }
            (
                leaf(n.item.clone(), n.prio, new_left, n.right.clone()),
                true,
            )
        }
        Ordering::Greater => {
            let (new_right, shrank) = remove_node(&n.right, item);
            if !shrank {
                return (link.clone(), false);
            }
            (
                leaf(n.item.clone(), n.prio, n.left.clone(), new_right),
                true,
            )
        }
    }
}

fn in_order<T>(link: &Link<T>, f: &mut impl FnMut(&T)) {
    if let Some(n) = link {
        in_order(&n.left, f);
        f(&n.item);
        in_order(&n.right, f);
    }
}

fn range_visit<T>(link: &Link<T>, cmp: &impl Fn(&T) -> Ordering, f: &mut impl FnMut(&T)) {
    if let Some(n) = link {
        match cmp(&n.item) {
            // Node below the range: everything left of it is below too.
            Ordering::Less => range_visit(&n.right, cmp, f),
            // Node above the range: prune the right subtree.
            Ordering::Greater => range_visit(&n.left, cmp, f),
            Ordering::Equal => {
                range_visit(&n.left, cmp, f);
                f(&n.item);
                range_visit(&n.right, cmp, f);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let s: OrdSet<u64> = OrdSet::new();
        let (s, grew) = s.insert(&5);
        assert!(grew);
        let (s, grew) = s.insert(&5);
        assert!(!grew);
        assert_eq!(s.len(), 1);
        assert!(s.contains(&5));
        let (s, shrank) = s.remove(&5);
        assert!(shrank);
        assert!(s.is_empty());
        let (_, shrank) = s.remove(&5);
        assert!(!shrank);
    }

    #[test]
    fn iterates_in_sorted_order() {
        let items = [9u64, 3, 7, 1, 8, 2, 6, 0, 5, 4];
        let s: OrdSet<u64> = items.iter().copied().collect();
        assert_eq!(s.to_vec(), (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn shape_is_canonical_regardless_of_insertion_order() {
        let a: OrdSet<u64> = (0..200).collect();
        let b: OrdSet<u64> = (0..200).rev().collect();
        // Same canonical shape means identical in-order AND identical
        // pre-order traversals.
        fn pre_order(link: &Link<u64>, out: &mut Vec<u64>) {
            if let Some(n) = link {
                out.push(n.item);
                pre_order(&n.left, out);
                pre_order(&n.right, out);
            }
        }
        let (mut pa, mut pb) = (Vec::new(), Vec::new());
        pre_order(&a.root, &mut pa);
        pre_order(&b.root, &mut pb);
        assert_eq!(pa, pb);
    }

    #[test]
    fn snapshots_are_isolated() {
        let base: OrdSet<u64> = (0..50).collect();
        let snapshot = base.clone();
        let mut working = base;
        for v in 50..100 {
            working = working.insert(&v).0;
            working = working.remove(&(v - 50)).0;
        }
        assert_eq!(snapshot.len(), 50);
        assert_eq!(snapshot.to_vec(), (0..50).collect::<Vec<_>>());
        assert_eq!(working.to_vec(), (50..100).collect::<Vec<_>>());
    }

    #[test]
    fn range_probe_visits_exactly_the_range() {
        let s: OrdSet<(u64, u64)> = (0..10).flat_map(|a| (0..10).map(move |b| (a, b))).collect();
        let mut seen = Vec::new();
        s.for_each_in_range(|&(a, _)| a.cmp(&4), |t| seen.push(*t));
        assert_eq!(seen, (0..10).map(|b| (4, b)).collect::<Vec<_>>());
    }

    #[test]
    fn range_probe_on_empty_range_is_empty() {
        let s: OrdSet<u64> = (0..10).map(|v| v * 2).collect();
        let mut seen = Vec::new();
        s.for_each_in_range(|v| v.cmp(&7), |t| seen.push(*t));
        assert!(seen.is_empty());
    }

    #[test]
    fn behaves_like_btreeset_under_random_ops() {
        use std::collections::BTreeSet;
        // Deterministic pseudo-random op stream.
        let mut state = 0x1234_5678_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut model: BTreeSet<u64> = BTreeSet::new();
        let mut s: OrdSet<u64> = OrdSet::new();
        for _ in 0..2000 {
            let v = next() % 100;
            if next() % 2 == 0 {
                let (ns, grew) = s.insert(&v);
                assert_eq!(grew, model.insert(v));
                s = ns;
            } else {
                let (ns, shrank) = s.remove(&v);
                assert_eq!(shrank, model.remove(&v));
                s = ns;
            }
            assert_eq!(s.len(), model.len());
        }
        assert_eq!(s.to_vec(), model.iter().copied().collect::<Vec<_>>());
    }
}
