//! A persistent hash set (hash array mapped trie).
//!
//! The TD engine backtracks over database states constantly: every
//! choicepoint snapshots the database, and isolation blocks roll whole
//! sub-executions back. Copying relations eagerly would make backtracking
//! O(database); this HAMT makes a snapshot a pointer copy and each
//! insert/remove O(log n) with structural sharing between versions.
//!
//! Layout: 64-bit hashes consumed 5 bits per level (fanout 32, max depth 13);
//! full-collision buckets at the bottom. Nodes are `Arc`-shared between
//! versions.

use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;

const BITS: u32 = 5;
const FANOUT: usize = 1 << BITS; // 32
const MASK: u64 = (FANOUT as u64) - 1;
const MAX_SHIFT: u32 = 60; // beyond this, fall into collision buckets

fn hash_of<T: Hash>(v: &T) -> u64 {
    let mut h = DefaultHasher::new();
    v.hash(&mut h);
    h.finish()
}

/// Seed separating the high digest lane from the trie-placement hash.
const DIGEST_SEED: u64 = 0x9e37_79b9_7f4a_7c15;

/// 128-bit member hash for the commutative set digest: the trie hash in the
/// low lane, an independently seeded hash in the high lane. 64 bits is not
/// enough once digests key long-lived memo tables — a silent collision there
/// would merge distinct database states.
fn hash128_of<T: Hash>(v: &T) -> u128 {
    let lo = hash_of(v);
    let mut h = DefaultHasher::new();
    DIGEST_SEED.hash(&mut h);
    v.hash(&mut h);
    ((h.finish() as u128) << 64) | lo as u128
}

#[derive(Clone, Debug)]
enum Node<T> {
    /// One or more entries whose hashes agree on all consumed bits.
    /// `entries` is non-empty; more than one entry means a hash collision.
    Leaf { hash: u64, entries: Vec<T> },
    /// Sparse interior node: `bitmap` marks which of the 32 slots are
    /// populated; `children[i]` is the child for the i-th set bit.
    Branch {
        bitmap: u32,
        children: Vec<Arc<Node<T>>>,
    },
}

impl<T: Clone + Eq + Hash> Node<T> {
    fn contains(&self, hash: u64, value: &T, shift: u32) -> bool {
        match self {
            Node::Leaf { hash: h, entries } => *h == hash && entries.contains(value),
            Node::Branch { bitmap, children } => {
                let idx = ((hash >> shift) & MASK) as u32;
                let bit = 1u32 << idx;
                if bitmap & bit == 0 {
                    return false;
                }
                let pos = (bitmap & (bit - 1)).count_ones() as usize;
                children[pos].contains(hash, value, shift + BITS)
            }
        }
    }

    /// Insert, returning the new node and whether the set grew.
    fn insert(&self, hash: u64, value: &T, shift: u32) -> (Node<T>, bool) {
        match self {
            Node::Leaf { hash: h, entries } => {
                if *h == hash {
                    if entries.contains(value) {
                        (self.clone(), false)
                    } else {
                        let mut entries = entries.clone();
                        entries.push(value.clone());
                        (Node::Leaf { hash, entries }, true)
                    }
                } else if shift > MAX_SHIFT {
                    // Exhausted hash bits with different hashes: impossible —
                    // 64 bits / 5 leaves residue at shift 60..64 distinct.
                    // Treat as collision bucket for safety.
                    let mut entries = entries.clone();
                    entries.push(value.clone());
                    (Node::Leaf { hash: *h, entries }, true)
                } else {
                    // Split: push the existing leaf down and insert.
                    let old_idx = ((*h >> shift) & MASK) as u32;
                    let new_idx = ((hash >> shift) & MASK) as u32;
                    if old_idx == new_idx {
                        let (child, grew) = self.insert(hash, value, shift + BITS);
                        (
                            Node::Branch {
                                bitmap: 1 << old_idx,
                                children: vec![Arc::new(child)],
                            },
                            grew,
                        )
                    } else {
                        let new_leaf = Node::Leaf {
                            hash,
                            entries: vec![value.clone()],
                        };
                        let (bitmap, children) = if old_idx < new_idx {
                            (
                                (1 << old_idx) | (1 << new_idx),
                                vec![Arc::new(self.clone()), Arc::new(new_leaf)],
                            )
                        } else {
                            (
                                (1 << old_idx) | (1 << new_idx),
                                vec![Arc::new(new_leaf), Arc::new(self.clone())],
                            )
                        };
                        (Node::Branch { bitmap, children }, true)
                    }
                }
            }
            Node::Branch { bitmap, children } => {
                let idx = ((hash >> shift) & MASK) as u32;
                let bit = 1u32 << idx;
                let pos = (bitmap & (bit - 1)).count_ones() as usize;
                if bitmap & bit != 0 {
                    let (child, grew) = children[pos].insert(hash, value, shift + BITS);
                    if !grew {
                        return (self.clone(), false);
                    }
                    let mut children = children.clone();
                    children[pos] = Arc::new(child);
                    (
                        Node::Branch {
                            bitmap: *bitmap,
                            children,
                        },
                        true,
                    )
                } else {
                    let mut children = children.clone();
                    children.insert(
                        pos,
                        Arc::new(Node::Leaf {
                            hash,
                            entries: vec![value.clone()],
                        }),
                    );
                    (
                        Node::Branch {
                            bitmap: bitmap | bit,
                            children,
                        },
                        true,
                    )
                }
            }
        }
    }

    /// Remove, returning the new node (None if the subtree became empty) and
    /// whether the set shrank.
    fn remove(&self, hash: u64, value: &T, shift: u32) -> (Option<Node<T>>, bool) {
        match self {
            Node::Leaf { hash: h, entries } => {
                if *h != hash || !entries.contains(value) {
                    return (Some(self.clone()), false);
                }
                if entries.len() == 1 {
                    (None, true)
                } else {
                    let entries = entries.iter().filter(|e| *e != value).cloned().collect();
                    (Some(Node::Leaf { hash: *h, entries }), true)
                }
            }
            Node::Branch { bitmap, children } => {
                let idx = ((hash >> shift) & MASK) as u32;
                let bit = 1u32 << idx;
                if bitmap & bit == 0 {
                    return (Some(self.clone()), false);
                }
                let pos = (bitmap & (bit - 1)).count_ones() as usize;
                let (child, shrank) = children[pos].remove(hash, value, shift + BITS);
                if !shrank {
                    return (Some(self.clone()), false);
                }
                match child {
                    Some(c) => {
                        let mut children = children.clone();
                        children[pos] = Arc::new(c);
                        // Collapse a single-leaf branch upward.
                        if children.len() == 1 {
                            if let Node::Leaf { .. } = &*children[0] {
                                return (Some((*children[0]).clone()), true);
                            }
                        }
                        (
                            Some(Node::Branch {
                                bitmap: *bitmap,
                                children,
                            }),
                            true,
                        )
                    }
                    None => {
                        if children.len() == 1 {
                            (None, true)
                        } else {
                            let mut children = children.clone();
                            children.remove(pos);
                            let bitmap = bitmap & !bit;
                            if children.len() == 1 {
                                if let Node::Leaf { .. } = &*children[0] {
                                    return (Some((*children[0]).clone()), true);
                                }
                            }
                            (Some(Node::Branch { bitmap, children }), true)
                        }
                    }
                }
            }
        }
    }

    fn for_each(&self, f: &mut impl FnMut(&T)) {
        match self {
            Node::Leaf { entries, .. } => {
                for e in entries {
                    f(e);
                }
            }
            Node::Branch { children, .. } => {
                for c in children {
                    c.for_each(f);
                }
            }
        }
    }
}

/// A persistent (immutable, structurally shared) hash set.
///
/// `clone()` is O(1); [`Set::insert`] and [`Set::remove`] return new versions
/// sharing all untouched structure with the original.
#[derive(Clone, Debug)]
pub struct Set<T> {
    root: Option<Arc<Node<T>>>,
    len: usize,
    /// Commutative (xor) hash of all 128-bit member hashes; lets two
    /// versions be compared or hashed in O(1).
    sethash: u128,
}

impl<T> Default for Set<T> {
    fn default() -> Set<T> {
        Set {
            root: None,
            len: 0,
            sethash: 0,
        }
    }
}

impl<T: Clone + Eq + Hash> Set<T> {
    /// The empty set.
    pub fn new() -> Set<T> {
        Set::default()
    }

    /// Number of members.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The commutative member-hash digest. Equal sets have equal digests;
    /// unequal sets collide with probability ~2⁻¹²⁸ per comparison.
    pub fn digest(&self) -> u128 {
        self.sethash
    }

    /// Membership test.
    pub fn contains(&self, value: &T) -> bool {
        match &self.root {
            None => false,
            Some(root) => root.contains(hash_of(value), value, 0),
        }
    }

    /// Insert, returning the new set and whether it grew.
    pub fn insert(&self, value: &T) -> (Set<T>, bool) {
        let h = hash_of(value);
        match &self.root {
            None => (
                Set {
                    root: Some(Arc::new(Node::Leaf {
                        hash: h,
                        entries: vec![value.clone()],
                    })),
                    len: 1,
                    sethash: hash128_of(value),
                },
                true,
            ),
            Some(root) => {
                let (node, grew) = root.insert(h, value, 0);
                if grew {
                    (
                        Set {
                            root: Some(Arc::new(node)),
                            len: self.len + 1,
                            sethash: self.sethash ^ hash128_of(value),
                        },
                        true,
                    )
                } else {
                    (self.clone(), false)
                }
            }
        }
    }

    /// Remove, returning the new set and whether it shrank.
    pub fn remove(&self, value: &T) -> (Set<T>, bool) {
        let h = hash_of(value);
        match &self.root {
            None => (self.clone(), false),
            Some(root) => {
                let (node, shrank) = root.remove(h, value, 0);
                if shrank {
                    (
                        Set {
                            root: node.map(Arc::new),
                            len: self.len - 1,
                            sethash: self.sethash ^ hash128_of(value),
                        },
                        true,
                    )
                } else {
                    (self.clone(), false)
                }
            }
        }
    }

    /// Visit every member (unspecified order).
    pub fn for_each(&self, mut f: impl FnMut(&T)) {
        if let Some(root) = &self.root {
            root.for_each(&mut f);
        }
    }

    /// Collect members into a vector (unspecified order).
    pub fn to_vec(&self) -> Vec<T> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(|t| out.push(t.clone()));
        out
    }

    /// Iterate over members (unspecified order) without collecting.
    pub fn iter(&self) -> Iter<'_, T> {
        Iter {
            stack: self.root.iter().map(|r| (&**r, 0)).collect(),
        }
    }
}

/// Borrowing iterator over a [`Set`], depth-first over the trie.
pub struct Iter<'a, T> {
    /// (node, next index into its children/entries)
    stack: Vec<(&'a Node<T>, usize)>,
}

impl<'a, T> Iterator for Iter<'a, T> {
    type Item = &'a T;

    fn next(&mut self) -> Option<&'a T> {
        while let Some((node, idx)) = self.stack.pop() {
            match node {
                Node::Leaf { entries, .. } => {
                    if idx < entries.len() {
                        if idx + 1 < entries.len() {
                            self.stack.push((node, idx + 1));
                        }
                        return Some(&entries[idx]);
                    }
                }
                Node::Branch { children, .. } => {
                    if idx < children.len() {
                        self.stack.push((node, idx + 1));
                        self.stack.push((&children[idx], 0));
                    }
                }
            }
        }
        None
    }
}

impl<'a, T: Clone + Eq + Hash> IntoIterator for &'a Set<T> {
    type Item = &'a T;
    type IntoIter = Iter<'a, T>;

    fn into_iter(self) -> Iter<'a, T> {
        self.iter()
    }
}

impl<T: Clone + Eq + Hash> PartialEq for Set<T> {
    fn eq(&self, other: &Set<T>) -> bool {
        if self.len != other.len || self.sethash != other.sethash {
            return false;
        }
        if let (Some(a), Some(b)) = (&self.root, &other.root) {
            if Arc::ptr_eq(a, b) {
                return true;
            }
        }
        // Verify structurally: every member of self is in other.
        let mut equal = true;
        self.for_each(|t| {
            if equal && !other.contains(t) {
                equal = false;
            }
        });
        equal
    }
}

impl<T: Clone + Eq + Hash> Eq for Set<T> {}

impl<T: Clone + Eq + Hash> FromIterator<T> for Set<T> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Set<T> {
        let mut s = Set::new();
        for v in iter {
            s = s.insert(&v).0;
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use std::collections::HashSet;

    #[test]
    fn empty_set() {
        let s: Set<u64> = Set::new();
        assert_eq!(s.len(), 0);
        assert!(s.is_empty());
        assert!(!s.contains(&1));
        assert_eq!(s.digest(), 0);
    }

    #[test]
    fn insert_and_contains() {
        let s = Set::new();
        let (s, grew) = s.insert(&42u64);
        assert!(grew);
        assert!(s.contains(&42));
        assert!(!s.contains(&43));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn duplicate_insert_is_noop() {
        let (s, _) = Set::new().insert(&7u64);
        let (s2, grew) = s.insert(&7);
        assert!(!grew);
        assert_eq!(s2.len(), 1);
        assert_eq!(s, s2);
    }

    #[test]
    fn remove_present_and_absent() {
        let (s, _) = Set::new().insert(&1u64);
        let (s, _) = s.insert(&2);
        let (s2, shrank) = s.remove(&1);
        assert!(shrank);
        assert!(!s2.contains(&1));
        assert!(s2.contains(&2));
        let (s3, shrank) = s2.remove(&99);
        assert!(!shrank);
        assert_eq!(s3.len(), 1);
    }

    #[test]
    fn versions_are_independent() {
        let (v1, _) = Set::new().insert(&10u64);
        let (v2, _) = v1.insert(&20);
        let (v3, _) = v1.remove(&10);
        assert!(v1.contains(&10) && !v1.contains(&20));
        assert!(v2.contains(&10) && v2.contains(&20));
        assert!(v3.is_empty());
    }

    #[test]
    fn many_inserts_then_removes() {
        let mut s: Set<u64> = Set::new();
        for i in 0..2000 {
            let (next, grew) = s.insert(&i);
            assert!(grew);
            s = next;
        }
        assert_eq!(s.len(), 2000);
        for i in 0..2000 {
            assert!(s.contains(&i), "missing {i}");
        }
        for i in (0..2000).step_by(2) {
            let (next, shrank) = s.remove(&i);
            assert!(shrank);
            s = next;
        }
        assert_eq!(s.len(), 1000);
        for i in 0..2000u64 {
            assert_eq!(s.contains(&i), i % 2 == 1);
        }
    }

    #[test]
    fn digest_is_order_independent() {
        let a: Set<u64> = [1, 2, 3].into_iter().collect();
        let b: Set<u64> = [3, 1, 2].into_iter().collect();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a, b);
    }

    #[test]
    fn digest_returns_after_insert_remove_cycle() {
        let a: Set<u64> = [1, 2, 3].into_iter().collect();
        let d = a.digest();
        let (b, _) = a.insert(&99);
        assert_ne!(b.digest(), d);
        let (c, _) = b.remove(&99);
        assert_eq!(c.digest(), d);
        assert_eq!(c, a);
    }

    /// A type with a pathological hash, to exercise collision buckets.
    #[derive(Clone, PartialEq, Eq, Debug)]
    struct Collider(u32);
    impl Hash for Collider {
        fn hash<H: Hasher>(&self, state: &mut H) {
            // Everything collides.
            0u64.hash(state);
        }
    }

    #[test]
    fn full_hash_collisions_are_handled() {
        let mut s: Set<Collider> = Set::new();
        for i in 0..50 {
            s = s.insert(&Collider(i)).0;
        }
        assert_eq!(s.len(), 50);
        for i in 0..50 {
            assert!(s.contains(&Collider(i)));
        }
        for i in 0..50 {
            let (next, shrank) = s.remove(&Collider(i));
            assert!(shrank);
            s = next;
        }
        assert!(s.is_empty());
    }

    #[test]
    fn iterator_visits_every_member_once() {
        let s: Set<u64> = (0..300).collect();
        let mut seen = HashSet::new();
        for v in &s {
            assert!(seen.insert(*v), "duplicate {v}");
        }
        assert_eq!(seen.len(), 300);
        assert_eq!(s.iter().count(), 300);
        // collision buckets iterate fully too
        let mut c: Set<Collider> = Set::new();
        for i in 0..10 {
            c = c.insert(&Collider(i)).0;
        }
        assert_eq!(c.iter().count(), 10);
    }

    #[test]
    fn for_each_visits_every_member_once() {
        let s: Set<u64> = (0..500).collect();
        let mut seen = HashSet::new();
        s.for_each(|v| {
            assert!(seen.insert(*v), "duplicate visit of {v}");
        });
        assert_eq!(seen.len(), 500);
    }

    proptest! {
        #[test]
        fn behaves_like_std_hashset(ops in proptest::collection::vec((any::<bool>(), 0u64..200), 0..400)) {
            let mut model: HashSet<u64> = HashSet::new();
            let mut s: Set<u64> = Set::new();
            for (is_insert, v) in ops {
                if is_insert {
                    let (next, grew) = s.insert(&v);
                    prop_assert_eq!(grew, model.insert(v));
                    s = next;
                } else {
                    let (next, shrank) = s.remove(&v);
                    prop_assert_eq!(shrank, model.remove(&v));
                    s = next;
                }
                prop_assert_eq!(s.len(), model.len());
            }
            for v in 0..200u64 {
                prop_assert_eq!(s.contains(&v), model.contains(&v));
            }
            let expected: Set<u64> = model.iter().copied().collect();
            prop_assert_eq!(s.digest(), expected.digest());
            prop_assert_eq!(s, expected);
        }

        #[test]
        fn snapshot_isolation(base in proptest::collection::hash_set(0u64..100, 0..50),
                              extra in proptest::collection::vec(0u64..100, 0..50)) {
            let snapshot: Set<u64> = base.iter().copied().collect();
            let mut working = snapshot.clone();
            for v in &extra {
                working = working.insert(v).0;
                working = working.remove(&(v / 2)).0;
            }
            // The snapshot must be unaffected by later edits.
            prop_assert_eq!(snapshot.len(), base.len());
            for v in &base {
                prop_assert!(snapshot.contains(v));
            }
        }
    }
}
