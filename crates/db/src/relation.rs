//! A single stored relation: a persistent set of tuples of fixed arity.

use crate::hamt;
use crate::tuple::Tuple;
use td_core::Value;

/// A persistent relation. Like [`crate::Database`], relations are immutable
/// values: `insert`/`remove` return new versions sharing structure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Relation {
    arity: usize,
    tuples: hamt::Set<Tuple>,
}

impl Relation {
    /// Empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            tuples: hamt::Set::new(),
        }
    }

    /// The arity every member tuple must have.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Commutative digest of the tuple set (see [`hamt::Set::digest`]).
    pub fn digest(&self) -> u64 {
        self.tuples.digest()
    }

    /// Membership test.
    ///
    /// # Panics
    /// Debug-asserts the tuple arity.
    pub fn contains(&self, t: &Tuple) -> bool {
        debug_assert_eq!(t.arity(), self.arity);
        self.tuples.contains(t)
    }

    /// Insert; returns the new relation and whether it grew.
    pub fn insert(&self, t: &Tuple) -> (Relation, bool) {
        debug_assert_eq!(t.arity(), self.arity);
        let (tuples, grew) = self.tuples.insert(t);
        (
            Relation {
                arity: self.arity,
                tuples,
            },
            grew,
        )
    }

    /// Remove; returns the new relation and whether it shrank.
    pub fn remove(&self, t: &Tuple) -> (Relation, bool) {
        debug_assert_eq!(t.arity(), self.arity);
        let (tuples, shrank) = self.tuples.remove(t);
        (
            Relation {
                arity: self.arity,
                tuples,
            },
            shrank,
        )
    }

    /// All tuples matching a binding pattern (`None` = free position),
    /// in unspecified order.
    ///
    /// Fully bound patterns short-circuit to a membership test (O(log n)
    /// instead of a scan) — the common case for ground queries and for the
    /// handshake tuples of process encodings.
    pub fn select(&self, pattern: &[Option<Value>]) -> Vec<Tuple> {
        debug_assert_eq!(pattern.len(), self.arity);
        if pattern.iter().all(Option::is_some) {
            let t = Tuple::new(pattern.iter().map(|v| v.expect("all bound")).collect());
            return if self.tuples.contains(&t) {
                vec![t]
            } else {
                Vec::new()
            };
        }
        let mut out = Vec::new();
        self.tuples.for_each(|t| {
            if t.matches(pattern) {
                out.push(t.clone());
            }
        });
        out
    }

    /// Visit every tuple.
    pub fn for_each(&self, f: impl FnMut(&Tuple)) {
        self.tuples.for_each(f);
    }

    /// All tuples (unspecified order).
    pub fn to_vec(&self) -> Vec<Tuple> {
        self.tuples.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn insert_remove_contains() {
        let r = Relation::new(2);
        let (r, grew) = r.insert(&tuple!("a", 1));
        assert!(grew);
        assert!(r.contains(&tuple!("a", 1)));
        let (r, grew) = r.insert(&tuple!("a", 1));
        assert!(!grew);
        assert_eq!(r.len(), 1);
        let (r, shrank) = r.remove(&tuple!("a", 1));
        assert!(shrank);
        assert!(r.is_empty());
    }

    #[test]
    fn select_with_patterns() {
        let mut r = Relation::new(2);
        for (s, i) in [("w1", 1), ("w1", 2), ("w2", 1)] {
            r = r.insert(&tuple!(s, i)).0;
        }
        assert_eq!(r.select(&[None, None]).len(), 3);
        let w1 = r.select(&[Some(Value::sym("w1")), None]);
        assert_eq!(w1.len(), 2);
        let one = r.select(&[None, Some(Value::Int(1))]);
        assert_eq!(one.len(), 2);
        let exact = r.select(&[Some(Value::sym("w2")), Some(Value::Int(1))]);
        assert_eq!(exact, vec![tuple!("w2", 1)]);
        assert!(r
            .select(&[Some(Value::sym("w3")), None])
            .is_empty());
    }

    #[test]
    fn persistence_across_versions() {
        let r0 = Relation::new(1);
        let (r1, _) = r0.insert(&tuple!("x"));
        let (r2, _) = r1.remove(&tuple!("x"));
        assert!(r0.is_empty());
        assert!(r1.contains(&tuple!("x")));
        assert!(r2.is_empty());
        assert_eq!(r0.digest(), r2.digest());
        assert_eq!(r0, r2);
    }

    #[test]
    fn zero_ary_relation_acts_as_flag() {
        let r = Relation::new(0);
        assert!(!r.contains(&Tuple::unit()));
        let (r, _) = r.insert(&Tuple::unit());
        assert!(r.contains(&Tuple::unit()));
        assert_eq!(r.len(), 1);
        let (r, _) = r.insert(&Tuple::unit());
        assert_eq!(r.len(), 1, "flag cannot be set twice");
    }
}
