//! A single stored relation: a persistent set of tuples of fixed arity.

use crate::hamt;
use crate::ord::OrdSet;
use crate::tuple::Tuple;
use std::cmp::Ordering;
use td_core::Value;

/// A persistent relation. Like [`crate::Database`], relations are immutable
/// values: `insert`/`remove` return new versions sharing structure.
///
/// Two structures are maintained per relation, both persistent:
/// - a HAMT ([`hamt::Set`]) carrying membership, the commutative digest, and
///   unordered iteration;
/// - a sorted treap ([`OrdSet`]) over the same tuples, the *binding-pattern
///   index*: tuples order lexicographically, so every pattern that binds a
///   contiguous prefix of columns selects a contiguous sorted range, and
///   [`Relation::select`] answers it with a range probe instead of a scan.
#[derive(Clone, Debug)]
pub struct Relation {
    arity: usize,
    tuples: hamt::Set<Tuple>,
    index: OrdSet<Tuple>,
}

impl PartialEq for Relation {
    fn eq(&self, other: &Relation) -> bool {
        // The index is derived data over the same tuple set; comparing it
        // would be redundant work.
        self.arity == other.arity && self.tuples == other.tuples
    }
}

impl Eq for Relation {}

impl Relation {
    /// Empty relation of the given arity.
    pub fn new(arity: usize) -> Relation {
        Relation {
            arity,
            tuples: hamt::Set::new(),
            index: OrdSet::new(),
        }
    }

    /// The arity every member tuple must have.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if no tuples.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// Commutative digest of the tuple set (see [`hamt::Set::digest`]).
    pub fn digest(&self) -> u128 {
        self.tuples.digest()
    }

    /// Membership test.
    ///
    /// # Panics
    /// Debug-asserts the tuple arity.
    pub fn contains(&self, t: &Tuple) -> bool {
        debug_assert_eq!(t.arity(), self.arity);
        self.tuples.contains(t)
    }

    /// Insert; returns the new relation and whether it grew.
    pub fn insert(&self, t: &Tuple) -> (Relation, bool) {
        debug_assert_eq!(t.arity(), self.arity);
        let (tuples, grew) = self.tuples.insert(t);
        let index = if grew {
            self.index.insert(t).0
        } else {
            self.index.clone()
        };
        (
            Relation {
                arity: self.arity,
                tuples,
                index,
            },
            grew,
        )
    }

    /// Remove; returns the new relation and whether it shrank.
    pub fn remove(&self, t: &Tuple) -> (Relation, bool) {
        debug_assert_eq!(t.arity(), self.arity);
        let (tuples, shrank) = self.tuples.remove(t);
        let index = if shrank {
            self.index.remove(t).0
        } else {
            self.index.clone()
        };
        (
            Relation {
                arity: self.arity,
                tuples,
                index,
            },
            shrank,
        )
    }

    /// All tuples matching a binding pattern (`None` = free position).
    ///
    /// Three regimes, fastest applicable first:
    /// - fully bound: a membership test, O(log n);
    /// - a bound contiguous prefix of ≥ 1 column: a sorted-range probe on
    ///   the index, O(log n + candidates), with any bound columns *after*
    ///   the first free one filtered per candidate;
    /// - otherwise (first column free): an in-order walk of the index.
    ///
    /// Every regime returns tuples in sorted (lexicographic) order — the
    /// engine's canonical expansion order — so callers never re-sort.
    pub fn select(&self, pattern: &[Option<Value>]) -> Vec<Tuple> {
        debug_assert_eq!(pattern.len(), self.arity);
        if pattern.iter().all(Option::is_some) {
            let t = Tuple::new(pattern.iter().map(|v| v.expect("all bound")).collect());
            return if self.tuples.contains(&t) {
                vec![t]
            } else {
                Vec::new()
            };
        }
        let prefix_len = pattern.iter().take_while(|v| v.is_some()).count();
        if prefix_len > 0 {
            return self.select_by_prefix(pattern, prefix_len);
        }
        let fully_free = pattern.iter().all(Option::is_none);
        let mut out = Vec::new();
        self.index.for_each(|t| {
            if fully_free || t.matches(pattern) {
                out.push(t.clone());
            }
        });
        out
    }

    /// Range probe: tuples sort lexicographically, so tuples whose first
    /// `prefix_len` fields equal the bound prefix are contiguous.
    fn select_by_prefix(&self, pattern: &[Option<Value>], prefix_len: usize) -> Vec<Tuple> {
        let prefix: Vec<Value> = pattern[..prefix_len]
            .iter()
            .map(|v| v.expect("prefix is bound"))
            .collect();
        // Whether any bound column remains after the free gap; if not, every
        // tuple in the range matches and the per-candidate filter is skipped.
        let fully_covered = pattern[prefix_len..].iter().all(Option::is_none);
        let mut out = Vec::new();
        self.index.for_each_in_range(
            |t| compare_prefix(t.values(), &prefix),
            |t| {
                if fully_covered || t.matches(pattern) {
                    out.push(t.clone());
                }
            },
        );
        out
    }

    /// Visit every tuple.
    pub fn for_each(&self, f: impl FnMut(&Tuple)) {
        self.tuples.for_each(f);
    }

    /// All tuples (unspecified order).
    pub fn to_vec(&self) -> Vec<Tuple> {
        self.tuples.to_vec()
    }

    /// All tuples in sorted (lexicographic) order, via the index.
    pub fn to_sorted_vec(&self) -> Vec<Tuple> {
        self.index.to_vec()
    }
}

/// Compare a tuple's leading fields against a bound prefix, as the range
/// comparator for the index probe: `Less`/`Greater` when the tuple sorts
/// before/after every tuple carrying the prefix, `Equal` when it carries it.
fn compare_prefix(values: &[Value], prefix: &[Value]) -> Ordering {
    for (v, p) in values.iter().zip(prefix.iter()) {
        match v.cmp(p) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn insert_remove_contains() {
        let r = Relation::new(2);
        let (r, grew) = r.insert(&tuple!("a", 1));
        assert!(grew);
        assert!(r.contains(&tuple!("a", 1)));
        let (r, grew) = r.insert(&tuple!("a", 1));
        assert!(!grew);
        assert_eq!(r.len(), 1);
        let (r, shrank) = r.remove(&tuple!("a", 1));
        assert!(shrank);
        assert!(r.is_empty());
    }

    #[test]
    fn select_with_patterns() {
        let mut r = Relation::new(2);
        for (s, i) in [("w1", 1), ("w1", 2), ("w2", 1)] {
            r = r.insert(&tuple!(s, i)).0;
        }
        assert_eq!(r.select(&[None, None]).len(), 3);
        let w1 = r.select(&[Some(Value::sym("w1")), None]);
        assert_eq!(w1.len(), 2);
        let one = r.select(&[None, Some(Value::Int(1))]);
        assert_eq!(one.len(), 2);
        let exact = r.select(&[Some(Value::sym("w2")), Some(Value::Int(1))]);
        assert_eq!(exact, vec![tuple!("w2", 1)]);
        assert!(r.select(&[Some(Value::sym("w3")), None]).is_empty());
    }

    #[test]
    fn persistence_across_versions() {
        let r0 = Relation::new(1);
        let (r1, _) = r0.insert(&tuple!("x"));
        let (r2, _) = r1.remove(&tuple!("x"));
        assert!(r0.is_empty());
        assert!(r1.contains(&tuple!("x")));
        assert!(r2.is_empty());
        assert_eq!(r0.digest(), r2.digest());
        assert_eq!(r0, r2);
    }

    #[test]
    fn zero_ary_relation_acts_as_flag() {
        let r = Relation::new(0);
        assert!(!r.contains(&Tuple::unit()));
        let (r, _) = r.insert(&Tuple::unit());
        assert!(r.contains(&Tuple::unit()));
        assert_eq!(r.len(), 1);
        let (r, _) = r.insert(&Tuple::unit());
        assert_eq!(r.len(), 1, "flag cannot be set twice");
    }

    #[test]
    fn prefix_probe_agrees_with_scan_on_every_pattern_shape() {
        let mut r = Relation::new(3);
        for a in 0..4i64 {
            for b in 0..4i64 {
                for c in 0..4i64 {
                    if (a + b + c) % 2 == 0 {
                        r = r.insert(&tuple!(a, b, c)).0;
                    }
                }
            }
        }
        let vals: Vec<Option<Value>> = vec![None, Some(Value::Int(2))];
        for p0 in &vals {
            for p1 in &vals {
                for p2 in &vals {
                    let pattern = [*p0, *p1, *p2];
                    let mut got = r.select(&pattern);
                    got.sort();
                    let mut expected: Vec<Tuple> = Vec::new();
                    r.for_each(|t| {
                        if t.matches(&pattern) {
                            expected.push(t.clone());
                        }
                    });
                    expected.sort();
                    assert_eq!(got, expected, "pattern {pattern:?}");
                }
            }
        }
    }

    #[test]
    fn prefix_probe_returns_sorted_tuples() {
        let mut r = Relation::new(2);
        for i in [5i64, 1, 4, 2, 3] {
            r = r.insert(&tuple!("k", i)).0;
            r = r.insert(&tuple!("other", i)).0;
        }
        let got = r.select(&[Some(Value::sym("k")), None]);
        let keys: Vec<i64> = got
            .iter()
            .map(|t| match t.values()[1] {
                Value::Int(i) => i,
                other => panic!("unexpected {other:?}"),
            })
            .collect();
        assert_eq!(keys, vec![1, 2, 3, 4, 5]);
    }

    #[test]
    fn scan_regime_returns_sorted_tuples() {
        let mut r = Relation::new(2);
        for (s, i) in [("c", 2), ("a", 9), ("b", 1), ("a", 3), ("c", 1)] {
            r = r.insert(&tuple!(s, i)).0;
        }
        // First column free → scan regime; must still come back sorted.
        let all = r.select(&[None, None]);
        let mut expected = all.clone();
        expected.sort();
        assert_eq!(all, expected);
        let gap = r.select(&[None, Some(Value::Int(1))]);
        let mut expected = gap.clone();
        expected.sort();
        assert_eq!(gap, expected);
        assert_eq!(gap.len(), 2);
    }

    #[test]
    fn index_survives_removal() {
        let mut r = Relation::new(2);
        for i in 0..10i64 {
            r = r.insert(&tuple!("a", i)).0;
        }
        for i in (0..10i64).step_by(2) {
            r = r.remove(&tuple!("a", i)).0;
        }
        let got = r.select(&[Some(Value::sym("a")), None]);
        assert_eq!(got.len(), 5);
        assert!(got
            .iter()
            .all(|t| matches!(t.values()[1], Value::Int(i) if i % 2 == 1)));
    }

    #[test]
    fn gap_pattern_filters_trailing_bound_columns() {
        let mut r = Relation::new(3);
        for b in 0..5i64 {
            r = r.insert(&tuple!("x", b, b % 2)).0;
        }
        // Bound prefix "x", free middle, bound tail 0.
        let got = r.select(&[Some(Value::sym("x")), None, Some(Value::Int(0))]);
        assert_eq!(got.len(), 3); // b ∈ {0, 2, 4}
    }
}
