//! Ground tuples.

use std::fmt;
use std::sync::Arc;
use td_core::Value;

/// A ground database tuple: an immutable, cheaply clonable vector of values.
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Tuple(Arc<[Value]>);

impl Tuple {
    /// Build from values.
    pub fn new(values: Vec<Value>) -> Tuple {
        Tuple(values.into())
    }

    /// The empty (zero-ary) tuple.
    pub fn unit() -> Tuple {
        Tuple(Vec::new().into())
    }

    /// Number of fields.
    pub fn arity(&self) -> usize {
        self.0.len()
    }

    /// Field access.
    pub fn values(&self) -> &[Value] {
        &self.0
    }

    /// True if the tuple matches a binding pattern: `pattern[i]` of `None`
    /// matches anything; `Some(v)` must equal the field.
    pub fn matches(&self, pattern: &[Option<Value>]) -> bool {
        debug_assert_eq!(pattern.len(), self.0.len());
        pattern
            .iter()
            .zip(self.0.iter())
            .all(|(p, v)| p.is_none_or(|pv| pv == *v))
    }
}

impl From<Vec<Value>> for Tuple {
    fn from(v: Vec<Value>) -> Tuple {
        Tuple::new(v)
    }
}

impl fmt::Display for Tuple {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, v) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v}")?;
        }
        write!(f, ")")
    }
}

/// Convenience: build a tuple from displayable pieces.
#[macro_export]
macro_rules! tuple {
    ($($v:expr),* $(,)?) => {
        $crate::Tuple::new(vec![$(::td_core::Value::from($v)),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let t = Tuple::new(vec![Value::sym("a"), Value::Int(3)]);
        assert_eq!(t.arity(), 2);
        assert_eq!(t.values()[1], Value::Int(3));
    }

    #[test]
    fn unit_tuple() {
        assert_eq!(Tuple::unit().arity(), 0);
        assert_eq!(Tuple::unit(), Tuple::new(vec![]));
    }

    #[test]
    fn pattern_matching() {
        let t = tuple!("w1", 7);
        assert!(t.matches(&[None, None]));
        assert!(t.matches(&[Some(Value::sym("w1")), None]));
        assert!(t.matches(&[Some(Value::sym("w1")), Some(Value::Int(7))]));
        assert!(!t.matches(&[Some(Value::sym("w2")), None]));
        assert!(!t.matches(&[None, Some(Value::Int(8))]));
    }

    #[test]
    fn display() {
        assert_eq!(tuple!("a", 1).to_string(), "(a, 1)");
        assert_eq!(Tuple::unit().to_string(), "()");
    }

    #[test]
    fn macro_accepts_mixed_types() {
        let t = tuple!("x", 5, "y");
        assert_eq!(t.arity(), 3);
        assert_eq!(t.values()[0], Value::sym("x"));
        assert_eq!(t.values()[1], Value::Int(5));
    }

    #[test]
    fn ordering_is_lexicographic() {
        assert!(tuple!(1, 2) < tuple!(1, 3));
        assert!(tuple!(1) < tuple!(1, 0));
    }
}
