//! Snapshot databases.
//!
//! A [`Database`] is an immutable value: updates return new versions, and the
//! engine keeps old versions on its choicepoint stack (TD transactions are
//! all-or-nothing, so a failed execution must restore the pre-state exactly —
//! here that is free). Relations share structure between versions, so a
//! snapshot costs one small map clone.

use crate::relation::Relation;
use crate::tuple::Tuple;
use std::collections::BTreeMap;
use std::fmt;
use td_core::{Atom, Pred, Value};

/// Errors raised by database operations.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DbError {
    /// Tuple arity does not match the relation arity.
    ArityMismatch {
        pred: Pred,
        expected: usize,
        found: usize,
    },
}

impl fmt::Display for DbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DbError::ArityMismatch {
                pred,
                expected,
                found,
            } => write!(
                f,
                "tuple of arity {found} for relation `{pred}` (arity {expected})"
            ),
        }
    }
}

impl std::error::Error for DbError {}

/// An immutable snapshot of the whole database.
///
/// The relation map is a `BTreeMap` so iteration (and therefore display) is
/// deterministic. The content digest is carried alongside and maintained
/// incrementally: each non-empty relation contributes a 128-bit hash of
/// `(pred, relation digest, len)`, and the database digest is the XOR of all
/// contributions. XOR is commutative and self-inverse, so an `insert` or
/// `delete` updates the digest in O(1) — it strips the touched relation's
/// old contribution and adds the new one — and the result is
/// history-independent: content-equal databases always digest equally.
#[derive(Clone, Debug, Default)]
pub struct Database {
    rels: BTreeMap<Pred, Relation>,
    digest: u128,
}

impl PartialEq for Database {
    fn eq(&self, other: &Database) -> bool {
        // The digest is derived data; relations carry content identity.
        self.rels == other.rels
    }
}

impl Eq for Database {}

/// The digest contribution of one relation: 0 when empty (so declared-but-
/// empty relations don't affect content identity), otherwise a 128-bit hash
/// of the predicate, the relation's commutative tuple digest, and its size.
fn contribution(pred: Pred, rel: &Relation) -> u128 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    if rel.is_empty() {
        return 0;
    }
    let d = rel.digest();
    let mut lo = DefaultHasher::new();
    pred.hash(&mut lo);
    d.hash(&mut lo);
    rel.len().hash(&mut lo);
    // Independent high lane: same fields under a distinct seed.
    let mut hi = DefaultHasher::new();
    0x85eb_ca6b_27d4_eb4fu64.hash(&mut hi);
    pred.hash(&mut hi);
    d.hash(&mut hi);
    rel.len().hash(&mut hi);
    ((hi.finish() as u128) << 64) | lo.finish() as u128
}

impl Database {
    /// An empty database with no declared relations.
    pub fn new() -> Database {
        Database::default()
    }

    /// A database with empty relations for every base predicate of a
    /// program.
    pub fn with_schema_of(program: &td_core::Program) -> Database {
        let mut db = Database::new();
        for p in program.base_preds() {
            db = db.declare(p);
        }
        db
    }

    /// Declare a relation for `pred` (empty if not present). Idempotent.
    pub fn declare(&self, pred: Pred) -> Database {
        if self.rels.contains_key(&pred) {
            return self.clone();
        }
        let mut rels = self.rels.clone();
        rels.insert(pred, Relation::new(pred.arity as usize));
        // An empty relation contributes 0: the digest is unchanged.
        Database {
            rels,
            digest: self.digest,
        }
    }

    /// The relation for `pred`, if declared.
    pub fn relation(&self, pred: Pred) -> Option<&Relation> {
        self.rels.get(&pred)
    }

    /// Declared predicates, in sorted order.
    pub fn preds(&self) -> impl Iterator<Item = Pred> + '_ {
        self.rels.keys().copied()
    }

    /// Does the database contain the tuple?
    pub fn contains(&self, pred: Pred, t: &Tuple) -> bool {
        self.rels.get(&pred).is_some_and(|r| r.contains(t))
    }

    /// Insert a tuple, returning the new database and whether it changed.
    /// Auto-declares unknown relations (the schema check happens upstream in
    /// program validation).
    pub fn insert(&self, pred: Pred, t: &Tuple) -> Result<(Database, bool), DbError> {
        let rel = match self.rels.get(&pred) {
            Some(r) => r.clone(),
            None => Relation::new(pred.arity as usize),
        };
        if t.arity() != rel.arity() {
            return Err(DbError::ArityMismatch {
                pred,
                expected: rel.arity(),
                found: t.arity(),
            });
        }
        let old_contribution = contribution(pred, &rel);
        let (rel, grew) = rel.insert(t);
        if !grew && self.rels.contains_key(&pred) {
            return Ok((self.clone(), false));
        }
        let digest = self.digest ^ old_contribution ^ contribution(pred, &rel);
        let mut rels = self.rels.clone();
        rels.insert(pred, rel);
        Ok((Database { rels, digest }, grew))
    }

    /// Delete a tuple, returning the new database and whether it changed.
    /// Deleting an absent tuple succeeds with no change (TD's `del` is a
    /// "make it absent" operation).
    pub fn delete(&self, pred: Pred, t: &Tuple) -> Result<(Database, bool), DbError> {
        let Some(rel) = self.rels.get(&pred) else {
            return Ok((self.clone(), false));
        };
        if t.arity() != rel.arity() {
            return Err(DbError::ArityMismatch {
                pred,
                expected: rel.arity(),
                found: t.arity(),
            });
        }
        let old_contribution = contribution(pred, rel);
        let (rel, shrank) = rel.remove(t);
        if !shrank {
            return Ok((self.clone(), false));
        }
        let digest = self.digest ^ old_contribution ^ contribution(pred, &rel);
        let mut rels = self.rels.clone();
        rels.insert(pred, rel);
        Ok((Database { rels, digest }, true))
    }

    /// Check whether a *ground* atom holds.
    pub fn holds(&self, atom: &Atom) -> bool {
        match atom.ground_args() {
            Some(vals) => self.contains(atom.pred, &Tuple::new(vals)),
            None => false,
        }
    }

    /// Total number of tuples across relations.
    pub fn total_tuples(&self) -> usize {
        self.rels.values().map(Relation::len).sum()
    }

    /// Deterministic 128-bit digest of the database contents, usable for
    /// config-space memoization and subgoal-cache keys. Maintained
    /// incrementally on every update, so this is O(1) — no relation walk on
    /// the memoization hot path.
    pub fn digest(&self) -> u128 {
        self.digest
    }

    /// The stable per-relation digest of `pred`'s relation: exactly this
    /// relation's contribution to [`Database::digest`]. 0 for an empty or
    /// undeclared relation (consistently with the whole-db digest, where
    /// empty relations contribute nothing), so declaring a relation never
    /// changes its per-relation digest. O(1): the underlying relation
    /// digest is maintained incrementally.
    ///
    /// Two databases agree on `relation_digest(p)` iff `p`'s relation has
    /// equal content in both (up to a 2⁻¹²⁸ collision) — the comparison
    /// fine-grained OCC validation makes per read relation.
    pub fn relation_digest(&self, pred: Pred) -> u128 {
        self.rels
            .get(&pred)
            .map_or(0, |rel| contribution(pred, rel))
    }

    /// Recompute the digest by walking every relation. Always equal to
    /// [`Database::digest`]; exists as the test oracle for the incremental
    /// maintenance.
    pub fn digest_from_scratch(&self) -> u128 {
        self.rels
            .iter()
            .fold(0u128, |acc, (p, r)| acc ^ contribution(*p, r))
    }

    /// The active domain: every value occurring in some stored tuple.
    pub fn active_domain(&self) -> std::collections::BTreeSet<Value> {
        let mut out = std::collections::BTreeSet::new();
        for r in self.rels.values() {
            r.for_each(|t| {
                for v in t.values() {
                    out.insert(*v);
                }
            });
        }
        out
    }

    /// Content equality ignoring which empty relations are declared.
    ///
    /// Compares digests first: the digest is history-independent, so equal
    /// contents always digest equally — unequal digests prove unequal
    /// contents with no relation walk. Equal digests are then verified
    /// structurally (a 2⁻¹²⁸ collision must not forge equality).
    pub fn same_content(&self, other: &Database) -> bool {
        if self.digest != other.digest {
            return false;
        }
        fn nonempty(db: &Database) -> Vec<(Pred, &Relation)> {
            db.rels
                .iter()
                .filter(|(_, r)| !r.is_empty())
                .map(|(p, r)| (*p, r))
                .collect()
        }
        nonempty(self) == nonempty(other)
    }
}

impl fmt::Display for Database {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        write!(f, "{{")?;
        for (p, r) in &self.rels {
            let mut tuples = r.to_vec();
            tuples.sort();
            for t in tuples {
                if !first {
                    write!(f, ", ")?;
                }
                first = false;
                if t.arity() == 0 {
                    write!(f, "{}", p.name)?;
                } else {
                    write!(f, "{}{}", p.name, t)?;
                }
            }
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn p(name: &str, arity: u32) -> Pred {
        Pred::new(name, arity)
    }

    #[test]
    fn insert_and_contains() {
        let db = Database::new();
        let (db, changed) = db.insert(p("item", 1), &tuple!("w1")).unwrap();
        assert!(changed);
        assert!(db.contains(p("item", 1), &tuple!("w1")));
        assert!(!db.contains(p("item", 1), &tuple!("w2")));
        assert!(!db.contains(p("other", 1), &tuple!("w1")));
    }

    #[test]
    fn delete_absent_is_noop_success() {
        let db = Database::new();
        let (db2, changed) = db.delete(p("item", 1), &tuple!("w1")).unwrap();
        assert!(!changed);
        assert!(db2.same_content(&db));
    }

    #[test]
    fn arity_mismatch_errors() {
        let db = Database::new().declare(p("r", 2));
        let err = db.insert(p("r", 2), &tuple!("only-one")).unwrap_err();
        assert!(matches!(err, DbError::ArityMismatch { found: 1, .. }));
    }

    #[test]
    fn snapshots_are_cheap_and_independent() {
        let (db1, _) = Database::new().insert(p("a", 1), &tuple!(1)).unwrap();
        let snap = db1.clone();
        let (db2, _) = db1.insert(p("a", 1), &tuple!(2)).unwrap();
        let (db3, _) = db2.delete(p("a", 1), &tuple!(1)).unwrap();
        assert_eq!(snap.relation(p("a", 1)).unwrap().len(), 1);
        assert_eq!(db2.relation(p("a", 1)).unwrap().len(), 2);
        assert_eq!(db3.relation(p("a", 1)).unwrap().len(), 1);
        assert!(db3.contains(p("a", 1), &tuple!(2)));
        assert!(!db3.contains(p("a", 1), &tuple!(1)));
    }

    #[test]
    fn holds_checks_ground_atoms() {
        use td_core::Term;
        let (db, _) = Database::new()
            .insert(p("task", 2), &tuple!("w1", "t1"))
            .unwrap();
        let ground = Atom::new("task", vec![Term::sym("w1"), Term::sym("t1")]);
        let nonground = Atom::new("task", vec![Term::sym("w1"), Term::var(0)]);
        assert!(db.holds(&ground));
        assert!(!db.holds(&nonground));
    }

    #[test]
    fn digest_ignores_declared_empty_relations() {
        let a = Database::new().declare(p("x", 1));
        let b = Database::new();
        assert_eq!(a.digest(), b.digest());
        assert!(a.same_content(&b));
    }

    #[test]
    fn digest_tracks_content_roundtrip() {
        let db = Database::new();
        let d0 = db.digest();
        let (db1, _) = db.insert(p("q", 1), &tuple!(5)).unwrap();
        assert_ne!(db1.digest(), d0);
        let (db2, _) = db1.delete(p("q", 1), &tuple!(5)).unwrap();
        assert_eq!(db2.digest(), d0);
    }

    #[test]
    fn digest_is_history_independent() {
        // Same content reached by different op orders (and through a
        // detour) digests identically — the property the same_content fast
        // path and the subgoal cache rely on.
        let (a, _) = Database::new().insert(p("q", 1), &tuple!(1)).unwrap();
        let (a, _) = a.insert(p("r", 1), &tuple!(2)).unwrap();
        let (b, _) = Database::new().insert(p("r", 1), &tuple!(2)).unwrap();
        let (b, _) = b.insert(p("q", 1), &tuple!(9)).unwrap();
        let (b, _) = b.delete(p("q", 1), &tuple!(9)).unwrap();
        let (b, _) = b.insert(p("q", 1), &tuple!(1)).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.digest(), a.digest_from_scratch());
        assert_eq!(b.digest(), b.digest_from_scratch());
        assert!(a.same_content(&b));
    }

    #[test]
    fn same_content_digest_fast_path_rejects_differences() {
        let (a, _) = Database::new().insert(p("q", 1), &tuple!(1)).unwrap();
        let (b, _) = Database::new().insert(p("q", 1), &tuple!(2)).unwrap();
        assert_ne!(a.digest(), b.digest());
        assert!(!a.same_content(&b));
    }

    #[test]
    fn active_domain_collects_values() {
        let (db, _) = Database::new().insert(p("e", 2), &tuple!("a", 1)).unwrap();
        let (db, _) = db.insert(p("e", 2), &tuple!("b", 1)).unwrap();
        let dom = db.active_domain();
        assert_eq!(dom.len(), 3);
        assert!(dom.contains(&Value::sym("a")));
        assert!(dom.contains(&Value::Int(1)));
    }

    #[test]
    fn display_is_sorted_and_readable() {
        let (db, _) = Database::new().insert(p("b", 1), &tuple!(2)).unwrap();
        let (db, _) = db.insert(p("a", 0), &Tuple::unit()).unwrap();
        let (db, _) = db.insert(p("b", 1), &tuple!(1)).unwrap();
        assert_eq!(db.to_string(), "{a, b(1), b(2)}");
    }

    #[test]
    fn with_schema_of_declares_base_relations() {
        let prog = td_core::Program::builder()
            .base_pred("item", 1)
            .base_pred("busy", 2)
            .build()
            .unwrap();
        let db = Database::with_schema_of(&prog);
        assert_eq!(db.preds().count(), 2);
        assert!(db.relation(p("item", 1)).is_some());
    }

    #[test]
    fn relation_digest_is_the_digest_contribution() {
        let db = Database::new().declare(p("a", 1));
        // Empty and undeclared relations both digest to 0.
        assert_eq!(db.relation_digest(p("a", 1)), 0);
        assert_eq!(db.relation_digest(p("nope", 1)), 0);
        let (db1, _) = db.insert(p("a", 1), &tuple!(1)).unwrap();
        let (db2, _) = db1.insert(p("b", 1), &tuple!(2)).unwrap();
        // Writing `b` leaves `a`'s per-relation digest alone.
        assert_eq!(
            db1.relation_digest(p("a", 1)),
            db2.relation_digest(p("a", 1))
        );
        assert_ne!(db2.relation_digest(p("b", 1)), 0);
        // The whole-db digest is exactly the XOR of the contributions.
        assert_eq!(
            db2.digest(),
            db2.relation_digest(p("a", 1)) ^ db2.relation_digest(p("b", 1))
        );
        // Restoring content restores the per-relation digest (ABA is fine:
        // digest-equal means content-equal).
        let (db3, _) = db2.delete(p("a", 1), &tuple!(1)).unwrap();
        let (db4, _) = db3.insert(p("a", 1), &tuple!(1)).unwrap();
        assert_eq!(
            db4.relation_digest(p("a", 1)),
            db2.relation_digest(p("a", 1))
        );
    }

    #[test]
    fn total_tuples_sums_relations() {
        let (db, _) = Database::new().insert(p("a", 1), &tuple!(1)).unwrap();
        let (db, _) = db.insert(p("b", 1), &tuple!(1)).unwrap();
        let (db, _) = db.insert(p("b", 1), &tuple!(2)).unwrap();
        assert_eq!(db.total_tuples(), 3);
    }
}
