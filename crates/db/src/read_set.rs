//! Read-set tracking for fine-grained OCC validation.
//!
//! A [`ReadSet`] records which relations a transaction's execution *looked
//! at* — base-predicate queries, absence tests, materialized-view probes
//! and cached-subgoal replays all contribute. The commit validator
//! (`td_store`'s `ConcurrentStore`) then revalidates only those
//! relations: an intervening committed writer conflicts with this
//! transaction only if it changed a relation the transaction read
//! (compared by per-relation digest, so a writer that restored identical
//! content does not conflict either).
//!
//! Soundness rests on two rules the engine upholds:
//!
//! 1. **Reads are recorded on every explored branch**, including failed
//!    ones, and are *never* rolled back on backtracking (unlike the delta
//!    and the trail). If every read relation is unchanged at commit time,
//!    re-running the goal at the head would reproduce the identical
//!    exploration, hence the identical witness and delta.
//! 2. **Writes are not reads.** `ins`/`del` have set semantics and their
//!    recorded delta is independent of the target relation's current
//!    content, so blind writes to unread relations replay identically at
//!    any head state.
//!
//! The `whole_db` marker is the conservative top element: it means "assume
//! everything was read" and forces whole-database digest validation. It is
//! used where per-relation capture is unavailable (hand-built deltas,
//! legacy callers).

use std::collections::BTreeSet;
use std::fmt;
use td_core::Pred;

/// The set of relations an execution read. See the module docs for the
/// semantics the engine guarantees when recording one.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ReadSet {
    /// Conservative top element: every relation is assumed read.
    all: bool,
    preds: BTreeSet<Pred>,
}

impl ReadSet {
    /// The empty read set (nothing read yet).
    pub fn new() -> ReadSet {
        ReadSet::default()
    }

    /// The conservative "everything was read" marker: validation must fall
    /// back to whole-database digest equality.
    pub fn whole_db() -> ReadSet {
        ReadSet {
            all: true,
            preds: BTreeSet::new(),
        }
    }

    /// Record a read of `pred`'s relation.
    pub fn record(&mut self, pred: Pred) {
        if !self.all {
            self.preds.insert(pred);
        }
    }

    /// Collapse to the conservative top element.
    pub fn record_all(&mut self) {
        self.all = true;
        self.preds.clear();
    }

    /// Merge another read set into this one (set union; `whole_db`
    /// absorbs everything).
    pub fn merge(&mut self, other: &ReadSet) {
        if self.all {
            return;
        }
        if other.all {
            self.record_all();
            return;
        }
        self.preds.extend(other.preds.iter().copied());
    }

    /// Is this the conservative whole-database marker?
    pub fn is_whole_db(&self) -> bool {
        self.all
    }

    /// True when nothing was read (and this is not the whole-db marker) —
    /// such a transaction validates vacuously.
    pub fn is_empty(&self) -> bool {
        !self.all && self.preds.is_empty()
    }

    /// Number of distinct relations read (0 for the whole-db marker, which
    /// has no per-relation breakdown).
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// The read relations, in sorted order. Empty for the whole-db marker.
    pub fn preds(&self) -> impl Iterator<Item = Pred> + '_ {
        self.preds.iter().copied()
    }

    /// Was `pred` read? (Always true for the whole-db marker.)
    pub fn contains(&self, pred: Pred) -> bool {
        self.all || self.preds.contains(&pred)
    }

    /// Does this read set intersect a write set (any iterator of written
    /// predicates)? The whole-db marker intersects everything non-empty.
    pub fn intersects(&self, mut writes: impl Iterator<Item = Pred>) -> bool {
        if self.all {
            return writes.next().is_some();
        }
        writes.any(|p| self.preds.contains(&p))
    }
}

impl fmt::Display for ReadSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.all {
            return write!(f, "*");
        }
        for (i, p) in self.preds.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(name: &str) -> Pred {
        Pred::new(name, 1)
    }

    #[test]
    fn record_and_contains() {
        let mut rs = ReadSet::new();
        assert!(rs.is_empty());
        rs.record(p("a"));
        rs.record(p("a"));
        assert_eq!(rs.len(), 1);
        assert!(rs.contains(p("a")));
        assert!(!rs.contains(p("b")));
    }

    #[test]
    fn whole_db_absorbs() {
        let mut rs = ReadSet::new();
        rs.record(p("a"));
        rs.record_all();
        assert!(rs.is_whole_db());
        assert_eq!(rs.len(), 0);
        assert!(rs.contains(p("zzz")));
        let mut other = ReadSet::new();
        other.merge(&rs);
        assert!(other.is_whole_db());
    }

    #[test]
    fn merge_is_union() {
        let mut a = ReadSet::new();
        a.record(p("x"));
        let mut b = ReadSet::new();
        b.record(p("y"));
        a.merge(&b);
        assert!(a.contains(p("x")) && a.contains(p("y")));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn intersects_write_sets() {
        let mut rs = ReadSet::new();
        rs.record(p("x"));
        assert!(rs.intersects([p("x"), p("z")].into_iter()));
        assert!(!rs.intersects([p("z")].into_iter()));
        assert!(!rs.intersects(std::iter::empty()));
        let all = ReadSet::whole_db();
        assert!(all.intersects([p("q")].into_iter()));
        assert!(!all.intersects(std::iter::empty()));
    }
}
