//! A persistent counted relation: tuple → derivation count.
//!
//! The incremental materialization circuit (td-engine's `incremental`
//! module) maintains, for every derived predicate, how many distinct rule
//! instantiations currently derive each tuple. Under a base-relation delta
//! the counts move by small increments; a tuple is *in* the derived
//! relation exactly while its count is positive, and the interesting events
//! are the 0 ↔ positive transitions, which propagate further through the
//! circuit.
//!
//! The store is a treap keyed by tuple and carrying the count, with
//! hash-derived priorities and path-copying updates exactly like
//! [`crate::ord::OrdSet`]: snapshots are O(1) clones sharing structure, so
//! keeping one materialized state per database version costs O(Δ log n)
//! per version, not a copy of the whole relation. Because tuples order
//! lexicographically, [`CountedRelation::select`] supports the same three
//! probe regimes as [`crate::Relation::select`] and returns sorted tuples.

use crate::tuple::Tuple;
use std::cmp::Ordering;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use td_core::Value;

fn priority_of(t: &Tuple) -> u64 {
    let mut h = DefaultHasher::new();
    // Fixed tweak so priorities differ from both the HAMT's and the
    // OrdSet index's hash streams.
    0x7c31_u16.hash(&mut h);
    t.hash(&mut h);
    h.finish()
}

#[derive(Debug)]
struct Node {
    tuple: Tuple,
    count: i64,
    prio: u64,
    left: Link,
    right: Link,
}

type Link = Option<Arc<Node>>;

/// How a count update moved a tuple across the membership boundary.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Transition {
    /// Count went from non-positive to positive: the tuple is now in the
    /// relation.
    Appeared,
    /// Count went from positive to non-positive: the tuple left the
    /// relation.
    Disappeared,
    /// Membership did not change (the count may still have moved).
    Unchanged,
}

/// A persistent map tuple → count with structural sharing between versions.
/// A tuple is a member while its count is positive; entries reaching count
/// zero are removed.
#[derive(Clone, Debug)]
pub struct CountedRelation {
    arity: usize,
    root: Link,
    /// Entries stored (count ≠ 0).
    len: usize,
}

impl CountedRelation {
    /// Empty counted relation of the given arity.
    pub fn new(arity: usize) -> CountedRelation {
        CountedRelation {
            arity,
            root: None,
            len: 0,
        }
    }

    /// The arity every member tuple must have.
    pub fn arity(&self) -> usize {
        self.arity
    }

    /// Number of entries with a non-zero count.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The stored count (0 when absent).
    pub fn count(&self, t: &Tuple) -> i64 {
        debug_assert_eq!(t.arity(), self.arity);
        let mut cur = self.root.as_deref();
        while let Some(n) = cur {
            match t.cmp(&n.tuple) {
                Ordering::Less => cur = n.left.as_deref(),
                Ordering::Greater => cur = n.right.as_deref(),
                Ordering::Equal => return n.count,
            }
        }
        0
    }

    /// Membership: positive count.
    pub fn contains(&self, t: &Tuple) -> bool {
        self.count(t) > 0
    }

    /// Add `delta` to the tuple's count; returns the new relation and the
    /// membership transition. An entry reaching count 0 is removed.
    pub fn add(&self, t: &Tuple, delta: i64) -> (CountedRelation, Transition) {
        debug_assert_eq!(t.arity(), self.arity);
        if delta == 0 {
            return (self.clone(), Transition::Unchanged);
        }
        let (root, old, new) = add_node(&self.root, t, delta);
        let len = match (old != 0, new != 0) {
            (false, true) => self.len + 1,
            (true, false) => self.len - 1,
            _ => self.len,
        };
        let transition = match (old > 0, new > 0) {
            (false, true) => Transition::Appeared,
            (true, false) => Transition::Disappeared,
            _ => Transition::Unchanged,
        };
        (
            CountedRelation {
                arity: self.arity,
                root,
                len,
            },
            transition,
        )
    }

    /// All member tuples (count > 0) matching a binding pattern
    /// (`None` = free position), in sorted (lexicographic) order — the same
    /// three probe regimes as [`crate::Relation::select`].
    pub fn select(&self, pattern: &[Option<Value>]) -> Vec<Tuple> {
        debug_assert_eq!(pattern.len(), self.arity);
        if pattern.iter().all(Option::is_some) {
            let t = Tuple::new(pattern.iter().map(|v| v.expect("all bound")).collect());
            return if self.contains(&t) {
                vec![t]
            } else {
                Vec::new()
            };
        }
        let prefix_len = pattern.iter().take_while(|v| v.is_some()).count();
        let mut out = Vec::new();
        if prefix_len > 0 {
            let prefix: Vec<Value> = pattern[..prefix_len]
                .iter()
                .map(|v| v.expect("prefix is bound"))
                .collect();
            let fully_covered = pattern[prefix_len..].iter().all(Option::is_none);
            range_visit(
                &self.root,
                &|t| compare_prefix(t.values(), &prefix),
                &mut |t, c| {
                    if c > 0 && (fully_covered || t.matches(pattern)) {
                        out.push(t.clone());
                    }
                },
            );
            return out;
        }
        let fully_free = pattern.iter().all(Option::is_none);
        in_order(&self.root, &mut |t, c| {
            if c > 0 && (fully_free || t.matches(pattern)) {
                out.push(t.clone());
            }
        });
        out
    }

    /// Visit every entry in sorted order with its count.
    pub fn for_each(&self, mut f: impl FnMut(&Tuple, i64)) {
        in_order(&self.root, &mut f);
    }

    /// All member tuples (count > 0) in sorted order.
    pub fn to_vec(&self) -> Vec<Tuple> {
        let mut out = Vec::with_capacity(self.len);
        self.for_each(|t, c| {
            if c > 0 {
                out.push(t.clone());
            }
        });
        out
    }
}

fn leaf(tuple: Tuple, count: i64, prio: u64, left: Link, right: Link) -> Link {
    Some(Arc::new(Node {
        tuple,
        count,
        prio,
        left,
        right,
    }))
}

/// Path-copying count update; returns `(new link, old count, new count)`.
fn add_node(link: &Link, t: &Tuple, delta: i64) -> (Link, i64, i64) {
    let Some(n) = link else {
        return (leaf(t.clone(), delta, priority_of(t), None, None), 0, delta);
    };
    match t.cmp(&n.tuple) {
        Ordering::Equal => {
            let new = n.count + delta;
            if new == 0 {
                (merge(&n.left, &n.right), n.count, 0)
            } else {
                (
                    leaf(
                        n.tuple.clone(),
                        new,
                        n.prio,
                        n.left.clone(),
                        n.right.clone(),
                    ),
                    n.count,
                    new,
                )
            }
        }
        Ordering::Less => {
            let (new_left, old, new) = add_node(&n.left, t, delta);
            // A fresh insert may violate the heap property; rotate up.
            match &new_left {
                Some(l) if l.prio > n.prio => {
                    let rotated = leaf(
                        n.tuple.clone(),
                        n.count,
                        n.prio,
                        l.right.clone(),
                        n.right.clone(),
                    );
                    (
                        leaf(l.tuple.clone(), l.count, l.prio, l.left.clone(), rotated),
                        old,
                        new,
                    )
                }
                _ => (
                    leaf(n.tuple.clone(), n.count, n.prio, new_left, n.right.clone()),
                    old,
                    new,
                ),
            }
        }
        Ordering::Greater => {
            let (new_right, old, new) = add_node(&n.right, t, delta);
            match &new_right {
                Some(r) if r.prio > n.prio => {
                    let rotated = leaf(
                        n.tuple.clone(),
                        n.count,
                        n.prio,
                        n.left.clone(),
                        r.left.clone(),
                    );
                    (
                        leaf(r.tuple.clone(), r.count, r.prio, rotated, r.right.clone()),
                        old,
                        new,
                    )
                }
                _ => (
                    leaf(n.tuple.clone(), n.count, n.prio, n.left.clone(), new_right),
                    old,
                    new,
                ),
            }
        }
    }
}

/// Merge two treaps where every tuple of `a` precedes every tuple of `b`.
fn merge(a: &Link, b: &Link) -> Link {
    match (a, b) {
        (None, _) => b.clone(),
        (_, None) => a.clone(),
        (Some(x), Some(y)) => {
            if x.prio >= y.prio {
                leaf(
                    x.tuple.clone(),
                    x.count,
                    x.prio,
                    x.left.clone(),
                    merge(&x.right, b),
                )
            } else {
                leaf(
                    y.tuple.clone(),
                    y.count,
                    y.prio,
                    merge(a, &y.left),
                    y.right.clone(),
                )
            }
        }
    }
}

fn in_order(link: &Link, f: &mut impl FnMut(&Tuple, i64)) {
    if let Some(n) = link {
        in_order(&n.left, f);
        f(&n.tuple, n.count);
        in_order(&n.right, f);
    }
}

fn range_visit(link: &Link, cmp: &impl Fn(&Tuple) -> Ordering, f: &mut impl FnMut(&Tuple, i64)) {
    if let Some(n) = link {
        match cmp(&n.tuple) {
            Ordering::Less => range_visit(&n.right, cmp, f),
            Ordering::Greater => range_visit(&n.left, cmp, f),
            Ordering::Equal => {
                range_visit(&n.left, cmp, f);
                f(&n.tuple, n.count);
                range_visit(&n.right, cmp, f);
            }
        }
    }
}

fn compare_prefix(values: &[Value], prefix: &[Value]) -> Ordering {
    for (v, p) in values.iter().zip(prefix.iter()) {
        match v.cmp(p) {
            Ordering::Equal => continue,
            other => return other,
        }
    }
    Ordering::Equal
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    #[test]
    fn counts_accumulate_and_cross_the_boundary() {
        let r = CountedRelation::new(1);
        let (r, tr) = r.add(&tuple!(1), 1);
        assert_eq!(tr, Transition::Appeared);
        let (r, tr) = r.add(&tuple!(1), 2);
        assert_eq!(tr, Transition::Unchanged);
        assert_eq!(r.count(&tuple!(1)), 3);
        assert!(r.contains(&tuple!(1)));
        let (r, tr) = r.add(&tuple!(1), -3);
        assert_eq!(tr, Transition::Disappeared);
        assert!(!r.contains(&tuple!(1)));
        assert!(r.is_empty());
    }

    #[test]
    fn zero_delta_is_identity() {
        let r = CountedRelation::new(1).add(&tuple!(1), 2).0;
        let (r2, tr) = r.add(&tuple!(1), 0);
        assert_eq!(tr, Transition::Unchanged);
        assert_eq!(r2.count(&tuple!(1)), 2);
        assert_eq!(r2.len(), 1);
    }

    #[test]
    fn negative_counts_are_not_members() {
        // Transient over-deletion (DRed's overestimate phase) may drive a
        // count negative; the tuple must read as absent until re-derived.
        let r = CountedRelation::new(1).add(&tuple!(7), -2).0;
        assert_eq!(r.count(&tuple!(7)), -2);
        assert!(!r.contains(&tuple!(7)));
        assert_eq!(r.len(), 1, "entry retained until it nets to zero");
        let (r, tr) = r.add(&tuple!(7), 3);
        assert_eq!(tr, Transition::Appeared);
        assert_eq!(r.count(&tuple!(7)), 1);
        assert_eq!(r.to_vec(), vec![tuple!(7)]);
    }

    #[test]
    fn snapshots_are_isolated() {
        let base: CountedRelation = {
            let mut r = CountedRelation::new(1);
            for i in 0..50i64 {
                r = r.add(&tuple!(i), 1).0;
            }
            r
        };
        let snapshot = base.clone();
        let mut working = base;
        for i in 0..50i64 {
            working = working.add(&tuple!(i), -1).0;
            working = working.add(&tuple!(i + 50), 1).0;
        }
        assert_eq!(snapshot.len(), 50);
        assert!(snapshot.contains(&tuple!(0)));
        assert!(!working.contains(&tuple!(0)));
        assert!(working.contains(&tuple!(99)));
    }

    #[test]
    fn select_matches_relation_regimes() {
        let mut r = CountedRelation::new(2);
        for (s, i) in [("w1", 1i64), ("w1", 2), ("w2", 1)] {
            r = r.add(&tuple!(s, i), 1).0;
        }
        // A suppressed (zero-crossing-avoided) negative entry must not show.
        r = r.add(&tuple!("w3", 9), -1).0;
        assert_eq!(r.select(&[None, None]).len(), 3);
        let w1 = r.select(&[Some(Value::sym("w1")), None]);
        assert_eq!(w1, vec![tuple!("w1", 1), tuple!("w1", 2)]);
        let one = r.select(&[None, Some(Value::Int(1))]);
        assert_eq!(one.len(), 2);
        let exact = r.select(&[Some(Value::sym("w2")), Some(Value::Int(1))]);
        assert_eq!(exact, vec![tuple!("w2", 1)]);
        assert!(r.select(&[Some(Value::sym("w3")), None]).is_empty());
    }

    #[test]
    fn behaves_like_btreemap_under_random_ops() {
        use std::collections::BTreeMap;
        let mut state = 0x9e37_79b9_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut model: BTreeMap<i64, i64> = BTreeMap::new();
        let mut r = CountedRelation::new(1);
        for _ in 0..2000 {
            let k = (next() % 40) as i64;
            let d = (next() % 5) as i64 - 2;
            let old = model.get(&k).copied().unwrap_or(0);
            let new = old + d;
            if new == 0 {
                model.remove(&k);
            } else if d != 0 {
                model.insert(k, new);
            }
            let (nr, tr) = r.add(&tuple!(k), d);
            let expect = match (old > 0, new > 0) {
                (false, true) => Transition::Appeared,
                (true, false) => Transition::Disappeared,
                _ => Transition::Unchanged,
            };
            assert_eq!(tr, expect);
            r = nr;
            assert_eq!(r.len(), model.len());
        }
        let members: Vec<Tuple> = model
            .iter()
            .filter(|(_, c)| **c > 0)
            .map(|(k, _)| tuple!(*k))
            .collect();
        assert_eq!(r.to_vec(), members);
        for (k, c) in &model {
            assert_eq!(r.count(&tuple!(*k)), *c);
        }
    }
}
