//! Update logs (deltas).
//!
//! The engine and the workflow monitor record the elementary updates an
//! execution performs — the paper emphasizes "monitoring, tracking and
//! querying the status of workflow activities" (§3, citing \[36, 42, 26\]).
//! A [`Delta`] is that record: an ordered log of applied `ins`/`del`
//! operations that can be replayed onto a database or inverted.

use crate::database::{Database, DbError};
use crate::tuple::Tuple;
use std::fmt;
use td_core::Pred;

/// One applied elementary update.
#[derive(Clone, PartialEq, Eq, Debug)]
pub enum DeltaOp {
    /// Tuple was inserted (and was previously absent).
    Ins(Pred, Tuple),
    /// Tuple was deleted (and was previously present).
    Del(Pred, Tuple),
}

impl DeltaOp {
    /// The inverse operation.
    pub fn inverse(&self) -> DeltaOp {
        match self {
            DeltaOp::Ins(p, t) => DeltaOp::Del(*p, t.clone()),
            DeltaOp::Del(p, t) => DeltaOp::Ins(*p, t.clone()),
        }
    }

    /// Apply to a database.
    pub fn apply(&self, db: &Database) -> Result<Database, DbError> {
        match self {
            DeltaOp::Ins(p, t) => Ok(db.insert(*p, t)?.0),
            DeltaOp::Del(p, t) => Ok(db.delete(*p, t)?.0),
        }
    }
}

impl fmt::Display for DeltaOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeltaOp::Ins(p, t) => write!(f, "ins.{}{}", p.name, t),
            DeltaOp::Del(p, t) => write!(f, "del.{}{}", p.name, t),
        }
    }
}

/// An ordered log of applied updates.
#[derive(Clone, Default, PartialEq, Eq, Debug)]
pub struct Delta {
    ops: Vec<DeltaOp>,
}

impl Delta {
    /// Empty log.
    pub fn new() -> Delta {
        Delta::default()
    }

    /// Record an operation.
    pub fn push(&mut self, op: DeltaOp) {
        self.ops.push(op);
    }

    /// The recorded operations, oldest first.
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// Number of recorded operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if nothing was recorded.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Replay the log onto `db`, oldest first.
    pub fn replay(&self, db: &Database) -> Result<Database, DbError> {
        let mut cur = db.clone();
        for op in &self.ops {
            cur = op.apply(&cur)?;
        }
        Ok(cur)
    }

    /// Undo the log from `db`, newest first. If `db` was produced by
    /// replaying this delta onto some `d0`, this returns a database with the
    /// content of `d0` (provided every op recorded an actual change).
    pub fn undo(&self, db: &Database) -> Result<Database, DbError> {
        let mut cur = db.clone();
        for op in self.ops.iter().rev() {
            cur = op.inverse().apply(&cur)?;
        }
        Ok(cur)
    }

    /// The write set: every predicate this delta touches, deduplicated and
    /// sorted. This is the per-relation summary commit validation and
    /// conflict attribution work from.
    pub fn write_set(&self) -> std::collections::BTreeSet<Pred> {
        self.ops
            .iter()
            .map(|op| match op {
                DeltaOp::Ins(p, _) | DeltaOp::Del(p, _) => *p,
            })
            .collect()
    }

    /// Counts of insertions and deletions.
    pub fn counts(&self) -> (usize, usize) {
        let ins = self
            .ops
            .iter()
            .filter(|o| matches!(o, DeltaOp::Ins(..)))
            .count();
        (ins, self.ops.len() - ins)
    }
}

impl fmt::Display for Delta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, op) in self.ops.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{op}")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tuple;

    fn p(name: &str, arity: u32) -> Pred {
        Pred::new(name, arity)
    }

    #[test]
    fn replay_and_undo_round_trip() {
        let d0 = Database::new();
        let mut delta = Delta::new();
        delta.push(DeltaOp::Ins(p("a", 1), tuple!(1)));
        delta.push(DeltaOp::Ins(p("a", 1), tuple!(2)));
        delta.push(DeltaOp::Del(p("a", 1), tuple!(1)));
        let d1 = delta.replay(&d0).unwrap();
        assert!(d1.contains(p("a", 1), &tuple!(2)));
        assert!(!d1.contains(p("a", 1), &tuple!(1)));
        let back = delta.undo(&d1).unwrap();
        assert!(back.same_content(&d0));
    }

    #[test]
    fn inverse_of_inverse_is_identity() {
        let op = DeltaOp::Ins(p("x", 1), tuple!("v"));
        assert_eq!(op.inverse().inverse(), op);
    }

    #[test]
    fn counts_split_ins_del() {
        let mut d = Delta::new();
        d.push(DeltaOp::Ins(p("a", 0), Tuple::unit()));
        d.push(DeltaOp::Del(p("a", 0), Tuple::unit()));
        d.push(DeltaOp::Ins(p("a", 0), Tuple::unit()));
        assert_eq!(d.counts(), (2, 1));
        assert_eq!(d.len(), 3);
    }

    #[test]
    fn write_set_dedups_touched_preds() {
        let mut d = Delta::new();
        d.push(DeltaOp::Ins(p("a", 1), tuple!(1)));
        d.push(DeltaOp::Del(p("a", 1), tuple!(2)));
        d.push(DeltaOp::Ins(p("b", 1), tuple!(3)));
        let ws: Vec<_> = d.write_set().into_iter().collect();
        assert_eq!(ws, vec![p("a", 1), p("b", 1)]);
        assert!(Delta::new().write_set().is_empty());
    }

    #[test]
    fn display_renders_ops() {
        let mut d = Delta::new();
        d.push(DeltaOp::Ins(p("item", 1), tuple!("w1")));
        d.push(DeltaOp::Del(p("busy", 2), tuple!("a1", "t2")));
        assert_eq!(d.to_string(), "[ins.item(w1), del.busy(a1, t2)]");
    }
}
