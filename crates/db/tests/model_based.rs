//! Model-based property tests: the persistent [`Database`] against a plain
//! `BTreeMap<Pred, BTreeSet<Tuple>>` reference model, including snapshot
//! semantics (old versions must never observe later edits — the property
//! the engine's backtracking depends on).

use proptest::prelude::*;
use std::collections::{BTreeMap, BTreeSet};
use td_core::{Pred, Value};
use td_db::{Database, Tuple};

#[derive(Clone, Debug)]
enum Op {
    Ins(u8, Vec<i64>),
    Del(u8, Vec<i64>),
    Snapshot,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        ((0u8..3), proptest::collection::vec(0i64..5, 2)).prop_map(|(p, t)| Op::Ins(p, t)),
        ((0u8..3), proptest::collection::vec(0i64..5, 2)).prop_map(|(p, t)| Op::Del(p, t)),
        Just(Op::Snapshot),
    ]
}

fn pred(i: u8) -> Pred {
    Pred::new(&format!("r{i}"), 2)
}

fn tuple(vals: &[i64]) -> Tuple {
    Tuple::new(vals.iter().map(|v| Value::Int(*v)).collect())
}

type Model = BTreeMap<Pred, BTreeSet<Tuple>>;

fn assert_matches_model(db: &Database, model: &Model) {
    for i in 0..3u8 {
        let p = pred(i);
        let expected = model.get(&p).cloned().unwrap_or_default();
        let actual: BTreeSet<Tuple> = db
            .relation(p)
            .map(|r| r.to_vec().into_iter().collect())
            .unwrap_or_default();
        assert_eq!(actual, expected, "relation {p} diverged");
        // Membership queries agree too.
        for t in &expected {
            assert!(db.contains(p, t));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn database_behaves_like_model(ops in proptest::collection::vec(arb_op(), 0..120)) {
        let mut db = Database::new();
        let mut model: Model = BTreeMap::new();
        // (snapshot, model at snapshot time)
        let mut snapshots: Vec<(Database, Model)> = Vec::new();

        for op in ops {
            match op {
                Op::Ins(p, vals) => {
                    let t = tuple(&vals);
                    let (next, changed) = db.insert(pred(p), &t).unwrap();
                    let model_changed = model.entry(pred(p)).or_default().insert(t);
                    prop_assert_eq!(changed, model_changed);
                    db = next;
                }
                Op::Del(p, vals) => {
                    let t = tuple(&vals);
                    let (next, changed) = db.delete(pred(p), &t).unwrap();
                    let model_changed = model
                        .get_mut(&pred(p))
                        .is_some_and(|s| s.remove(&t));
                    prop_assert_eq!(changed, model_changed);
                    db = next;
                }
                Op::Snapshot => {
                    snapshots.push((db.clone(), model.clone()));
                }
            }
        }

        assert_matches_model(&db, &model);
        // Every snapshot still reflects its own point in time.
        for (snap, snap_model) in &snapshots {
            assert_matches_model(snap, snap_model);
        }
    }

    #[test]
    fn digest_agrees_iff_content_agrees(
        ops_a in proptest::collection::vec(arb_op(), 0..40),
        ops_b in proptest::collection::vec(arb_op(), 0..40),
    ) {
        let apply = |ops: &[Op]| {
            let mut db = Database::new();
            for op in ops {
                match op {
                    Op::Ins(p, vals) => db = db.insert(pred(*p), &tuple(vals)).unwrap().0,
                    Op::Del(p, vals) => db = db.delete(pred(*p), &tuple(vals)).unwrap().0,
                    Op::Snapshot => {}
                }
            }
            db
        };
        let a = apply(&ops_a);
        let b = apply(&ops_b);
        if a.same_content(&b) {
            prop_assert_eq!(a.digest(), b.digest());
        }
        // (The converse can fail only with ~2⁻¹²⁸ probability; not asserted.)
    }

    /// The incrementally maintained digest never drifts from the
    /// from-scratch recomputation, across randomized ins/del sequences and
    /// rollbacks (here: restoring an earlier snapshot, exactly what the
    /// engine does when a transaction aborts).
    #[test]
    fn incremental_digest_matches_from_scratch(ops in proptest::collection::vec(arb_op(), 0..120)) {
        let mut db = Database::new();
        let mut saved: Vec<Database> = Vec::new();
        for (i, op) in ops.into_iter().enumerate() {
            match op {
                Op::Ins(p, vals) => db = db.insert(pred(p), &tuple(&vals)).unwrap().0,
                Op::Del(p, vals) => db = db.delete(pred(p), &tuple(&vals)).unwrap().0,
                Op::Snapshot => {
                    // Alternate between taking a snapshot and rolling back
                    // to the most recent one.
                    if i % 2 == 0 || saved.is_empty() {
                        saved.push(db.clone());
                    } else {
                        db = saved.pop().unwrap();
                    }
                }
            }
            prop_assert_eq!(db.digest(), db.digest_from_scratch());
        }
        for snap in &saved {
            prop_assert_eq!(snap.digest(), snap.digest_from_scratch());
        }
    }

    #[test]
    fn delta_undo_inverts_any_committed_run(ops in proptest::collection::vec(arb_op(), 0..60)) {
        use td_db::{Delta, DeltaOp};
        let d0 = Database::new();
        let mut db = d0.clone();
        let mut delta = Delta::new();
        for op in ops {
            match op {
                Op::Ins(p, vals) => {
                    let t = tuple(&vals);
                    let (next, changed) = db.insert(pred(p), &t).unwrap();
                    if changed {
                        delta.push(DeltaOp::Ins(pred(p), t));
                    }
                    db = next;
                }
                Op::Del(p, vals) => {
                    let t = tuple(&vals);
                    let (next, changed) = db.delete(pred(p), &t).unwrap();
                    if changed {
                        delta.push(DeltaOp::Del(pred(p), t));
                    }
                    db = next;
                }
                Op::Snapshot => {}
            }
        }
        let back = delta.undo(&db).unwrap();
        prop_assert!(back.same_content(&d0));
        let forward = delta.replay(&d0).unwrap();
        prop_assert!(forward.same_content(&db));
    }
}
