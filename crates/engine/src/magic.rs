//! Magic-sets transformation for the Datalog core.
//!
//! §6 of the paper notes that insert-free TD "is essentially classical
//! Datalog … As such, well-known optimization techniques (such as magic
//! sets or tabling) can be applied." This module supplies the magic-sets
//! side of that remark: given a Datalog-evaluable program (see
//! [`crate::datalog::is_datalog`]) and a query atom with some arguments
//! bound, it produces a rewritten program whose bottom-up evaluation only
//! derives facts *relevant* to the query.
//!
//! The rewriting is the textbook one with left-to-right sideways
//! information passing:
//!
//! * predicates are *adorned* with a bound/free pattern (`path_bf`);
//! * each adorned rule is guarded by a `m_path_bf(..)` magic atom over its
//!   bound head arguments;
//! * each derived body atom contributes a magic rule that passes the
//!   bindings available to its left;
//! * the query seeds `m_path_bf(..)` with its bound constants.
//!
//! [`answer`] runs the whole pipeline and returns the same tuples as
//! [`crate::datalog::query`], usually after far fewer derivations (the
//! benchmark E11 measures the difference).

use crate::datalog::{self, NotDatalog};
use std::collections::{HashSet, VecDeque};
use td_core::{Atom, Goal, Pred, Program, Rule, Term, Var};
use td_db::{Database, Tuple};

/// A bound/free adornment, one flag per argument position.
#[derive(Clone, PartialEq, Eq, Hash, Debug)]
pub struct Adornment(pub Vec<bool>);

impl Adornment {
    fn suffix(&self) -> String {
        self.0.iter().map(|b| if *b { 'b' } else { 'f' }).collect()
    }

    fn of_atom(atom: &Atom, bound: &HashSet<Var>) -> Adornment {
        Adornment(
            atom.args
                .iter()
                .map(|t| match t {
                    Term::Val(_) => true,
                    Term::Var(v) => bound.contains(v),
                })
                .collect(),
        )
    }
}

/// The rewritten program plus the name of the adorned query predicate.
#[derive(Clone, Debug)]
pub struct MagicProgram {
    pub program: Program,
    /// The adorned predicate holding the query's answers.
    pub answer_pred: Pred,
    /// The magic seed fact's predicate.
    pub magic_seed: Pred,
}

fn adorned_name(pred: Pred, ad: &Adornment) -> String {
    format!("{}_{}", pred.name, ad.suffix())
}

fn magic_name(pred: Pred, ad: &Adornment) -> String {
    format!("m_{}_{}", pred.name, ad.suffix())
}

fn bound_args(atom: &Atom, ad: &Adornment) -> Vec<Term> {
    atom.args
        .iter()
        .zip(&ad.0)
        .filter(|(_, b)| **b)
        .map(|(t, _)| *t)
        .collect()
}

/// Rewrite `program` for `query`. Errors if the program is not
/// Datalog-evaluable.
pub fn rewrite(program: &Program, query: &Atom) -> Result<MagicProgram, NotDatalog> {
    datalog::is_datalog(program)?;
    if !program.is_derived(query.pred) {
        return Err(NotDatalog {
            reason: format!("query predicate `{}` has no rules", query.pred),
        });
    }

    let query_ad = Adornment::of_atom(query, &HashSet::new());
    let mut builder = Program::builder();
    for p in program.base_preds() {
        builder = builder.base_pred(p.name.as_str(), p.arity);
    }

    // Worklist of adorned derived predicates to process.
    let mut seen: HashSet<(Pred, Adornment)> = HashSet::new();
    let mut queue: VecDeque<(Pred, Adornment)> = VecDeque::new();
    queue.push_back((query.pred, query_ad.clone()));
    seen.insert((query.pred, query_ad.clone()));

    while let Some((pred, ad)) = queue.pop_front() {
        let magic_pred_name = magic_name(pred, &ad);
        let adorned_pred_name = adorned_name(pred, &ad);
        for &rid in program.rules_for(pred) {
            let rule = program.rule(rid);
            // Flatten the body into literals (is_datalog guaranteed this
            // shape).
            let mut lits: Vec<Goal> = Vec::new();
            flatten(&rule.body, &mut lits);

            // Bound head variables seed the sideways information passing.
            let mut bound: HashSet<Var> = rule
                .head
                .args
                .iter()
                .zip(&ad.0)
                .filter(|(_, b)| **b)
                .filter_map(|(t, _)| t.as_var())
                .collect();

            let magic_guard = Goal::Atom(Atom::new(&magic_pred_name, bound_args(&rule.head, &ad)));
            let mut new_body: Vec<Goal> = vec![magic_guard.clone()];
            // Prefix of processed literals (for magic rule bodies).
            let mut prefix: Vec<Goal> = vec![magic_guard];

            for lit in &lits {
                match lit {
                    Goal::Atom(a) if program.is_derived(a.pred) => {
                        let sub_ad = Adornment::of_atom(a, &bound);
                        if seen.insert((a.pred, sub_ad.clone())) {
                            queue.push_back((a.pred, sub_ad.clone()));
                        }
                        // Magic rule: m_q^ad(bound args of a) <- prefix.
                        let m_head =
                            Atom::new(&magic_name(a.pred, &sub_ad), bound_args(a, &sub_ad));
                        builder = builder.rule(Rule::new(m_head, Goal::seq(prefix.clone())));
                        // Rewritten occurrence: the adorned predicate.
                        let adorned =
                            Goal::Atom(Atom::new(&adorned_name(a.pred, &sub_ad), a.args.clone()));
                        new_body.push(adorned.clone());
                        prefix.push(adorned);
                        for v in a.vars() {
                            bound.insert(v);
                        }
                    }
                    Goal::Atom(a) => {
                        new_body.push(lit.clone());
                        prefix.push(lit.clone());
                        for v in a.vars() {
                            bound.insert(v);
                        }
                    }
                    Goal::NotAtom(_) => {
                        // Absence test: a filter; binds nothing.
                        new_body.push(lit.clone());
                        prefix.push(lit.clone());
                    }
                    Goal::Builtin(_, ts) => {
                        new_body.push(lit.clone());
                        prefix.push(lit.clone());
                        for v in ts.iter().filter_map(Term::as_var) {
                            bound.insert(v);
                        }
                    }
                    other => unreachable!("non-datalog literal {other} after is_datalog"),
                }
            }

            let new_head = Atom::new(&adorned_pred_name, rule.head.args.clone());
            builder = builder.rule(Rule::new(new_head, Goal::seq(new_body)));
        }
    }

    // Seed: the query's bound constants.
    let seed_args = bound_args(query, &query_ad);
    debug_assert!(seed_args.iter().all(Term::is_ground));
    let seed_head = Atom::new(&magic_name(query.pred, &query_ad), seed_args);
    builder = builder.derived_fact(seed_head.clone());

    let answer_pred = Pred::new(&adorned_name(query.pred, &query_ad), query.pred.arity);
    let magic_seed = seed_head.pred;
    let program = builder.build_unchecked();
    Ok(MagicProgram {
        program,
        answer_pred,
        magic_seed,
    })
}

fn flatten(goal: &Goal, out: &mut Vec<Goal>) {
    match goal {
        Goal::True => {}
        Goal::Seq(gs) => {
            for g in gs {
                flatten(g, out);
            }
        }
        other => out.push(other.clone()),
    }
}

/// Statistics of a magic evaluation, for comparison against the naive
/// fixpoint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MagicStats {
    /// Facts derived by the rewritten program.
    pub derivations: u64,
    /// Facts in the rewritten fixpoint.
    pub facts: usize,
}

/// Answer `query` over `db` using the magic-sets rewriting. Returns the
/// same answers as [`datalog::query`] plus evaluation statistics.
pub fn answer(
    program: &Program,
    db: &Database,
    query: &Atom,
) -> Result<(Vec<Tuple>, MagicStats), NotDatalog> {
    let magic = rewrite(program, query)?;
    let fix = datalog::evaluate(&magic.program, db)?;
    let pattern: Vec<Option<td_core::Value>> = query.args.iter().map(|t| t.as_value()).collect();
    let mut out: Vec<Tuple> = fix
        .facts_of(magic.answer_pred)
        .filter(|t| t.matches(&pattern))
        .cloned()
        .collect();
    out.sort();
    out.dedup();
    Ok((
        out,
        MagicStats {
            derivations: fix.derivations,
            facts: fix.len(),
        },
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::load_init;
    use td_parser::parse_program;

    fn setup(src: &str) -> (Program, Database) {
        let parsed = parse_program(src).unwrap();
        let db = Database::with_schema_of(&parsed.program);
        let db = load_init(&db, &parsed.init).unwrap();
        (parsed.program, db)
    }

    fn chain(n: usize) -> String {
        let mut src = String::from(
            "base e/2.\npath(X, Y) <- e(X, Y).\npath(X, Z) <- e(X, Y) * path(Y, Z).\n",
        );
        for i in 0..n {
            src.push_str(&format!("init e(n{i}, n{}).\n", i + 1));
        }
        src
    }

    #[test]
    fn magic_answers_match_naive_on_bound_free() {
        let (p, db) = setup(&chain(12));
        let query = Atom::new("path", vec![Term::sym("n3"), Term::var(0)]);
        let naive = datalog::query(&p, &db, &query).unwrap();
        let (magic, _) = answer(&p, &db, &query).unwrap();
        assert_eq!(naive, magic);
        assert_eq!(magic.len(), 9, "n3 reaches n4..n12");
    }

    #[test]
    fn magic_answers_match_naive_on_bound_bound() {
        let (p, db) = setup(&chain(8));
        for (a, b, expect) in [("n0", "n8", true), ("n5", "n2", false)] {
            let query = Atom::new("path", vec![Term::sym(a), Term::sym(b)]);
            let (magic, _) = answer(&p, &db, &query).unwrap();
            assert_eq!(!magic.is_empty(), expect, "path({a},{b})");
        }
    }

    #[test]
    fn magic_derives_fewer_facts_on_selective_queries() {
        let (p, db) = setup(&chain(30));
        let query = Atom::new("path", vec![Term::sym("n27"), Term::var(0)]);
        let naive_fix = datalog::evaluate(&p, &db).unwrap();
        let (_, stats) = answer(&p, &db, &query).unwrap();
        assert!(
            stats.derivations < naive_fix.derivations,
            "magic {} vs naive {}",
            stats.derivations,
            naive_fix.derivations
        );
        // The naive fixpoint has O(n²) path facts; magic only the suffix.
        assert!(stats.facts * 4 < naive_fix.len() + 10);
    }

    #[test]
    fn all_free_query_still_correct() {
        let (p, db) = setup(&chain(5));
        let query = Atom::new("path", vec![Term::var(0), Term::var(1)]);
        let naive = datalog::query(&p, &db, &query).unwrap();
        let (magic, _) = answer(&p, &db, &query).unwrap();
        assert_eq!(naive, magic);
        assert_eq!(magic.len(), 15); // 5+4+3+2+1
    }

    #[test]
    fn mutual_recursion_rewrites_correctly() {
        let src = "
            base start/1. base e/2.
            init start(a). init e(a, b). init e(b, a).
            even(X) <- start(X).
            even(X) <- odd(Y) * e(Y, X).
            odd(X) <- even(Y) * e(Y, X).
        ";
        let (p, db) = setup(src);
        let query = Atom::new("odd", vec![Term::sym("b")]);
        let naive = datalog::query(&p, &db, &query).unwrap();
        let (magic, _) = answer(&p, &db, &query).unwrap();
        assert_eq!(naive, magic);
        assert_eq!(magic.len(), 1);
    }

    #[test]
    fn builtins_survive_the_rewriting() {
        let src = "
            base n/1.
            init n(1). init n(2). init n(5).
            bigpair(X, Y) <- n(X) * n(Y) * X < Y.
        ";
        let (p, db) = setup(src);
        let query = Atom::new("bigpair", vec![Term::int(1), Term::var(0)]);
        let naive = datalog::query(&p, &db, &query).unwrap();
        let (magic, _) = answer(&p, &db, &query).unwrap();
        assert_eq!(naive, magic);
        assert_eq!(magic.len(), 2);
    }

    #[test]
    fn non_datalog_programs_rejected() {
        let (p, db) = setup("base t/0. r <- ins.t.");
        let query = Atom::prop("r");
        assert!(answer(&p, &db, &query).is_err());
    }

    #[test]
    fn unknown_query_pred_rejected() {
        let (p, db) = setup("base e/2. path(X, Y) <- e(X, Y).");
        let query = Atom::new("e", vec![Term::var(0), Term::var(1)]);
        // Base predicate query: rewrite refuses (use datalog::query).
        assert!(rewrite(&p, &query).is_err());
        let _ = db;
    }
}
