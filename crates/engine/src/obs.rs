//! Unified observability: metrics registry, structured event stream, run
//! reports.
//!
//! The paper's §3 workflow story is explicitly about "monitoring, tracking
//! and querying the status of workflow activities". This module is the
//! machinery side of that story for the *search* itself, shared by all
//! three backends (sequential machine, work-stealing parallel search,
//! explicit-state decider):
//!
//! * [`MetricsRegistry`] — a lock-cheap counter/gauge/histogram registry.
//!   The hot path touches no locks at all: each run (and each parallel
//!   worker) accumulates into a private [`LocalMetrics`] and the whole
//!   batch is absorbed under one short lock when the run ends. On top of
//!   the flat [`crate::Stats`] counters it keeps per-rule expansion
//!   counts, a log₂-bucketed backtrack-depth distribution, and per-subgoal
//!   cache hit/miss/unsuitable tallies (the accounting Fodor's tabling
//!   work calls for when tuning a subgoal cache).
//! * [`EventLog`] — a thread-safe structured event stream built from
//!   [`TraceEvent`], including the span-like phase events
//!   ([`TraceEvent::SpanEnter`]/[`TraceEvent::SpanExit`]) that work even
//!   where the committed-path trace is unavailable (parallel and cached
//!   runs emit aggregate span events). Serialized as JSON Lines.
//! * [`RunReport`] — a single machine-readable JSON document per CLI run:
//!   outcome, wall time, registry snapshot, requested *and* effective
//!   config echo, and a digest of the final state. `bench_report` consumes
//!   this instead of re-parsing stdout.
//!
//! No external JSON dependency: the writers here are hand-rolled, like
//! `td-bench`'s.

use crate::config::{EngineConfig, SearchBackend, Stats, Strategy};
use crate::trace::{ProbeOutcome, TraceEvent};
use std::collections::BTreeMap;
use std::sync::Mutex;
use td_core::{Goal, Program, RuleId};

/// Number of log₂ buckets in the backtrack-depth histogram (bucket 0 is
/// depth 0, bucket *k* covers depths `[2^(k-1), 2^k)`).
pub const DEPTH_BUCKETS: usize = 32;

fn depth_bucket(depth: usize) -> usize {
    if depth == 0 {
        0
    } else {
        (usize::BITS - depth.leading_zeros()) as usize
    }
    .min(DEPTH_BUCKETS - 1)
}

/// Hit/miss/unsuitable tallies for one subgoal shape.
#[derive(Clone, Copy, Default, PartialEq, Eq, Debug)]
pub struct CacheTally {
    /// Probes that replayed a stored answer set.
    pub hits: u64,
    /// Probes that found nothing and enumerated an answer set.
    pub misses: u64,
    /// Probes that hit (or created) a negative `Unsuitable` entry.
    pub unsuitable: u64,
}

impl CacheTally {
    fn merge(&mut self, other: &CacheTally) {
        self.hits += other.hits;
        self.misses += other.misses;
        self.unsuitable += other.unsuitable;
    }
}

/// Lock-free per-run (or per-worker) metric accumulator. Constructed
/// enabled only when an [`Observer`] is attached, so the observers-off
/// hot path pays a single branch per observation.
#[derive(Clone, Debug)]
pub struct LocalMetrics {
    enabled: bool,
    rule_unfolds: BTreeMap<RuleId, u64>,
    backtrack_depths: [u64; DEPTH_BUCKETS],
    cache_subgoals: BTreeMap<String, CacheTally>,
}

impl LocalMetrics {
    /// An accumulator; pass `enabled = false` to make every observation a
    /// no-op (the unobserved configuration).
    pub fn new(enabled: bool) -> LocalMetrics {
        LocalMetrics {
            enabled,
            rule_unfolds: BTreeMap::new(),
            backtrack_depths: [0; DEPTH_BUCKETS],
            cache_subgoals: BTreeMap::new(),
        }
    }

    /// Is this accumulator recording?
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Count one unfolding of `rule`.
    pub fn observe_unfold(&mut self, rule: RuleId) {
        if self.enabled {
            *self.rule_unfolds.entry(rule).or_default() += 1;
        }
    }

    /// Count one backtrack at choicepoint-stack depth `depth`.
    pub fn observe_backtrack(&mut self, depth: usize) {
        if self.enabled {
            self.backtrack_depths[depth_bucket(depth)] += 1;
        }
    }

    /// Count one subgoal-cache probe for the subgoal shape `label`.
    pub fn observe_cache(&mut self, label: &str, outcome: ProbeOutcome) {
        if self.enabled {
            let t = self.cache_subgoals.entry(label.to_owned()).or_default();
            match outcome {
                ProbeOutcome::Hit => t.hits += 1,
                ProbeOutcome::Miss => t.misses += 1,
                ProbeOutcome::Unsuitable => t.unsuitable += 1,
            }
        }
    }

    /// Fold another accumulator into this one (parallel workers merge into
    /// one batch before the registry absorbs it).
    pub fn merge(&mut self, other: &LocalMetrics) {
        for (r, n) in &other.rule_unfolds {
            *self.rule_unfolds.entry(*r).or_default() += n;
        }
        for (i, n) in other.backtrack_depths.iter().enumerate() {
            self.backtrack_depths[i] += n;
        }
        for (l, t) in &other.cache_subgoals {
            self.cache_subgoals.entry(l.clone()).or_default().merge(t);
        }
    }
}

/// The subgoal-shape label used for per-subgoal cache tallies: predicate
/// name/arity for calls, `iso` for isolated blocks.
pub fn subgoal_label(goal: &Goal) -> String {
    match goal {
        Goal::Atom(a) => format!("{}/{}", a.pred.name, a.pred.arity),
        Goal::Iso(_) => "iso".to_owned(),
        _ => "goal".to_owned(),
    }
}

#[derive(Default, Debug)]
struct RegistryInner {
    /// Runs (or searches) absorbed.
    runs: u64,
    /// Monotone sums (`steps`, `backtracks`, `cache_hits`, …).
    counters: BTreeMap<String, u64>,
    /// Maxima (`max_stack`, `peak_processes`).
    gauges: BTreeMap<String, u64>,
    /// Expansions per rule, keyed by `head/arity#id`.
    rule_unfolds: BTreeMap<String, u64>,
    backtrack_depths: [u64; DEPTH_BUCKETS],
    cache_subgoals: BTreeMap<String, CacheTally>,
}

/// The shared metrics registry. Aggregates [`Stats`] and [`LocalMetrics`]
/// batches across runs and across parallel workers; locked only at batch
/// boundaries, never per-event.
#[derive(Default, Debug)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> MetricsRegistry {
        MetricsRegistry::default()
    }

    /// Absorb one run's (or one worker's) statistics and local metrics.
    /// Sum-like [`Stats`] fields accumulate into counters, maxima into
    /// gauges; rule ids are resolved to `head/arity#id` labels against
    /// `program`.
    pub fn absorb(&self, program: &Program, stats: &Stats, local: &LocalMetrics) {
        let mut g = self.inner.lock().expect("metrics registry poisoned");
        g.runs += 1;
        for (name, v) in [
            ("steps", stats.steps),
            ("backtracks", stats.backtracks),
            ("choicepoints", stats.choicepoints),
            ("unfolds", stats.unfolds),
            ("db_ops", stats.db_ops),
            ("iso_enters", stats.iso_enters),
            ("memo_hits", stats.memo_hits),
            ("cache_hits", stats.cache_hits),
            ("cache_misses", stats.cache_misses),
            ("mat_probes", stats.mat_probes),
        ] {
            *g.counters.entry(name.to_owned()).or_default() += v;
        }
        for (name, v) in [
            ("max_stack", stats.max_stack as u64),
            ("peak_processes", stats.peak_processes as u64),
        ] {
            let e = g.gauges.entry(name.to_owned()).or_default();
            *e = (*e).max(v);
        }
        for (rid, n) in &local.rule_unfolds {
            let rule = program.rule(*rid);
            let label = format!("{}/{}#{}", rule.head.pred.name, rule.head.pred.arity, rid.0);
            *g.rule_unfolds.entry(label).or_default() += n;
        }
        for (i, n) in local.backtrack_depths.iter().enumerate() {
            g.backtrack_depths[i] += n;
        }
        for (l, t) in &local.cache_subgoals {
            g.cache_subgoals.entry(l.clone()).or_default().merge(t);
        }
    }

    /// Add `v` to the named counter (for counters outside [`Stats`], e.g.
    /// the decider's configuration count or committed-path totals).
    pub fn add_counter(&self, name: &str, v: u64) {
        let mut g = self.inner.lock().expect("metrics registry poisoned");
        *g.counters.entry(name.to_owned()).or_default() += v;
    }

    /// Raise the named gauge to at least `v`.
    pub fn set_gauge_max(&self, name: &str, v: u64) {
        let mut g = self.inner.lock().expect("metrics registry poisoned");
        let e = g.gauges.entry(name.to_owned()).or_default();
        *e = (*e).max(v);
    }

    /// A consistent copy of everything absorbed so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let g = self.inner.lock().expect("metrics registry poisoned");
        MetricsSnapshot {
            runs: g.runs,
            counters: g.counters.clone(),
            gauges: g.gauges.clone(),
            rule_unfolds: g.rule_unfolds.clone(),
            backtrack_depths: g.backtrack_depths,
            cache_subgoals: g.cache_subgoals.clone(),
        }
    }
}

/// A point-in-time copy of a [`MetricsRegistry`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Runs absorbed.
    pub runs: u64,
    /// Monotone counters.
    pub counters: BTreeMap<String, u64>,
    /// Maxima gauges.
    pub gauges: BTreeMap<String, u64>,
    /// Expansion counts per rule (`head/arity#id`).
    pub rule_unfolds: BTreeMap<String, u64>,
    /// Backtrack counts per log₂ depth bucket.
    pub backtrack_depths: [u64; DEPTH_BUCKETS],
    /// Per-subgoal cache tallies.
    pub cache_subgoals: BTreeMap<String, CacheTally>,
}

impl MetricsSnapshot {
    /// A counter's value (0 when never touched).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Render as a JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        out.push_str(&format!("\"runs\": {}", self.runs));
        for (section, map) in [
            ("counters", &self.counters),
            ("gauges", &self.gauges),
            ("rule_unfolds", &self.rule_unfolds),
        ] {
            out.push_str(&format!(", \"{section}\": {{"));
            for (i, (k, v)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", json_escape(k), v));
            }
            out.push('}');
        }
        out.push_str(", \"backtrack_depths\": [");
        let mut first = true;
        for (i, n) in self.backtrack_depths.iter().enumerate() {
            if *n == 0 {
                continue;
            }
            if !first {
                out.push_str(", ");
            }
            first = false;
            let (lo, hi) = if i == 0 {
                (0u64, 0u64)
            } else {
                (1u64 << (i - 1), (1u64 << i) - 1)
            };
            out.push_str(&format!(
                "{{\"depth_lo\": {lo}, \"depth_hi\": {hi}, \"count\": {n}}}"
            ));
        }
        out.push_str("], \"cache_subgoals\": {");
        for (i, (l, t)) in self.cache_subgoals.iter().enumerate() {
            if i > 0 {
                out.push_str(", ");
            }
            out.push_str(&format!(
                "\"{}\": {{\"hits\": {}, \"misses\": {}, \"unsuitable\": {}}}",
                json_escape(l),
                t.hits,
                t.misses,
                t.unsuitable
            ));
        }
        out.push_str("}}");
        out
    }
}

/// Thread-safe structured event stream. Unlike the committed-path trace
/// (which is truncated on backtracking and disabled under the parallel
/// backend and the cache), the event log is append-only and records phase
/// spans from every backend.
#[derive(Default, Debug)]
pub struct EventLog {
    events: Mutex<Vec<(Option<u32>, TraceEvent)>>,
}

impl EventLog {
    /// An empty log.
    pub fn new() -> EventLog {
        EventLog::default()
    }

    /// Append an event, optionally attributed to a parallel worker.
    pub fn emit(&self, worker: Option<u32>, ev: TraceEvent) {
        self.events
            .lock()
            .expect("event log poisoned")
            .push((worker, ev));
    }

    /// Events recorded so far.
    pub fn events(&self) -> Vec<(Option<u32>, TraceEvent)> {
        self.events.lock().expect("event log poisoned").clone()
    }

    /// Number of events recorded.
    pub fn len(&self) -> usize {
        self.events.lock().expect("event log poisoned").len()
    }

    /// True when no events were recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Serialize as JSON Lines: one event object per line, in emission
    /// order, each carrying its sequence number and worker (if any).
    pub fn to_json_lines(&self) -> String {
        let events = self.events.lock().expect("event log poisoned");
        let mut out = String::new();
        for (seq, (worker, ev)) in events.iter().enumerate() {
            out.push_str(&event_json(seq, *worker, ev));
            out.push('\n');
        }
        out
    }
}

/// One event as a JSON object (no trailing newline).
pub fn event_json(seq: usize, worker: Option<u32>, ev: &TraceEvent) -> String {
    let mut out = format!("{{\"seq\": {seq}");
    if let Some(w) = worker {
        out.push_str(&format!(", \"worker\": {w}"));
    }
    let body = match ev {
        TraceEvent::Unfold { call, rule } => {
            format!(
                "\"event\": \"unfold\", \"call\": \"{}\", \"rule\": {}",
                json_escape(&call.to_string()),
                rule.0
            )
        }
        TraceEvent::Match { query, tuple } => format!(
            "\"event\": \"match\", \"query\": \"{}\", \"tuple\": \"{}\"",
            json_escape(&query.to_string()),
            json_escape(&tuple.to_string())
        ),
        TraceEvent::Absent { query } => format!(
            "\"event\": \"absent\", \"query\": \"{}\"",
            json_escape(&query.to_string())
        ),
        TraceEvent::Ins {
            pred,
            tuple,
            changed,
        } => format!(
            "\"event\": \"ins\", \"pred\": \"{}\", \"tuple\": \"{}\", \"changed\": {changed}",
            json_escape(&pred.name.to_string()),
            json_escape(&tuple.to_string())
        ),
        TraceEvent::Del {
            pred,
            tuple,
            changed,
        } => format!(
            "\"event\": \"del\", \"pred\": \"{}\", \"tuple\": \"{}\", \"changed\": {changed}",
            json_escape(&pred.name.to_string()),
            json_escape(&tuple.to_string())
        ),
        TraceEvent::Builtin { rendered } => format!(
            "\"event\": \"builtin\", \"check\": \"{}\"",
            json_escape(rendered)
        ),
        TraceEvent::Choice { index } => format!("\"event\": \"choice\", \"index\": {index}"),
        TraceEvent::IsoEnter => "\"event\": \"iso_enter\"".to_owned(),
        TraceEvent::IsoExit => "\"event\": \"iso_exit\"".to_owned(),
        TraceEvent::SpanEnter { phase, detail } => format!(
            "\"event\": \"span_enter\", \"phase\": \"{}\", \"detail\": \"{}\"",
            phase.as_str(),
            json_escape(detail)
        ),
        TraceEvent::SpanExit { phase, detail } => format!(
            "\"event\": \"span_exit\", \"phase\": \"{}\", \"detail\": \"{}\"",
            phase.as_str(),
            json_escape(detail)
        ),
        TraceEvent::CacheProbe { subgoal, outcome } => format!(
            "\"event\": \"cache_probe\", \"subgoal\": \"{}\", \"outcome\": \"{}\"",
            json_escape(subgoal),
            outcome.as_str()
        ),
        TraceEvent::WorkerSteal { thief, victim } => {
            format!("\"event\": \"worker_steal\", \"thief\": {thief}, \"victim\": {victim}")
        }
    };
    out.push_str(", ");
    out.push_str(&body);
    out.push('}');
    out
}

/// The observability handle the engine carries: always a registry,
/// optionally an event log. Cheap to share behind an `Arc`.
#[derive(Default, Debug)]
pub struct Observer {
    /// The metrics registry every backend absorbs into.
    pub registry: MetricsRegistry,
    log: Option<EventLog>,
}

impl Observer {
    /// Metrics only (no event stream).
    pub fn new() -> Observer {
        Observer::default()
    }

    /// Metrics plus a structured event log.
    pub fn with_event_log() -> Observer {
        Observer {
            registry: MetricsRegistry::new(),
            log: Some(EventLog::new()),
        }
    }

    /// The event log, when enabled.
    pub fn event_log(&self) -> Option<&EventLog> {
        self.log.as_ref()
    }

    /// Append an event (no-op without an event log; the closure is only
    /// evaluated when a log is attached).
    pub fn emit(&self, worker: Option<u32>, f: impl FnOnce() -> TraceEvent) {
        if let Some(log) = &self.log {
            log.emit(worker, f());
        }
    }
}

/// Per-goal row of a [`RunReport`].
#[derive(Clone, Debug)]
pub struct GoalReport {
    /// The goal as written (with source variable names where known).
    pub goal: String,
    /// Did the goal commit?
    pub ok: bool,
    /// Fatal error rendering, if the goal faulted.
    pub error: Option<String>,
    /// Flat counters for this goal (search stats, decider configs, …).
    pub counters: Vec<(String, u64)>,
}

/// Lifetime counters of a subgoal cache, echoed into the report.
#[derive(Clone, Copy, Debug)]
pub struct CacheReport {
    /// Lookups that replayed a stored answer set.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Lookups that found a negative `Unsuitable` entry.
    pub unsuitable: u64,
    /// Entries discarded by the CLOCK policy.
    pub evictions: u64,
    /// Entries currently stored.
    pub entries: u64,
}

/// Lifetime counters of an incremental materializer, echoed into the
/// report: the `probes`-vs-`unfolds` ratio shows how many derived calls the
/// circuit absorbed, `maintain_us`/`maintained_ops` how much time the O(|Δ|)
/// maintenance cost, and `delta_tuples` the circuit's total delta volume.
#[derive(Clone, Copy, Debug)]
pub struct MatReport {
    /// Ground derived-predicate calls answered from a materialized relation.
    pub probes: u64,
    /// Probes (or maintenance passes) that found the version's state
    /// resident.
    pub state_hits: u64,
    /// Full from-scratch builds (first probe of a version, or after
    /// eviction).
    pub rebuilds: u64,
    /// Delta ops fed through incremental maintenance.
    pub maintained_ops: u64,
    /// Derived membership events produced by maintenance.
    pub delta_tuples: u64,
    /// Microseconds spent in incremental maintenance.
    pub maintain_us: u64,
    /// Database versions currently holding a materialized state.
    pub states: u64,
}

/// Durable-store section of a [`RunReport`] (present when the run was
/// backed by `--db=PATH`). Plain data — the engine does not depend on the
/// store crate; the CLI fills this in from the store's recovery info.
#[derive(Clone, Debug)]
pub struct StoreReport {
    /// Store directory backing the run.
    pub path: String,
    /// How opening went: `fresh`, `recovered`, `recovered-torn-tail` or
    /// `recovered-stale-wal`.
    pub recovery: String,
    /// WAL records replayed during recovery at open time.
    pub replayed: u64,
    /// Bytes cut from a torn WAL tail (0 on clean recovery).
    pub torn_bytes: u64,
    /// Transactions committed through the WAL by this run.
    pub committed: u64,
    /// Snapshot age in committed transactions (WAL records on disk at the
    /// end of the run).
    pub snapshot_age: u64,
}

/// Server section of a [`RunReport`] (present for `td serve` runs). Plain
/// data, like [`StoreReport`]: the serve layer fills it in at shutdown.
#[derive(Clone, Debug, Default)]
pub struct ServeReport {
    /// Socket path the server listened on.
    pub socket: String,
    /// Client connections accepted.
    pub connections: u64,
    /// Requests served (all verbs).
    pub requests: u64,
    /// Requests answered with `err`.
    pub errors: u64,
    /// Transactions committed through the WAL.
    pub commits: u64,
    /// Transactions that finished read-only.
    pub read_only: u64,
    /// Transactions that aborted logically (goal not executable).
    pub aborts: u64,
    /// OCC validation conflicts (each caused one retry).
    pub conflicts: u64,
    /// The commit-validation rule the store ran under (`read-set` or
    /// `whole-db`).
    pub occ: String,
    /// Transactions (or trigger executions) that exhausted their retry
    /// budget.
    pub retries_exhausted: u64,
    /// Per-relation conflict attribution: `(pred, failures)` sorted by
    /// predicate.
    pub conflict_relations: Vec<(String, u64)>,
    /// Group frames fsync'd on the commit path.
    pub groups: u64,
    /// Commit records inside those groups (`/ groups` = the group-commit
    /// amortization factor).
    pub grouped_records: u64,
    /// Largest single commit group.
    pub max_group: u64,
    /// Symbol-interner footprint at shutdown — the documented leak of the
    /// long-running server, surfaced rather than hidden.
    pub interned_symbols: u64,
    pub interned_bytes: u64,
    /// Event occurrences ingested over the `event` verb.
    pub events_ingested: u64,
    /// Complex-event pattern matches completed.
    pub triggers_matched: u64,
    /// Trigger transactions executed to success (commit or read-only).
    pub triggers_fired: u64,
    /// OCC conflicts hit while executing trigger transactions.
    pub triggers_conflicted: u64,
    /// End-to-end trigger latency (event request start to trigger
    /// completion), log2-bucketed: `trigger_latency[i]` counts latencies in
    /// `[2^(i-1), 2^i)` microseconds.
    pub trigger_latency: Vec<u64>,
    /// Percentile upper bounds read off the histogram, microseconds.
    pub trigger_p50_us: u64,
    pub trigger_p99_us: u64,
}

/// The single JSON document `td run/decide --report=PATH` writes.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// CLI command (`run`, `trace`, `decide`).
    pub command: String,
    /// Program file executed.
    pub file: String,
    /// Configuration as requested on the command line.
    pub requested: EngineConfig,
    /// Configuration that actually ran (gating rules applied — see
    /// [`EngineConfig::effective`]).
    pub effective: EngineConfig,
    /// Wall-clock time of the whole command, milliseconds.
    pub wall_ms: f64,
    /// One row per `?-` goal, in file order.
    pub goals: Vec<GoalReport>,
    /// Content digest of the database after the last goal (`None` when no
    /// goal committed a state, e.g. `decide`).
    pub final_digest: Option<u128>,
    /// Tuples in the final database.
    pub final_tuples: Option<u64>,
    /// Subgoal-cache lifetime counters (when a cache was attached).
    pub cache: Option<CacheReport>,
    /// Incremental-materialization lifetime counters (when `--materialize`
    /// compiled a circuit).
    pub mat: Option<MatReport>,
    /// Durable-store recovery and commit summary (when `--db` was given).
    pub store: Option<StoreReport>,
    /// Server counters (when the command was `serve`).
    pub serve: Option<ServeReport>,
    /// Registry snapshot at the end of the run.
    pub metrics: MetricsSnapshot,
}

/// Schema tag written into every report; bump on breaking changes.
pub const RUN_REPORT_SCHEMA: &str = "td-run-report/v1";

impl RunReport {
    /// Render the full report as one JSON document.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n");
        out.push_str(&format!("  \"schema\": \"{RUN_REPORT_SCHEMA}\",\n"));
        out.push_str(&format!(
            "  \"command\": \"{}\",\n",
            json_escape(&self.command)
        ));
        out.push_str(&format!("  \"file\": \"{}\",\n", json_escape(&self.file)));
        out.push_str(&format!("  \"wall_ms\": {:.3},\n", self.wall_ms));
        out.push_str(&format!(
            "  \"config\": {{\"requested\": {}, \"effective\": {}}},\n",
            config_json(&self.requested),
            config_json(&self.effective)
        ));
        let failed = self.goals.iter().filter(|g| !g.ok).count();
        out.push_str(&format!(
            "  \"outcome\": {{\"ok\": {}, \"goals\": {}, \"failed\": {}}},\n",
            failed == 0,
            self.goals.len(),
            failed
        ));
        out.push_str("  \"goals\": [\n");
        for (i, g) in self.goals.iter().enumerate() {
            out.push_str(&format!(
                "    {{\"goal\": \"{}\", \"ok\": {}, \"error\": {}, \"counters\": {{",
                json_escape(&g.goal),
                g.ok,
                match &g.error {
                    Some(e) => format!("\"{}\"", json_escape(e)),
                    None => "null".to_owned(),
                }
            ));
            for (j, (k, v)) in g.counters.iter().enumerate() {
                if j > 0 {
                    out.push_str(", ");
                }
                out.push_str(&format!("\"{}\": {}", json_escape(k), v));
            }
            out.push_str("}}");
            out.push_str(if i + 1 < self.goals.len() {
                ",\n"
            } else {
                "\n"
            });
        }
        out.push_str("  ],\n");
        match (self.final_digest, self.final_tuples) {
            (Some(d), Some(t)) => out.push_str(&format!(
                "  \"final_state\": {{\"digest\": \"0x{d:032x}\", \"tuples\": {t}}},\n"
            )),
            _ => out.push_str("  \"final_state\": null,\n"),
        }
        match &self.cache {
            Some(c) => out.push_str(&format!(
                "  \"cache\": {{\"hits\": {}, \"misses\": {}, \"unsuitable\": {}, \
                 \"evictions\": {}, \"entries\": {}}},\n",
                c.hits, c.misses, c.unsuitable, c.evictions, c.entries
            )),
            None => out.push_str("  \"cache\": null,\n"),
        }
        match &self.mat {
            Some(m) => out.push_str(&format!(
                "  \"materializer\": {{\"probes\": {}, \"state_hits\": {}, \"rebuilds\": {}, \
                 \"maintained_ops\": {}, \"delta_tuples\": {}, \"maintain_us\": {}, \
                 \"states\": {}}},\n",
                m.probes,
                m.state_hits,
                m.rebuilds,
                m.maintained_ops,
                m.delta_tuples,
                m.maintain_us,
                m.states
            )),
            None => out.push_str("  \"materializer\": null,\n"),
        }
        match &self.store {
            Some(s) => out.push_str(&format!(
                "  \"store\": {{\"path\": \"{}\", \"recovery\": \"{}\", \"replayed\": {}, \
                 \"torn_bytes\": {}, \"committed\": {}, \"snapshot_age\": {}}},\n",
                json_escape(&s.path),
                json_escape(&s.recovery),
                s.replayed,
                s.torn_bytes,
                s.committed,
                s.snapshot_age
            )),
            None => out.push_str("  \"store\": null,\n"),
        }
        match &self.serve {
            Some(s) => out.push_str(&format!(
                "  \"serve\": {{\"socket\": \"{}\", \"connections\": {}, \"requests\": {}, \
                 \"errors\": {}, \"commits\": {}, \"read_only\": {}, \"aborts\": {}, \
                 \"conflicts\": {}, \"occ\": \"{}\", \"retries_exhausted\": {}, \
                 \"conflict_relations\": {{{}}}, \
                 \"groups\": {}, \"grouped_records\": {}, \
                 \"max_group\": {}, \"interned_symbols\": {}, \"interned_bytes\": {}, \
                 \"events\": {{\"ingested\": {}, \"matched\": {}, \"fired\": {}, \
                 \"conflicted\": {}, \"p50_us\": {}, \"p99_us\": {}, \
                 \"latency_buckets\": [{}]}}}},\n",
                json_escape(&s.socket),
                s.connections,
                s.requests,
                s.errors,
                s.commits,
                s.read_only,
                s.aborts,
                s.conflicts,
                json_escape(&s.occ),
                s.retries_exhausted,
                s.conflict_relations
                    .iter()
                    .map(|(p, n)| format!("\"{}\": {n}", json_escape(p)))
                    .collect::<Vec<_>>()
                    .join(", "),
                s.groups,
                s.grouped_records,
                s.max_group,
                s.interned_symbols,
                s.interned_bytes,
                s.events_ingested,
                s.triggers_matched,
                s.triggers_fired,
                s.triggers_conflicted,
                s.trigger_p50_us,
                s.trigger_p99_us,
                s.trigger_latency
                    .iter()
                    .map(u64::to_string)
                    .collect::<Vec<_>>()
                    .join(", ")
            )),
            None => out.push_str("  \"serve\": null,\n"),
        }
        out.push_str(&format!("  \"metrics\": {}\n", self.metrics.to_json()));
        out.push_str("}\n");
        out
    }
}

/// Flat counter rows for one [`Stats`] (the per-goal report shape).
pub fn stats_counters(stats: &Stats) -> Vec<(String, u64)> {
    vec![
        ("steps".to_owned(), stats.steps),
        ("backtracks".to_owned(), stats.backtracks),
        ("choicepoints".to_owned(), stats.choicepoints),
        ("unfolds".to_owned(), stats.unfolds),
        ("db_ops".to_owned(), stats.db_ops),
        ("max_stack".to_owned(), stats.max_stack as u64),
        ("iso_enters".to_owned(), stats.iso_enters),
        ("memo_hits".to_owned(), stats.memo_hits),
        ("peak_processes".to_owned(), stats.peak_processes as u64),
        ("cache_hits".to_owned(), stats.cache_hits),
        ("cache_misses".to_owned(), stats.cache_misses),
        ("mat_probes".to_owned(), stats.mat_probes),
    ]
}

/// An [`EngineConfig`] as a JSON object (used for both the requested and
/// the effective echo in [`RunReport`]).
pub fn config_json(c: &EngineConfig) -> String {
    let (strategy, seed) = match c.strategy {
        Strategy::Exhaustive => ("exhaustive", None),
        Strategy::ExhaustiveRandom(s) => ("random", Some(s)),
        Strategy::RoundRobin => ("round-robin", None),
        Strategy::Leftmost => ("leftmost", None),
    };
    let backend = match c.backend {
        SearchBackend::Sequential => "{\"kind\": \"sequential\"}".to_owned(),
        SearchBackend::Parallel {
            threads,
            deterministic,
        } => format!(
            "{{\"kind\": \"parallel\", \"threads\": {threads}, \"deterministic\": {deterministic}}}"
        ),
    };
    format!(
        "{{\"strategy\": \"{strategy}\", \"seed\": {}, \"max_steps\": {}, \"max_stack\": {}, \
         \"trace\": {}, \"memo_failures\": {}, \"backend\": {backend}, \
         \"subgoal_cache\": {}, \"cache_capacity\": {}, \"materialize\": {}}}",
        seed.map(|s| s.to_string()).unwrap_or_else(|| "null".into()),
        c.max_steps,
        c.max_stack,
        c.trace,
        c.memo_failures,
        c.subgoal_cache,
        c.cache_capacity,
        c.materialize
    )
}

/// Minimal JSON string escaping (same escapes as `td-bench`'s writer).
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::SpanPhase;

    #[test]
    fn depth_buckets_are_log2() {
        assert_eq!(depth_bucket(0), 0);
        assert_eq!(depth_bucket(1), 1);
        assert_eq!(depth_bucket(2), 2);
        assert_eq!(depth_bucket(3), 2);
        assert_eq!(depth_bucket(4), 3);
        assert_eq!(depth_bucket(usize::MAX), DEPTH_BUCKETS - 1);
    }

    #[test]
    fn disabled_local_metrics_record_nothing() {
        let mut m = LocalMetrics::new(false);
        m.observe_unfold(RuleId(0));
        m.observe_backtrack(5);
        m.observe_cache("p/1", ProbeOutcome::Hit);
        assert!(m.rule_unfolds.is_empty());
        assert!(m.cache_subgoals.is_empty());
        assert_eq!(m.backtrack_depths.iter().sum::<u64>(), 0);
    }

    #[test]
    fn registry_absorbs_and_merges_batches() {
        let program = Program::builder()
            .base_pred("t", 1)
            .rule(td_core::Rule::new(
                td_core::Atom::new("p", vec![]),
                Goal::ins("t", vec![td_core::Term::int(1)]),
            ))
            .build()
            .unwrap();
        let reg = MetricsRegistry::new();
        let mut a = LocalMetrics::new(true);
        a.observe_unfold(RuleId(0));
        a.observe_backtrack(3);
        a.observe_cache("iso", ProbeOutcome::Miss);
        let mut b = LocalMetrics::new(true);
        b.observe_unfold(RuleId(0));
        b.observe_cache("iso", ProbeOutcome::Hit);
        a.merge(&b);
        let stats = Stats {
            steps: 10,
            backtracks: 1,
            max_stack: 4,
            ..Stats::default()
        };
        reg.absorb(&program, &stats, &a);
        reg.absorb(&program, &stats, &LocalMetrics::new(true));
        reg.add_counter("solutions", 1);
        let snap = reg.snapshot();
        assert_eq!(snap.runs, 2);
        assert_eq!(snap.counter("steps"), 20);
        assert_eq!(snap.counter("solutions"), 1);
        assert_eq!(snap.gauges.get("max_stack"), Some(&4));
        assert_eq!(snap.rule_unfolds.get("p/0#0"), Some(&2));
        let iso = snap.cache_subgoals.get("iso").unwrap();
        assert_eq!((iso.hits, iso.misses, iso.unsuitable), (1, 1, 0));
        let json = snap.to_json();
        assert!(json.contains("\"steps\": 20"), "{json}");
        assert!(json.contains("\"depth_lo\": 2"), "{json}");
    }

    #[test]
    fn event_log_serializes_json_lines() {
        let log = EventLog::new();
        log.emit(
            None,
            TraceEvent::SpanEnter {
                phase: SpanPhase::Solve,
                detail: "?- p".into(),
            },
        );
        log.emit(
            Some(2),
            TraceEvent::WorkerSteal {
                thief: 2,
                victim: 0,
            },
        );
        let lines = log.to_json_lines();
        let mut it = lines.lines();
        let first = it.next().unwrap();
        assert!(first.contains("\"event\": \"span_enter\""), "{first}");
        assert!(first.contains("\"phase\": \"solve\""), "{first}");
        let second = it.next().unwrap();
        assert!(second.contains("\"worker\": 2"), "{second}");
        assert!(second.contains("\"victim\": 0"), "{second}");
        assert_eq!(it.next(), None);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn observer_emit_is_noop_without_log() {
        let obs = Observer::new();
        obs.emit(None, || unreachable!("closure must not run without a log"));
        assert!(obs.event_log().is_none());
        let obs = Observer::with_event_log();
        obs.emit(None, || TraceEvent::IsoEnter);
        assert_eq!(obs.event_log().unwrap().len(), 1);
    }

    #[test]
    fn run_report_renders_schema_and_sections() {
        let report = RunReport {
            command: "run".into(),
            file: "x.td".into(),
            requested: EngineConfig::default().with_subgoal_cache(),
            effective: EngineConfig::default().with_subgoal_cache(),
            wall_ms: 1.25,
            goals: vec![GoalReport {
                goal: "p(X)".into(),
                ok: true,
                error: None,
                counters: vec![("steps".into(), 7)],
            }],
            final_digest: Some(0xabcd),
            final_tuples: Some(3),
            cache: Some(CacheReport {
                hits: 1,
                misses: 2,
                unsuitable: 0,
                evictions: 0,
                entries: 2,
            }),
            mat: Some(MatReport {
                probes: 5,
                state_hits: 4,
                rebuilds: 1,
                maintained_ops: 3,
                delta_tuples: 2,
                maintain_us: 10,
                states: 2,
            }),
            store: Some(StoreReport {
                path: "state.tdb".into(),
                recovery: "recovered".into(),
                replayed: 4,
                torn_bytes: 0,
                committed: 2,
                snapshot_age: 6,
            }),
            serve: Some(ServeReport {
                socket: "td.sock".into(),
                connections: 3,
                requests: 9,
                commits: 4,
                groups: 2,
                grouped_records: 4,
                max_group: 3,
                ..ServeReport::default()
            }),
            metrics: MetricsRegistry::new().snapshot(),
        };
        let json = report.to_json();
        assert!(json.contains("\"schema\": \"td-run-report/v1\""), "{json}");
        assert!(json.contains("\"recovery\": \"recovered\""), "{json}");
        assert!(json.contains("\"snapshot_age\": 6"), "{json}");
        assert!(json.contains("\"socket\": \"td.sock\""), "{json}");
        assert!(json.contains("\"grouped_records\": 4"), "{json}");
        assert!(json.contains("\"effective\""), "{json}");
        assert!(json.contains("\"steps\": 7"), "{json}");
        assert!(
            json.contains("0x000000000000000000000000000000000000abcd")
                || json.contains("0x0000000000000000000000000000abcd"),
            "{json}"
        );
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
